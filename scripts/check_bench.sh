#!/usr/bin/env sh
# Validate the shape of the committed BENCH_*.json result files: each must
# be a JSON object naming its bench, and every metrics section must hold
# finite, non-negative numbers (a NaN/Infinity or a negative rate means a
# broken measurement, not a slow one). Run from the repo root.
set -eu

python3 - "$@" <<'PY'
import glob
import json
import math
import sys

files = sys.argv[1:] or sorted(glob.glob("BENCH_*.json"))
if not files:
    print("check_bench: no BENCH_*.json files found", file=sys.stderr)
    sys.exit(1)

errors = []


def check_numbers(path, prefix, obj):
    """Every numeric leaf must be finite and non-negative."""
    for key, value in obj.items():
        where = f"{path}: {prefix}{key}"
        if isinstance(value, dict):
            check_numbers(path, f"{prefix}{key}.", value)
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, dict):
                    check_numbers(path, f"{prefix}{key}[{i}].", item)
                elif isinstance(item, (int, float)) and not isinstance(item, bool):
                    if not math.isfinite(item):
                        errors.append(f"{where}[{i}] is not finite: {item}")
                    elif item < 0:
                        errors.append(f"{where}[{i}] is negative: {item}")
                else:
                    errors.append(f"{where}[{i}] has unexpected type {type(item).__name__}")
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            if not math.isfinite(value):
                errors.append(f"{where} is not finite: {value}")
            elif value < 0:
                errors.append(f"{where} is negative: {value}")
        elif isinstance(value, str):
            continue
        else:
            errors.append(f"{where} has unexpected type {type(value).__name__}")


def check_open_loop_sweep(path, data):
    """BENCH_PR6 schema: the open-loop sweep must cover the 1→10k
    in-flight range with at least five points, each carrying throughput
    and latency percentiles; the peak must clear the floor (35k ops/s on
    a full run, 3.5k on --quick), and the under-load correctness checks
    must all have passed."""
    sweep = data.get("open_loop_sweep")
    if not isinstance(sweep, list) or len(sweep) < 5:
        errors.append(f"{path}: open_loop_sweep must be a list of >=5 points")
        return
    need = ("in_flight", "ops", "elapsed_s", "ops_per_sec", "p50_us", "p99_us")
    for i, pt in enumerate(sweep):
        if not isinstance(pt, dict):
            errors.append(f"{path}: open_loop_sweep[{i}] is not an object")
            return
        missing = [k for k in need if not isinstance(pt.get(k), (int, float))]
        if missing:
            errors.append(f"{path}: open_loop_sweep[{i}] missing numeric {missing}")
    windows = [pt["in_flight"] for pt in sweep if isinstance(pt.get("in_flight"), (int, float))]
    if not windows or min(windows) > 1 or max(windows) < 10_000:
        errors.append(f"{path}: sweep must span in_flight 1 -> 10000 (got {windows})")
    rates = [pt["ops_per_sec"] for pt in sweep if isinstance(pt.get("ops_per_sec"), (int, float))]
    floor = 3_500 if data.get("quick") else 35_000
    if not rates or max(rates) < floor:
        errors.append(
            f"{path}: peak open-loop throughput {max(rates or [0]):.0f} ops/s "
            f"below the {floor} floor"
        )
    checks = data.get("checks")
    if not isinstance(checks, dict):
        errors.append(f"{path}: missing under-load correctness checks")
        return
    for k in ("completions_exactly_once", "final_reads_linearizable", "replicas_converged"):
        if not checks.get(k):
            errors.append(f"{path}: correctness check {k!r} did not pass")


def check_sharded_sweep(path, data):
    """BENCH_PR7 schema: one point per shard count in {1, 2, 4}, each the
    peak of a per-shard-window sweep with throughput, latency percentiles
    and CPU-saturation evidence; the per-shard correctness checks must all
    have passed. The 1→4 scaling gate is conditioned on the host's
    *measured* parallelism: shard groups scale across cores, so a host
    whose scheduler grants ~1 core (cgroup quota, single-cpu VM) runs
    every shard count at the same CPU-saturated ceiling — there the gate
    demands no multiplexing overhead instead of a physically impossible
    speedup."""
    sweep = data.get("shard_sweep")
    if not isinstance(sweep, list) or len(sweep) < 3:
        errors.append(f"{path}: shard_sweep must be a list of >=3 points")
        return
    need = (
        "shards", "per_shard_window", "ops", "elapsed_s", "ops_per_sec",
        "p50_us", "p99_us", "cpu_cores_busy",
    )
    for i, pt in enumerate(sweep):
        if not isinstance(pt, dict):
            errors.append(f"{path}: shard_sweep[{i}] is not an object")
            return
        missing = [k for k in need if not isinstance(pt.get(k), (int, float))]
        if missing:
            errors.append(f"{path}: shard_sweep[{i}] missing numeric {missing}")
        per_shard = pt.get("per_shard_ops")
        if not isinstance(per_shard, list) or len(per_shard) != pt.get("shards"):
            errors.append(
                f"{path}: shard_sweep[{i}] per_shard_ops must list one count per shard"
            )
        elif pt.get("ops") != sum(per_shard):
            errors.append(
                f"{path}: shard_sweep[{i}] per_shard_ops must sum to ops "
                f"(completions lost or double-counted)"
            )
    counts = {pt.get("shards") for pt in sweep}
    if not {1, 2, 4} <= counts:
        errors.append(f"{path}: shard_sweep must cover shards 1, 2 and 4 (got {sorted(counts)})")
        return
    floor = 3_500 if data.get("quick") else 35_000
    for pt in sweep:
        if isinstance(pt.get("ops_per_sec"), (int, float)) and pt["ops_per_sec"] < floor:
            errors.append(
                f"{path}: {pt.get('shards')}-shard peak {pt['ops_per_sec']:.0f} ops/s "
                f"below the {floor} floor"
            )
    scaling = data.get("scaling_1_to_4")
    cores = data.get("host_effective_cores")
    if not isinstance(scaling, (int, float)) or not isinstance(cores, (int, float)):
        errors.append(f"{path}: missing scaling_1_to_4 / host_effective_cores")
    elif cores >= 2.0:
        if scaling < 1.5:
            errors.append(
                f"{path}: 1->4 shard scaling {scaling:.2f}x below the 1.5x gate "
                f"on a host with {cores:.2f} effective cores"
            )
    elif scaling < 0.85:
        errors.append(
            f"{path}: 1->4 shard scaling {scaling:.2f}x shows multiplexing overhead "
            f"(>= 0.85x required even without parallelism)"
        )
    else:
        print(
            f"check_bench: {path} host has {cores:.2f} effective cores -- parallel "
            f"scaling impossible, enforcing the no-overhead gate ({scaling:.2f}x >= 0.85x)"
        )
    checks = data.get("checks")
    if not isinstance(checks, dict):
        errors.append(f"{path}: missing per-shard correctness checks")
        return
    for k in (
        "completions_exactly_once_per_shard",
        "final_reads_linearizable",
        "per_shard_replicas_converged",
        "routing_converged",
    ):
        if not checks.get(k):
            errors.append(f"{path}: correctness check {k!r} did not pass")


def check_read_modes(path, data):
    """BENCH_PR8 schema: one peak point per read mode in {log, lease,
    read-index}, each from a 95/5 read/write open-loop window sweep with
    read/write latency percentiles and the decided-log length as log-free
    evidence. The lease-over-log throughput gate is conditioned on the
    host's *measured* parallelism: lease reads are served from the
    leader's memory while log reads ride replication + fsync, but on a
    ~1-core host both paths serialize onto the same CPU and converge to
    the same ceiling — there the gate demands the lease path adds no
    overhead instead of a physically impossible multiplier. The log-free
    structural checks (decided log grows with writes only) hold on any
    host."""
    sweep = data.get("mode_sweep")
    if not isinstance(sweep, list) or len(sweep) < 3:
        errors.append(f"{path}: mode_sweep must be a list of >=3 points")
        return
    need = (
        "in_flight", "ops", "reads", "writes", "total_writes", "elapsed_s",
        "ops_per_sec", "read_p50_us", "read_p99_us", "write_p50_us",
        "write_p99_us", "decided_log_entries", "cpu_cores_busy",
    )
    by_mode = {}
    for i, pt in enumerate(sweep):
        if not isinstance(pt, dict):
            errors.append(f"{path}: mode_sweep[{i}] is not an object")
            return
        missing = [k for k in need if not isinstance(pt.get(k), (int, float))]
        if missing:
            errors.append(f"{path}: mode_sweep[{i}] missing numeric {missing}")
            continue
        if pt["reads"] + pt["writes"] != pt["ops"]:
            errors.append(
                f"{path}: mode_sweep[{i}] reads + writes must sum to ops "
                f"(completions lost or double-counted)"
            )
        if pt["reads"] < 15 * pt["writes"]:
            errors.append(
                f"{path}: mode_sweep[{i}] is not read-heavy "
                f"({pt['reads']} reads vs {pt['writes']} writes)"
            )
        by_mode[pt.get("mode")] = pt
    if not {"log", "lease", "read-index"} <= set(by_mode):
        errors.append(
            f"{path}: mode_sweep must cover log, lease and read-index "
            f"(got {sorted(k for k in by_mode if isinstance(k, str))})"
        )
        return
    floor = 3_500 if data.get("quick") else 35_000
    for name, pt in by_mode.items():
        if pt["ops_per_sec"] < floor:
            errors.append(
                f"{path}: {name} peak {pt['ops_per_sec']:.0f} ops/s "
                f"below the {floor} floor"
            )
    # Log-free evidence, host-independent: lease / read-index reads must
    # not land in the replicated log, log-mode reads must. The decided
    # log is measured once per mode and is cumulative over every swept
    # window, so the bound uses the run's total_writes (the reported
    # point's writes cover only the best window).
    slack = 300
    log, lease, ri = by_mode["log"], by_mode["lease"], by_mode["read-index"]
    if log["decided_log_entries"] <= log["total_writes"] + slack:
        errors.append(f"{path}: log-mode reads must ride the replicated log")
    for name, pt in (("lease", lease), ("read-index", ri)):
        if pt["decided_log_entries"] >= pt["total_writes"] + slack:
            errors.append(
                f"{path}: {name}-mode decided log ({pt['decided_log_entries']} entries) "
                f"grew with the reads -- reads are not log-free"
            )
    ratio = data.get("lease_over_log")
    cores = data.get("host_effective_cores")
    if not isinstance(ratio, (int, float)) or not isinstance(cores, (int, float)):
        errors.append(f"{path}: missing lease_over_log / host_effective_cores")
    elif cores >= 2.0:
        if ratio < 5.0:
            errors.append(
                f"{path}: lease-over-log throughput {ratio:.2f}x below the 5x gate "
                f"on a host with {cores:.2f} effective cores"
            )
    elif ratio < 0.85:
        errors.append(
            f"{path}: lease-over-log throughput {ratio:.2f}x shows lease overhead "
            f"(>= 0.85x required even without parallelism)"
        )
    else:
        print(
            f"check_bench: {path} host has {cores:.2f} effective cores -- the 5x "
            f"lease gate needs parallelism, enforcing the no-overhead gate "
            f"({ratio:.2f}x >= 0.85x)"
        )
    checks = data.get("checks")
    if not isinstance(checks, dict):
        errors.append(f"{path}: missing read-mode correctness checks")
        return
    for k in (
        "completions_exactly_once",
        "final_reads_linearizable",
        "replicas_converged",
        "lease_reads_log_free",
        "read_index_reads_log_free",
    ):
        if not checks.get(k):
            errors.append(f"{path}: correctness check {k!r} did not pass")


def check_txn_mix(path, data):
    """BENCH_PR9 schema: one best point from the 80/15/5 put/cas/transfer
    window sweep over the 4-shard cluster, with per-class latency
    percentiles (a 2PC transfer costs several log entries across two
    shards — folding it into one histogram would hide that) and the
    self-audited correctness checks: exactly-once completions, CAS
    verdicts matching the client-side model, and the committed-transfer
    balance audit (every account holds exactly its expected balance and
    the bank total is conserved). Both transfer outcomes must have been
    exercised: the workload plants guaranteed-abort transfers, so zero
    aborts — like zero commits — means a path went untested."""
    best = data.get("best")
    if not isinstance(best, dict):
        errors.append(f"{path}: missing best point")
        return
    need = (
        "per_shard_window", "ops", "puts", "cas_ops", "transfers",
        "elapsed_s", "ops_per_sec", "put_p50_us", "put_p99_us",
        "cas_p50_us", "cas_p99_us", "txn_p50_us", "txn_p99_us",
        "cpu_cores_busy",
    )
    missing = [k for k in need if not isinstance(best.get(k), (int, float))]
    if missing:
        errors.append(f"{path}: best point missing numeric {missing}")
        return
    if best["puts"] + best["cas_ops"] + best["transfers"] != best["ops"]:
        errors.append(
            f"{path}: puts + cas_ops + transfers must sum to ops "
            f"(completions lost or double-counted)"
        )
    # The 80/15/5 mix, within 2% of each target fraction.
    for name, frac in (("puts", 0.80), ("cas_ops", 0.15), ("transfers", 0.05)):
        share = best[name] / best["ops"] if best["ops"] else 0.0
        if abs(share - frac) > 0.02:
            errors.append(
                f"{path}: {name} are {share:.3f} of the mix, wanted {frac:.2f}"
            )
    floor = 2_000 if data.get("quick") else 8_000
    if best["ops_per_sec"] < floor:
        errors.append(
            f"{path}: mixed-workload throughput {best['ops_per_sec']:.0f} ops/s "
            f"below the {floor} floor"
        )
    for k in ("transfers_committed", "transfers_aborted", "cas_conflicts"):
        if not isinstance(data.get(k), (int, float)) or data[k] <= 0:
            errors.append(
                f"{path}: {k} must be positive (that path went unexercised)"
            )
    checks = data.get("checks")
    if not isinstance(checks, dict):
        errors.append(f"{path}: missing txn-mix correctness checks")
        return
    for k in (
        "completions_exactly_once",
        "cas_verdicts_match_model",
        "transfer_balances_conserved",
        "final_reads_linearizable",
        "per_shard_replicas_converged",
        "no_cross_shard_rejections",
    ):
        if not checks.get(k):
            errors.append(f"{path}: correctness check {k!r} did not pass")


for path in files:
    errors_before = len(errors)
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        continue
    if not isinstance(data, dict):
        errors.append(f"{path}: top level must be a JSON object")
        continue
    if not isinstance(data.get("bench"), str) or not data["bench"]:
        errors.append(f'{path}: missing or empty "bench" name')
    sections = {k: v for k, v in data.items() if isinstance(v, dict)}
    if not sections:
        errors.append(f"{path}: no metrics sections (nested objects) found")
    for name, section in sections.items():
        numeric = [v for v in section.values() if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if not numeric:
            errors.append(f"{path}: section {name!r} has no numeric fields")
    check_numbers(path, "", data)
    if data.get("bench") == "net-open-loop":
        check_open_loop_sweep(path, data)
    if data.get("bench") == "net-sharded-open-loop":
        check_sharded_sweep(path, data)
    if data.get("bench") == "net-read-modes":
        check_read_modes(path, data)
    if data.get("bench") == "net-txn-mix":
        check_txn_mix(path, data)
    if len(errors) == errors_before:
        print(f"check_bench: {path} ok ({data.get('bench')}, {len(sections)} sections)")

if errors:
    for e in errors:
        print(f"check_bench: {e}", file=sys.stderr)
    sys.exit(1)
PY
