#!/usr/bin/env sh
# Validate the shape of the committed BENCH_*.json result files: each must
# be a JSON object naming its bench, and every metrics section must hold
# finite, non-negative numbers (a NaN/Infinity or a negative rate means a
# broken measurement, not a slow one). Run from the repo root.
set -eu

python3 - "$@" <<'PY'
import glob
import json
import math
import sys

files = sys.argv[1:] or sorted(glob.glob("BENCH_*.json"))
if not files:
    print("check_bench: no BENCH_*.json files found", file=sys.stderr)
    sys.exit(1)

errors = []


def check_numbers(path, prefix, obj):
    """Every numeric leaf must be finite and non-negative."""
    for key, value in obj.items():
        where = f"{path}: {prefix}{key}"
        if isinstance(value, dict):
            check_numbers(path, f"{prefix}{key}.", value)
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            if not math.isfinite(value):
                errors.append(f"{where} is not finite: {value}")
            elif value < 0:
                errors.append(f"{where} is negative: {value}")
        elif isinstance(value, str):
            continue
        else:
            errors.append(f"{where} has unexpected type {type(value).__name__}")


for path in files:
    errors_before = len(errors)
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        continue
    if not isinstance(data, dict):
        errors.append(f"{path}: top level must be a JSON object")
        continue
    if not isinstance(data.get("bench"), str) or not data["bench"]:
        errors.append(f'{path}: missing or empty "bench" name')
    sections = {k: v for k, v in data.items() if isinstance(v, dict)}
    if not sections:
        errors.append(f"{path}: no metrics sections (nested objects) found")
    for name, section in sections.items():
        numeric = [v for v in section.values() if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if not numeric:
            errors.append(f"{path}: section {name!r} has no numeric fields")
    check_numbers(path, "", data)
    if len(errors) == errors_before:
        print(f"check_bench: {path} ok ({data.get('bench')}, {len(sections)} sections)")

if errors:
    for e in errors:
        print(f"check_bench: {e}", file=sys.stderr)
    sys.exit(1)
PY
