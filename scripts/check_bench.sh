#!/usr/bin/env sh
# Validate the shape of the committed BENCH_*.json result files: each must
# be a JSON object naming its bench, and every metrics section must hold
# finite, non-negative numbers (a NaN/Infinity or a negative rate means a
# broken measurement, not a slow one). Run from the repo root.
set -eu

python3 - "$@" <<'PY'
import glob
import json
import math
import sys

files = sys.argv[1:] or sorted(glob.glob("BENCH_*.json"))
if not files:
    print("check_bench: no BENCH_*.json files found", file=sys.stderr)
    sys.exit(1)

errors = []


def check_numbers(path, prefix, obj):
    """Every numeric leaf must be finite and non-negative."""
    for key, value in obj.items():
        where = f"{path}: {prefix}{key}"
        if isinstance(value, dict):
            check_numbers(path, f"{prefix}{key}.", value)
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, dict):
                    check_numbers(path, f"{prefix}{key}[{i}].", item)
                elif isinstance(item, (int, float)) and not isinstance(item, bool):
                    if not math.isfinite(item):
                        errors.append(f"{where}[{i}] is not finite: {item}")
                    elif item < 0:
                        errors.append(f"{where}[{i}] is negative: {item}")
                else:
                    errors.append(f"{where}[{i}] has unexpected type {type(item).__name__}")
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            if not math.isfinite(value):
                errors.append(f"{where} is not finite: {value}")
            elif value < 0:
                errors.append(f"{where} is negative: {value}")
        elif isinstance(value, str):
            continue
        else:
            errors.append(f"{where} has unexpected type {type(value).__name__}")


def check_open_loop_sweep(path, data):
    """BENCH_PR6 schema: the open-loop sweep must cover the 1→10k
    in-flight range with at least five points, each carrying throughput
    and latency percentiles; the peak must clear the floor (35k ops/s on
    a full run, 3.5k on --quick), and the under-load correctness checks
    must all have passed."""
    sweep = data.get("open_loop_sweep")
    if not isinstance(sweep, list) or len(sweep) < 5:
        errors.append(f"{path}: open_loop_sweep must be a list of >=5 points")
        return
    need = ("in_flight", "ops", "elapsed_s", "ops_per_sec", "p50_us", "p99_us")
    for i, pt in enumerate(sweep):
        if not isinstance(pt, dict):
            errors.append(f"{path}: open_loop_sweep[{i}] is not an object")
            return
        missing = [k for k in need if not isinstance(pt.get(k), (int, float))]
        if missing:
            errors.append(f"{path}: open_loop_sweep[{i}] missing numeric {missing}")
    windows = [pt["in_flight"] for pt in sweep if isinstance(pt.get("in_flight"), (int, float))]
    if not windows or min(windows) > 1 or max(windows) < 10_000:
        errors.append(f"{path}: sweep must span in_flight 1 -> 10000 (got {windows})")
    rates = [pt["ops_per_sec"] for pt in sweep if isinstance(pt.get("ops_per_sec"), (int, float))]
    floor = 3_500 if data.get("quick") else 35_000
    if not rates or max(rates) < floor:
        errors.append(
            f"{path}: peak open-loop throughput {max(rates or [0]):.0f} ops/s "
            f"below the {floor} floor"
        )
    checks = data.get("checks")
    if not isinstance(checks, dict):
        errors.append(f"{path}: missing under-load correctness checks")
        return
    for k in ("completions_exactly_once", "final_reads_linearizable", "replicas_converged"):
        if not checks.get(k):
            errors.append(f"{path}: correctness check {k!r} did not pass")


for path in files:
    errors_before = len(errors)
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        continue
    if not isinstance(data, dict):
        errors.append(f"{path}: top level must be a JSON object")
        continue
    if not isinstance(data.get("bench"), str) or not data["bench"]:
        errors.append(f'{path}: missing or empty "bench" name')
    sections = {k: v for k, v in data.items() if isinstance(v, dict)}
    if not sections:
        errors.append(f"{path}: no metrics sections (nested objects) found")
    for name, section in sections.items():
        numeric = [v for v in section.values() if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if not numeric:
            errors.append(f"{path}: section {name!r} has no numeric fields")
    check_numbers(path, "", data)
    if data.get("bench") == "net-open-loop":
        check_open_loop_sweep(path, data)
    if len(errors) == errors_before:
        print(f"check_bench: {path} ok ({data.get('bench')}, {len(sections)} sections)")

if errors:
    for e in errors:
        print(f"check_bench: {e}", file=sys.stderr)
    sys.exit(1)
PY
