#!/usr/bin/env sh
# Offline CI gate: format, lint, build, test. Run from the repo root.
# Everything works without network access (no external dependencies).
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> snapshot property tests"
cargo test -q -p omnipaxos --test snapshot_transfer
cargo test -q -p omnipaxos torn_snapshot_record_replays_to_pre_snapshot_state
cargo test -q -p kvstore snapshot

echo "==> catchup bench (quick): snapshot-first vs full-log replay"
cargo run --release -q -p bench --bin hotpath -- --catchup --quick

echo "CI OK"
