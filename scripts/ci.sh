#!/usr/bin/env sh
# Offline CI gate: format, lint, build, test. Run from the repo root.
# Everything works without network access (no external dependencies).
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "CI OK"
