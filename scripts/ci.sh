#!/usr/bin/env sh
# Offline CI pipeline, split into named stages. Run from the repo root.
# Everything works without network access (no external dependencies).
#
# Usage:
#   scripts/ci.sh              # all stages
#   scripts/ci.sh all          # same
#   scripts/ci.sh fmt          # one stage
#   scripts/ci.sh clippy build # several stages, in the given order
#
# Stages: fmt clippy build test net chaos shard reads storage-faults txn bench perf-smoke
# Each stage is timed; a summary table prints at the end and is also
# written to ci-summary.json (stage, status, seconds) for the workflow
# to publish as a step summary.
set -eu

SUMMARY=""
JSON_STAGES=""
FAILED=0

stage_fmt() {
    echo "==> [fmt] cargo fmt --check"
    cargo fmt --all -- --check
}

stage_clippy() {
    echo "==> [clippy] cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_build() {
    echo "==> [build] cargo build --release"
    cargo build --workspace --release
}

stage_test() {
    echo "==> [test] cargo test"
    cargo test --workspace -q
    echo "==> [test] snapshot property tests"
    cargo test -q -p omnipaxos --test snapshot_transfer
    cargo test -q -p omnipaxos torn_snapshot_record_replays_to_pre_snapshot_state
    cargo test -q -p kvstore snapshot
    echo "==> [test] BLE election property under generated partial partitions"
    cargo test -q -p omnipaxos --test ble_partitions
}

stage_net() {
    echo "==> [net] wire codec unit + property/corpus tests"
    cargo test -q -p net --lib
    cargo test -q -p net --test codec_corpus
    echo "==> [net] session re-sync semantics (sim + TCP backends agree)"
    cargo test -q -p net --test session_semantics
    echo "==> [net] loopback cluster smoke over real sockets (time-bounded)"
    NET_SMOKE_OPS=1000 cargo test -q -p net --test loopback three_node_cluster_survives_leader_transport_kill
}

stage_chaos() {
    echo "==> [chaos] quick deterministic chaos gate (all protocols + kv store)"
    cargo run --release -q -p chaos -- --quick
}

stage_shard() {
    echo "==> [shard] sharded loopback cluster: routing + per-shard convergence"
    cargo test -q -p net --test loopback sharded
    echo "==> [shard] per-shard WAL isolation across kill-and-restart"
    cargo test -q -p kvstore --test shard_wal_isolation
    echo "==> [shard] quick multi-group chaos sweep (cross-shard invariants + shard moves)"
    cargo run --release -q -p chaos -- --shard-seeds 25
    echo "==> [shard] sharded open-loop sweep (quick) + schema/scaling gate"
    cargo run --release -q -p bench --bin hotpath -- --net-loopback --shards --quick
    sh scripts/check_bench.sh BENCH_PR7.json
}

stage_reads() {
    echo "==> [reads] read-mode loopback e2e (log / lease / read-index over TCP)"
    cargo test -q -p net --test loopback read_modes
    echo "==> [reads] lease safety unit tests (recovery, reconfig, deposed leader)"
    cargo test -q -p omnipaxos lease
    cargo test -q -p kvstore read
    echo "==> [reads] quick read-chaos sweep (clock skew + partitions, all three modes)"
    cargo run --release -q -p chaos -- --read-seeds 25
    echo "==> [reads] 95/5 read-mode sweep (quick) + schema/ratio gate"
    cargo run --release -q -p bench --bin hotpath -- --reads --quick
    sh scripts/check_bench.sh BENCH_PR8.json
}

stage_storage_faults() {
    echo "==> [storage-faults] WAL crash-point torture (every-byte truncation + bit flips)"
    cargo test -q -p omnipaxos --test wal_torture
    echo "==> [storage-faults] fail-stop semantics unit + integration tests"
    cargo test -q -p omnipaxos fault
    cargo test -q -p omnipaxos halt
    cargo test -q -p chaos disk
    echo "==> [storage-faults] seeded disk-fault chaos sweep (quick)"
    cargo run --release -q -p chaos -- --disk-seeds 25
}

stage_txn() {
    echo "==> [txn] transaction e2e over TCP (cas exactly-once, spanning rejection, 2PC)"
    cargo test -q -p net --test loopback -- retried_cas spanning_transfer cross_shard_transactions
    echo "==> [txn] coordinator + transactional state-machine unit tests"
    cargo test -q -p kvstore txn
    cargo test -q -p kvstore cas
    echo "==> [txn] quick 2PC chaos sweep (partitions, crashes, disk faults, shard moves)"
    cargo run --release -q -p chaos -- --txn-seeds 25
    echo "==> [txn] mixed put/cas/transfer workload (quick) + schema/conservation gate"
    cargo run --release -q -p bench --bin hotpath -- --txn-mix --quick
    sh scripts/check_bench.sh BENCH_PR9.json
}

stage_bench() {
    echo "==> [bench] catchup bench (quick): snapshot-first vs full-log replay"
    cargo run --release -q -p bench --bin hotpath -- --catchup --quick
    echo "==> [bench] validate BENCH_*.json result shape"
    sh scripts/check_bench.sh
}

stage_perf_smoke() {
    echo "==> [perf-smoke] open-loop socket burst (quick sweep over TCP loopback)"
    cargo run --release -q -p bench --bin hotpath -- --net-loopback --quick
    echo "==> [perf-smoke] peak throughput floor (10x the closed-loop baseline)"
    python3 - <<'PY'
import json, sys
data = json.load(open("BENCH_PR6.json"))
rates = [p["ops_per_sec"] for p in data["open_loop_sweep"]]
best = max(rates)
FLOOR = 3_500  # ~10x the PR 4 closed-loop 348.5 ops/s
if best < FLOOR:
    print(f"perf-smoke: peak open-loop throughput {best:.0f} ops/s is below "
          f"the {FLOOR} ops/s floor -- the socket hot path regressed", file=sys.stderr)
    sys.exit(1)
print(f"perf-smoke: peak open-loop throughput {best:.0f} ops/s (floor {FLOOR})")
PY
}

run_stage() {
    name="$1"
    start=$(date +%s)
    rc=0
    "stage_$name" || rc=$?
    end=$(date +%s)
    if [ "$rc" -eq 0 ]; then
        status=ok
    else
        status=FAIL
        FAILED=1
    fi
    SUMMARY="${SUMMARY}$(printf '%-15s %-5s %4ss' "$name" "$status" "$((end - start))")
"
    JSON_STAGES="${JSON_STAGES}${JSON_STAGES:+,
}    {\"stage\": \"$name\", \"status\": \"$status\", \"seconds\": $((end - start))}"
    return "$rc"
}

write_summary_json() {
    printf '{\n  "stages": [\n%s\n  ],\n  "failed": %s\n}\n' \
        "$JSON_STAGES" "$FAILED" > ci-summary.json
}

STAGES="$*"
if [ -z "$STAGES" ] || [ "$STAGES" = "all" ]; then
    STAGES="fmt clippy build test net chaos shard reads storage-faults txn bench perf-smoke"
fi

for s in $STAGES; do
    case "$s" in
        fmt|clippy|build|test|net|chaos|shard|reads|txn|bench)
            # Fail fast, but still print the summary table below.
            if ! run_stage "$s"; then
                break
            fi
            ;;
        storage-faults)
            if ! run_stage storage_faults; then
                break
            fi
            ;;
        perf-smoke)
            if ! run_stage perf_smoke; then
                break
            fi
            ;;
        *)
            echo "unknown stage: $s (stages: fmt clippy build test net chaos shard reads storage-faults txn bench perf-smoke)" >&2
            exit 2
            ;;
    esac
done

write_summary_json
echo ""
echo "stage           status  time"
echo "----------------------------"
printf '%s' "$SUMMARY"
echo "----------------------------"
if [ "$FAILED" -eq 0 ]; then
    echo "CI OK"
else
    echo "CI FAILED"
    exit 1
fi
