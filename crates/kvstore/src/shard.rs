//! Keyspace sharding: many Omni-Paxos groups over one node's sessions.
//!
//! The keyspace is hash-partitioned into N *shards*; each shard is a full
//! Omni-Paxos instance — its own log, its own storage namespace, its own
//! snapshots and its own reconfiguration (a shard can be migrated to a
//! different replica set without touching the others). A node runs one
//! [`KvNode`] per shard and multiplexes all of them over the *same*
//! transport sessions through the `omnipaxos::multigroup` envelope:
//! consensus frames carry a wire-level group id, and every shard's BLE
//! heartbeats to a peer are coalesced into one `GroupBle` frame per
//! flush, so the failure-detector cost stays per-peer.
//!
//! Routing is deterministic: [`shard_of_key`] is FNV-1a over the key
//! modulo the shard count, computed identically by clients and gateways.
//! Multi-key operations ([`KvOp::Transfer`], [`KvOp::WriteBatch`]) are
//! atomic only within a shard: the gateway checks [`op_spans_shards`] and
//! rejects spanning ops with a typed error instead of silently routing by
//! first key — the client reissues them as cross-shard transactions
//! (`crate::txn`), whose prepare/commit/abort records are addressed to
//! explicit participant shards by the coordinator.
//!
//! Leadership is *spread*: shard `s` raises the ballot priority of node
//! `nodes[s % nodes.len()]`, so with enough shards every replica leads
//! some of them and proposal work (and its fsyncs) is distributed instead
//! of funneling through one leader.

use crate::store::{KvCommand, KvNode, KvOp, KvResult, ReadMode};
use omnipaxos::multigroup::{demux, mux, BleCoalescer};
use omnipaxos::sequence_paxos::ProposeErr;
use omnipaxos::service::{ServerConfig, ServiceMsg};
use omnipaxos::storage::{MemoryStorage, Storage, TrimError};
use omnipaxos::NodeId;

/// Which shard owns `key`, out of `n_shards` (FNV-1a, stable across
/// processes and releases — this is a wire/storage contract).
pub fn shard_of_key(key: &str, n_shards: usize) -> u32 {
    debug_assert!(n_shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_shards as u64) as u32
}

/// Which shard executes `op`. Multi-key ops route by their first key —
/// valid only when [`op_spans_shards`] is false (the gateway enforces
/// this). Transaction records are addressed to explicit shards by the
/// coordinator and never key-routed; their fallback here (by transaction
/// id) only keeps the function total.
pub fn shard_of_op(op: &KvOp, n_shards: usize) -> u32 {
    let key = match op {
        KvOp::Put { key, .. }
        | KvOp::Delete { key }
        | KvOp::Add { key, .. }
        | KvOp::Read { key }
        | KvOp::Cas { key, .. } => key,
        KvOp::Transfer { from, .. } => from,
        KvOp::WriteBatch { writes } => match writes.first() {
            Some(w) => w.key(),
            None => return 0,
        },
        KvOp::TxnPrepare { txn, .. }
        | KvOp::TxnDecide { txn, .. }
        | KvOp::TxnCommit { txn }
        | KvOp::TxnAbort { txn } => return (txn.0.wrapping_add(txn.1) % n_shards as u64) as u32,
    };
    shard_of_key(key, n_shards)
}

/// Does `op` touch keys owned by more than one shard? Such an op cannot
/// be one shard's log entry: the gateway answers it with the typed
/// `KvWire::CrossShard` rejection (never silent first-key routing — the
/// pre-transaction hazard where a spanning `Transfer` mutated only the
/// `from` shard), and the client reissues it through the transaction
/// path.
pub fn op_spans_shards(op: &KvOp, n_shards: usize) -> bool {
    let mut owner: Option<u32> = None;
    let mut spans = false;
    let mut check = |key: &str| {
        let s = shard_of_key(key, n_shards);
        if *owner.get_or_insert(s) != s {
            spans = true;
        }
    };
    match op {
        KvOp::Transfer { from, to, .. } => {
            check(from);
            check(to);
        }
        KvOp::WriteBatch { writes } => {
            for w in writes {
                check(w.key());
            }
        }
        _ => {}
    }
    spans
}

/// The per-shard service config: `base` plus leader spreading — shard
/// `s` prefers node `nodes[s % nodes.len()]` via ballot priority (§8's
/// tie-breaking knob), so leaders distribute round-robin over replicas.
pub fn shard_config(base: &ServerConfig, shard: u32, nodes: &[NodeId]) -> ServerConfig {
    let mut cfg = base.clone();
    if !nodes.is_empty() && nodes[shard as usize % nodes.len()] == base.pid {
        cfg.priority = 1;
    }
    cfg
}

/// One node's set of shard replicas, multiplexed onto a single link.
///
/// The API mirrors [`KvNode`] with a shard argument where it matters;
/// `handle`/`outgoing` speak the *shared-session* message stream (group
/// envelopes + coalesced BLE). With one shard the wire format is
/// bit-identical to an unsharded [`KvNode`].
pub struct ShardedKvNode<S: Storage<KvCommand> = MemoryStorage<KvCommand>> {
    pid: NodeId,
    shards: Vec<KvNode<S>>,
    ble: BleCoalescer,
}

impl ShardedKvNode {
    /// A server of the initial configuration `nodes`, with `n_shards`
    /// independent in-memory groups and spread leadership.
    pub fn new(pid: NodeId, nodes: Vec<NodeId>, n_shards: usize) -> Self {
        assert!(n_shards > 0, "at least one shard");
        let shards = (0..n_shards as u32)
            .map(|s| {
                KvNode::with_config(
                    shard_config(&ServerConfig::with(pid), s, &nodes),
                    nodes.clone(),
                )
            })
            .collect();
        ShardedKvNode {
            pid,
            shards,
            ble: BleCoalescer::new(),
        }
    }

    /// A joiner outside every configuration: each shard waits for its own
    /// `StartConfig`, so shards can be migrated onto this node one at a
    /// time (the others stay idle and silent).
    pub fn joiner(pid: NodeId, n_shards: usize) -> Self {
        assert!(n_shards > 0, "at least one shard");
        let shards = (0..n_shards).map(|_| KvNode::joiner(pid)).collect();
        ShardedKvNode {
            pid,
            shards,
            ble: BleCoalescer::new(),
        }
    }

    /// Wrap a single unsharded node (shard count 1, group 0): the
    /// compatibility path for existing single-group deployments.
    pub fn from_single(node: KvNode) -> Self {
        ShardedKvNode {
            pid: node.pid(),
            shards: vec![node],
            ble: BleCoalescer::new(),
        }
    }
}

impl<S: Storage<KvCommand>> ShardedKvNode<S> {
    /// Assemble from pre-built per-shard nodes (all with the same pid) —
    /// the durable path, where each shard's node owns a namespaced WAL.
    pub fn from_shards(shards: Vec<KvNode<S>>) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        let pid = shards[0].pid();
        assert!(shards.iter().all(|n| n.pid() == pid), "one node, one pid");
        ShardedKvNode {
            pid,
            shards,
            ble: BleCoalescer::new(),
        }
    }

    pub fn pid(&self) -> NodeId {
        self.pid
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's node (panics on out-of-range shard).
    pub fn shard(&self, shard: u32) -> &KvNode<S> {
        &self.shards[shard as usize]
    }

    /// Mutable access to one shard's node.
    pub fn shard_mut(&mut self, shard: u32) -> &mut KvNode<S> {
        &mut self.shards[shard as usize]
    }

    /// Which shard owns `op`.
    pub fn shard_of(&self, op: &KvOp) -> u32 {
        shard_of_op(op, self.shards.len())
    }

    /// Does `op` touch keys on more than one shard? (See
    /// [`op_spans_shards`] — such ops must be rejected, not routed.)
    pub fn spans_shards(&self, op: &KvOp) -> bool {
        op_spans_shards(op, self.shards.len())
    }

    /// Is this node the leader of `shard`?
    pub fn is_leader(&self, shard: u32) -> bool {
        self.shards[shard as usize].is_leader()
    }

    /// The known leader pid of `shard` (0 = unknown).
    pub fn leader_of(&self, shard: u32) -> NodeId {
        self.shards[shard as usize]
            .server_ref()
            .leader()
            .map(|b| b.pid)
            .unwrap_or(0)
    }

    /// The routing table: known leader pid per shard (0 = unknown).
    pub fn leaders(&self) -> Vec<NodeId> {
        (0..self.shards.len() as u32)
            .map(|s| self.leader_of(s))
            .collect()
    }

    /// Submit one shard's admission window as a single contiguous append
    /// run (one `AcceptDecide` + one group-commit flush per shard per
    /// pump; see `KvNode::submit_batch`).
    pub fn submit_batch(
        &mut self,
        shard: u32,
        cmds: impl IntoIterator<Item = KvCommand>,
    ) -> Result<usize, (usize, ProposeErr)> {
        self.shards[shard as usize].submit_batch(cmds)
    }

    /// Advance every shard's timers and apply newly decided commands.
    pub fn tick(&mut self) {
        for n in &mut self.shards {
            n.tick();
        }
    }

    /// Feed one incoming shared-session message: demultiplex the group
    /// envelope (bare messages are group 0, `GroupBle` fans out into
    /// per-shard BLE deliveries) and route to the owning shard. Messages
    /// for unknown groups are dropped — senders retransmit, exactly like
    /// cross-configuration traffic.
    pub fn handle(&mut self, from: NodeId, msg: ServiceMsg<KvCommand>) {
        for (group, inner) in demux(msg) {
            if let Some(shard) = self.shards.get_mut(group as usize) {
                shard.handle(from, inner);
            }
        }
    }

    /// Drain every shard's outgoing messages onto the shared session:
    /// non-BLE frames get the group envelope, all shards' BLE beats
    /// coalesce into one `GroupBle` frame per peer. Single-shard nodes
    /// pass everything through bare (the pre-envelope wire format).
    pub fn outgoing(&mut self) -> Vec<(NodeId, ServiceMsg<KvCommand>)> {
        let n_groups = self.shards.len();
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter_mut().enumerate() {
            mux(
                s as u32,
                n_groups,
                shard.outgoing(),
                &mut self.ble,
                &mut out,
            );
        }
        out.extend(self.ble.flush());
        out
    }

    /// Results applied since the last call, tagged with their shard.
    pub fn take_results(&mut self) -> Vec<(u32, KvResult)> {
        let mut all = Vec::new();
        for (s, shard) in self.shards.iter_mut().enumerate() {
            all.extend(shard.take_results().into_iter().map(|r| (s as u32, r)));
        }
        all
    }

    /// Crash-recover every shard (storage reopen + PrepareReq re-sync).
    pub fn fail_recovery(&mut self) {
        for n in &mut self.shards {
            n.server().fail_recovery();
        }
    }

    /// A transport session to `pid` was (re-)established: every shard
    /// re-syncs, since any shard's in-flight messages may have been lost.
    pub fn reconnected(&mut self, pid: NodeId) {
        for n in &mut self.shards {
            n.server().reconnected(pid);
        }
    }

    /// Compact one shard's log via its own snapshot (the other shards'
    /// logs are untouched — per-shard compaction points are independent).
    pub fn compact(&mut self, shard: u32) -> Result<u64, TrimError> {
        self.shards[shard as usize].compact()
    }

    /// Reconfigure one shard to `new_nodes`: decides a stop-sign in that
    /// shard's log only. Joiners pull that shard's history (snapshot
    /// first if the donors compacted) while every other shard keeps
    /// serving — this is the shard-move primitive.
    pub fn reconfigure(&mut self, shard: u32, new_nodes: Vec<NodeId>) -> Result<(), ProposeErr> {
        self.shards[shard as usize].server().reconfigure(new_nodes)
    }

    /// Eventually-consistent read against the owning shard.
    pub fn read_local(&self, key: &str) -> Option<i64> {
        let s = shard_of_key(key, self.shards.len());
        self.shards[s as usize].read_local(key)
    }

    /// Does this node hold a valid leader lease for `shard`?
    pub fn lease_valid(&self, shard: u32) -> bool {
        self.shards[shard as usize].lease_valid()
    }

    /// Linearizable read routed to the owning shard, served per `mode`
    /// (see [`ReadMode`]); the result arrives shard-tagged via
    /// [`ShardedKvNode::take_results`].
    pub fn read(
        &mut self,
        mode: ReadMode,
        client: u64,
        seq: u64,
        key: impl Into<String>,
    ) -> Result<u32, ProposeErr> {
        let key = key.into();
        let s = shard_of_key(&key, self.shards.len());
        self.shards[s as usize].read(mode, client, seq, key)?;
        Ok(s)
    }
}

impl<S: Storage<KvCommand>> std::fmt::Debug for ShardedKvNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedKvNode")
            .field("pid", &self.pid)
            .field("n_shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnipaxos::service::ServiceMsg;

    /// Drive a fully connected sharded cluster until quiescent.
    fn run(nodes: &mut [ShardedKvNode], steps: usize) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    fn cluster(n: usize, shards: usize) -> Vec<ShardedKvNode> {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        ids.iter()
            .map(|&p| ShardedKvNode::new(p, ids.clone(), shards))
            .collect()
    }

    fn put(key: &str, value: i64, seq: u64) -> KvCommand {
        KvCommand {
            client: 1,
            seq,
            op: KvOp::Put {
                key: key.into(),
                value,
            },
        }
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        for n in [1usize, 2, 4, 8] {
            for key in ["a", "b", "user:17", "ctr", ""] {
                let s = shard_of_key(key, n);
                assert!((s as usize) < n);
                assert_eq!(s, shard_of_key(key, n), "stable");
            }
        }
        // All shards are reachable for reasonable shard counts.
        for n in [2usize, 4] {
            let mut hit = vec![false; n];
            for i in 0..256 {
                hit[shard_of_key(&format!("k{i}"), n) as usize] = true;
            }
            assert!(hit.iter().all(|&h| h), "every shard owns some keys");
        }
    }

    /// Two keys guaranteed to live on different shards (of `n`).
    fn spanning_keys(n: usize) -> (String, String) {
        let a = "k0".to_string();
        let sa = shard_of_key(&a, n);
        for i in 1.. {
            let b = format!("k{i}");
            if shard_of_key(&b, n) != sa {
                return (a, b);
            }
        }
        unreachable!()
    }

    #[test]
    fn spanning_multi_key_ops_are_detected_not_first_key_routed() {
        use crate::store::WriteOp;
        let (a, b) = spanning_keys(4);
        let spanning = KvOp::Transfer {
            from: a.clone(),
            to: b.clone(),
            amount: 1,
        };
        assert!(op_spans_shards(&spanning, 4));
        // Same-shard ops (and every single-key op) never span.
        assert!(!op_spans_shards(&spanning, 1), "one shard: nothing spans");
        let local = KvOp::Transfer {
            from: a.clone(),
            to: a.clone(),
            amount: 1,
        };
        assert!(!op_spans_shards(&local, 4));
        assert!(!op_spans_shards(
            &KvOp::Cas {
                key: a.clone(),
                expect: None,
                set: Some(1)
            },
            4
        ));
        // Batches span iff their write set does.
        let batch = |keys: &[&String]| KvOp::WriteBatch {
            writes: keys
                .iter()
                .map(|k| WriteOp::Add {
                    key: (*k).clone(),
                    delta: 1,
                })
                .collect(),
        };
        assert!(op_spans_shards(&batch(&[&a, &b]), 4));
        assert!(!op_spans_shards(&batch(&[&a, &a]), 4));
        assert!(!op_spans_shards(&batch(&[]), 4));
    }

    #[test]
    fn each_shard_elects_and_replicates_independently() {
        let mut nodes = cluster(3, 4);
        run(&mut nodes, 150);
        // Every shard has exactly one leader and all nodes agree on it.
        for s in 0..4u32 {
            let leaders: Vec<NodeId> = nodes
                .iter()
                .filter(|n| n.is_leader(s))
                .map(|n| n.pid())
                .collect();
            assert_eq!(leaders.len(), 1, "shard {s} has one leader");
        }
        // Write one key per shard through that shard's leader.
        let mut seq = 0u64;
        let mut expected = Vec::new();
        for i in 0..32 {
            let key = format!("k{i}");
            let s = shard_of_key(&key, 4);
            seq += 1;
            let li = nodes.iter().position(|n| n.is_leader(s)).unwrap();
            nodes[li]
                .submit_batch(s, [put(&key, i as i64, seq)])
                .unwrap();
            expected.push((key, i as i64));
        }
        run(&mut nodes, 200);
        for (key, v) in &expected {
            for n in &nodes {
                assert_eq!(n.read_local(key), Some(*v), "key {key} on node {}", n.pid());
            }
        }
    }

    #[test]
    fn leaders_spread_across_replicas() {
        let mut nodes = cluster(3, 6);
        run(&mut nodes, 200);
        let mut leads = std::collections::HashMap::new();
        for s in 0..6u32 {
            let l = nodes
                .iter()
                .find(|n| n.is_leader(s))
                .map(|n| n.pid())
                .unwrap();
            *leads.entry(l).or_insert(0u32) += 1;
            // Priority spreading targets nodes[s % 3] = pid s%3 + 1.
            assert_eq!(
                l,
                (s as u64 % 3) + 1,
                "shard {s} led by its priority-preferred node"
            );
        }
        assert_eq!(leads.len(), 3, "all three replicas lead some shard");
    }

    #[test]
    fn multi_shard_wire_is_enveloped_and_ble_coalesced() {
        let mut nodes = cluster(3, 4);
        // After a few ticks every node emits heartbeats for all 4 shards.
        for _ in 0..3 {
            for n in nodes.iter_mut() {
                n.tick();
            }
        }
        let out = nodes[0].outgoing();
        assert!(!out.is_empty());
        let mut ble_frames = 0;
        for (_, m) in &out {
            match m {
                ServiceMsg::GroupBle { beats } => {
                    ble_frames += 1;
                    assert!(
                        beats.len() >= 4,
                        "all shards' beats ride one frame, got {}",
                        beats.len()
                    );
                }
                ServiceMsg::Group { .. } => {}
                ServiceMsg::Omni { .. } => panic!("bare Omni frame from a multi-shard node"),
                _ => {}
            }
        }
        assert!(ble_frames >= 1, "BLE coalesced into GroupBle frames");
        // At most one GroupBle per destination peer per flush.
        let mut per_peer = std::collections::HashMap::new();
        for (to, m) in &out {
            if matches!(m, ServiceMsg::GroupBle { .. }) {
                *per_peer.entry(*to).or_insert(0) += 1;
            }
        }
        assert!(per_peer.values().all(|&c| c == 1), "one BLE frame per peer");
    }

    #[test]
    fn single_shard_wire_is_bare_passthrough() {
        let mut nodes = cluster(3, 1);
        for _ in 0..3 {
            for n in nodes.iter_mut() {
                n.tick();
            }
        }
        for n in nodes.iter_mut() {
            for (_, m) in n.outgoing() {
                assert!(
                    !matches!(m, ServiceMsg::Group { .. } | ServiceMsg::GroupBle { .. }),
                    "single-shard nodes speak the pre-envelope format"
                );
            }
        }
    }

    #[test]
    fn sessions_are_per_shard() {
        // The same (client, seq) on different shards are different
        // sessions: shard A applying seq 5 must not dedup shard B's seq 5.
        let mut nodes = cluster(3, 2);
        run(&mut nodes, 150);
        // Find one key per shard.
        let mut key_for = [None, None];
        for i in 0.. {
            let k = format!("k{i}");
            let s = shard_of_key(&k, 2) as usize;
            if key_for[s].is_none() {
                key_for[s] = Some(k);
            }
            if key_for.iter().all(|k| k.is_some()) {
                break;
            }
        }
        for (s, key) in key_for.iter().enumerate() {
            let key = key.as_ref().unwrap();
            let li = nodes.iter().position(|n| n.is_leader(s as u32)).unwrap();
            nodes[li]
                .submit_batch(s as u32, [put(key, s as i64 + 10, 5)])
                .unwrap();
        }
        run(&mut nodes, 200);
        for (s, key) in key_for.iter().enumerate() {
            let key = key.as_ref().unwrap();
            for n in &nodes {
                assert_eq!(n.read_local(key), Some(s as i64 + 10));
                assert_eq!(
                    n.shard(s as u32)
                        .state_machine()
                        .sessions()
                        .get(&1)
                        .map(|e| e.seq),
                    Some(5),
                    "shard {s} has its own session table"
                );
            }
        }
    }

    #[test]
    fn leases_are_per_shard_and_reads_route_to_the_owner() {
        use crate::store::ReadMode;
        // Lease-enabled cluster with spread leadership: different nodes
        // hold different shards' leases at the same time.
        let ids: Vec<NodeId> = vec![1, 2, 3];
        let mut nodes: Vec<ShardedKvNode> = ids
            .iter()
            .map(|&p| {
                let mut base = ServerConfig::with(p);
                base.lease_ticks = 20;
                base.lease_epsilon_ticks = 2;
                let shards = (0..6u32)
                    .map(|s| KvNode::with_config(shard_config(&base, s, &ids), ids.clone()))
                    .collect();
                ShardedKvNode::from_shards(shards)
            })
            .collect();
        run(&mut nodes, 200);
        // Each shard's lease is held exactly by that shard's leader.
        for s in 0..6u32 {
            let holders: Vec<NodeId> = nodes
                .iter()
                .filter(|n| n.lease_valid(s))
                .map(|n| n.pid())
                .collect();
            let leader = nodes.iter().find(|n| n.is_leader(s)).unwrap().pid();
            assert_eq!(holders, vec![leader], "shard {s} lease at its leader");
        }
        // A write then a lease read through the owning shard's leader.
        let key = "route-me";
        let s = shard_of_key(key, 6);
        let li = nodes.iter().position(|n| n.is_leader(s)).unwrap();
        nodes[li].submit_batch(s, [put(key, 31, 1)]).unwrap();
        run(&mut nodes, 100);
        nodes[li].take_results();
        let routed = nodes[li].read(ReadMode::Lease, 2, 1, key).unwrap();
        assert_eq!(routed, s, "read routed to the owning shard");
        let results = nodes[li].take_results();
        let read = results
            .iter()
            .find(|(sh, r)| *sh == s && r.client == 2)
            .expect("lease read served locally");
        assert_eq!(read.1.value, Some(31));
    }

    #[test]
    fn shard_move_migrates_one_shard_between_replicas() {
        // 3 replicas + a joiner; shard 1 moves from {1,2,3} to {1,2,4}
        // snapshot-first (the donors compact before the move), while
        // shard 0 keeps serving and never changes membership.
        let ids: Vec<NodeId> = vec![1, 2, 3];
        let mut nodes: Vec<ShardedKvNode> = ids
            .iter()
            .map(|&p| ShardedKvNode::new(p, ids.clone(), 2))
            .collect();
        nodes.push(ShardedKvNode::joiner(4, 2));
        run(&mut nodes, 150);
        let mut seq = 0u64;
        let mut keys = Vec::new();
        for i in 0..24 {
            let key = format!("k{i}");
            let s = shard_of_key(&key, 2);
            seq += 1;
            let li = nodes.iter().position(|n| n.is_leader(s)).unwrap();
            nodes[li].submit_batch(s, [put(&key, i, seq)]).unwrap();
            keys.push((key, i));
        }
        run(&mut nodes, 200);
        // Compact shard 1 everywhere so the move is snapshot-first.
        for n in nodes.iter_mut().take(3) {
            n.compact(1).expect("compact shard 1");
        }
        let li = nodes.iter().position(|n| n.is_leader(1)).unwrap();
        nodes[li].reconfigure(1, vec![1, 2, 4]).unwrap();
        run(&mut nodes, 400);
        // The joiner now serves shard 1 with full state...
        for (key, v) in &keys {
            if shard_of_key(key, 2) == 1 {
                assert_eq!(nodes[3].read_local(key), Some(*v), "moved key {key}");
            }
        }
        // ...while its shard 0 never started.
        assert_eq!(
            nodes[3].shard(0).server_ref().config_id(),
            0,
            "unmoved shard stays idle on the joiner"
        );
        // Shard 0 still serves writes afterwards.
        let key0 = keys
            .iter()
            .find(|(k, _)| shard_of_key(k, 2) == 0)
            .map(|(k, _)| k.clone())
            .unwrap();
        seq += 1;
        let li0 = nodes.iter().position(|n| n.is_leader(0)).unwrap();
        nodes[li0].submit_batch(0, [put(&key0, 777, seq)]).unwrap();
        run(&mut nodes, 200);
        for n in nodes.iter().take(3) {
            assert_eq!(n.read_local(&key0), Some(777));
        }
    }
}
