//! Byte encodings for the kv layer: commands for the WAL and the wire,
//! plus the client-facing request/reply protocol.
//!
//! [`KvCommand`] implements [`WalEncode`], which serves double duty: it
//! makes `WalStorage<KvCommand>` possible (durable kv logs) and it is the
//! entry-type bound the wire codec (`omnipaxos::wire`) needs to ship
//! `ServiceMsg<KvCommand>` between real servers.
//!
//! [`KvWire`] is the client protocol spoken on a server's client port:
//! a request carries a full [`KvCommand`] (the client owns its session
//! numbering, so retries dedup server-side), and the server answers with
//! the applied result, a leader redirect, or a transient retry hint.
//! Discriminants are stable and append-only, like every enum on the wire
//! (see `omnipaxos::messages` for the forward-compatibility rules).

use crate::store::{KvCommand, KvOp, KvResult, ReadMode, TxnGuard, TxnSpec, WriteOp};
use omnipaxos::wire::{put_str, BatchCache, Reader, Wire, WireError};
use omnipaxos::{NodeId, WalEncode};

fn put_opt_i64(buf: &mut Vec<u8>, v: &Option<i64>) {
    match v {
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        None => buf.push(0),
    }
}

fn get_opt_i64(r: &mut Reader, what: &'static str) -> Result<Option<i64>, WireError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.i64(what)?)),
        v => Err(WireError::UnknownDiscriminant { what, value: v }),
    }
}

fn put_write(buf: &mut Vec<u8>, w: &WriteOp) {
    match w {
        WriteOp::Put { key, value } => {
            buf.push(0);
            put_str(buf, key);
            buf.extend_from_slice(&value.to_le_bytes());
        }
        WriteOp::Delete { key } => {
            buf.push(1);
            put_str(buf, key);
        }
        WriteOp::Add { key, delta } => {
            buf.push(2);
            put_str(buf, key);
            buf.extend_from_slice(&delta.to_le_bytes());
        }
    }
}

fn get_write(r: &mut Reader) -> Result<WriteOp, WireError> {
    Ok(match r.u8("WriteOp discriminant")? {
        0 => WriteOp::Put {
            key: r.str("WriteOp.key")?,
            value: r.i64("WriteOp.value")?,
        },
        1 => WriteOp::Delete {
            key: r.str("WriteOp.key")?,
        },
        2 => WriteOp::Add {
            key: r.str("WriteOp.key")?,
            delta: r.i64("WriteOp.delta")?,
        },
        v => {
            return Err(WireError::UnknownDiscriminant {
                what: "WriteOp",
                value: v,
            })
        }
    })
}

fn put_writes(buf: &mut Vec<u8>, writes: &[WriteOp]) {
    buf.extend_from_slice(&(writes.len() as u32).to_le_bytes());
    for w in writes {
        put_write(buf, w);
    }
}

fn get_writes(r: &mut Reader) -> Result<Vec<WriteOp>, WireError> {
    // A write is at least 5 bytes (disc + empty-key length).
    let n = r.count(5, "WriteOp list")?;
    (0..n).map(|_| get_write(r)).collect()
}

fn put_guard(buf: &mut Vec<u8>, g: &TxnGuard) {
    match g {
        TxnGuard::MinValue { key, min } => {
            buf.push(0);
            put_str(buf, key);
            buf.extend_from_slice(&min.to_le_bytes());
        }
        TxnGuard::Equals { key, expect } => {
            buf.push(1);
            put_str(buf, key);
            put_opt_i64(buf, expect);
        }
    }
}

fn get_guard(r: &mut Reader) -> Result<TxnGuard, WireError> {
    Ok(match r.u8("TxnGuard discriminant")? {
        0 => TxnGuard::MinValue {
            key: r.str("TxnGuard.key")?,
            min: r.i64("TxnGuard.min")?,
        },
        1 => TxnGuard::Equals {
            key: r.str("TxnGuard.key")?,
            expect: get_opt_i64(r, "TxnGuard.expect")?,
        },
        v => {
            return Err(WireError::UnknownDiscriminant {
                what: "TxnGuard",
                value: v,
            })
        }
    })
}

fn put_guards(buf: &mut Vec<u8>, guards: &[TxnGuard]) {
    buf.extend_from_slice(&(guards.len() as u32).to_le_bytes());
    for g in guards {
        put_guard(buf, g);
    }
}

fn get_guards(r: &mut Reader) -> Result<Vec<TxnGuard>, WireError> {
    // A guard is at least 6 bytes (disc + empty-key length + flag).
    let n = r.count(6, "TxnGuard list")?;
    (0..n).map(|_| get_guard(r)).collect()
}

impl WalEncode for KvCommand {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.client.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        match &self.op {
            KvOp::Put { key, value } => {
                buf.push(0);
                put_str(buf, key);
                buf.extend_from_slice(&value.to_le_bytes());
            }
            KvOp::Delete { key } => {
                buf.push(1);
                put_str(buf, key);
            }
            KvOp::Add { key, delta } => {
                buf.push(2);
                put_str(buf, key);
                buf.extend_from_slice(&delta.to_le_bytes());
            }
            KvOp::Transfer { from, to, amount } => {
                buf.push(3);
                put_str(buf, from);
                put_str(buf, to);
                buf.extend_from_slice(&amount.to_le_bytes());
            }
            KvOp::Read { key } => {
                buf.push(4);
                put_str(buf, key);
            }
            KvOp::Cas { key, expect, set } => {
                buf.push(5);
                put_str(buf, key);
                put_opt_i64(buf, expect);
                put_opt_i64(buf, set);
            }
            KvOp::WriteBatch { writes } => {
                buf.push(6);
                put_writes(buf, writes);
            }
            KvOp::TxnPrepare {
                txn,
                coord_shard,
                participants,
                guards,
                writes,
            } => {
                buf.push(7);
                buf.extend_from_slice(&txn.0.to_le_bytes());
                buf.extend_from_slice(&txn.1.to_le_bytes());
                buf.extend_from_slice(&coord_shard.to_le_bytes());
                buf.extend_from_slice(&(participants.len() as u32).to_le_bytes());
                for &p in participants {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
                put_guards(buf, guards);
                put_writes(buf, writes);
            }
            KvOp::TxnDecide { txn, commit } => {
                buf.push(8);
                buf.extend_from_slice(&txn.0.to_le_bytes());
                buf.extend_from_slice(&txn.1.to_le_bytes());
                buf.push(*commit as u8);
            }
            KvOp::TxnCommit { txn } => {
                buf.push(9);
                buf.extend_from_slice(&txn.0.to_le_bytes());
                buf.extend_from_slice(&txn.1.to_le_bytes());
            }
            KvOp::TxnAbort { txn } => {
                buf.push(10);
                buf.extend_from_slice(&txn.0.to_le_bytes());
                buf.extend_from_slice(&txn.1.to_le_bytes());
            }
        }
    }

    fn decode(buf: &[u8]) -> Option<Self> {
        let mut r = Reader::new(buf);
        let cmd = decode_command(&mut r).ok()?;
        r.is_empty().then_some(cmd)
    }
}

fn get_txn_id(r: &mut Reader) -> Result<(u64, u64), WireError> {
    Ok((r.u64("TxnId.client")?, r.u64("TxnId.seq")?))
}

fn decode_command(r: &mut Reader) -> Result<KvCommand, WireError> {
    let client = r.u64("KvCommand.client")?;
    let seq = r.u64("KvCommand.seq")?;
    let op = match r.u8("KvOp discriminant")? {
        0 => KvOp::Put {
            key: r.str("Put.key")?,
            value: r.i64("Put.value")?,
        },
        1 => KvOp::Delete {
            key: r.str("Delete.key")?,
        },
        2 => KvOp::Add {
            key: r.str("Add.key")?,
            delta: r.i64("Add.delta")?,
        },
        3 => KvOp::Transfer {
            from: r.str("Transfer.from")?,
            to: r.str("Transfer.to")?,
            amount: r.i64("Transfer.amount")?,
        },
        4 => KvOp::Read {
            key: r.str("Read.key")?,
        },
        5 => KvOp::Cas {
            key: r.str("Cas.key")?,
            expect: get_opt_i64(r, "Cas.expect")?,
            set: get_opt_i64(r, "Cas.set")?,
        },
        6 => KvOp::WriteBatch {
            writes: get_writes(r)?,
        },
        7 => {
            let txn = get_txn_id(r)?;
            let coord_shard = r.u32("TxnPrepare.coord_shard")?;
            let n = r.count(4, "TxnPrepare.participants")?;
            let participants = (0..n)
                .map(|_| r.u32("TxnPrepare.participant"))
                .collect::<Result<_, _>>()?;
            KvOp::TxnPrepare {
                txn,
                coord_shard,
                participants,
                guards: get_guards(r)?,
                writes: get_writes(r)?,
            }
        }
        8 => KvOp::TxnDecide {
            txn: get_txn_id(r)?,
            commit: r.bool("TxnDecide.commit")?,
        },
        9 => KvOp::TxnCommit {
            txn: get_txn_id(r)?,
        },
        10 => KvOp::TxnAbort {
            txn: get_txn_id(r)?,
        },
        v => {
            return Err(WireError::UnknownDiscriminant {
                what: "KvOp",
                value: v,
            })
        }
    };
    Ok(KvCommand { client, seq, op })
}

/// Client-visible state of a transaction, as reported by
/// [`KvWire::TxnStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// No trace of the transaction on the queried server.
    Unknown,
    /// Prepared or being driven; not yet resolved.
    Pending,
    Committed,
    Aborted,
}

impl TxnState {
    /// Stable wire discriminant (append-only).
    pub const fn discriminant(self) -> u8 {
        match self {
            TxnState::Unknown => 0,
            TxnState::Pending => 1,
            TxnState::Committed => 2,
            TxnState::Aborted => 3,
        }
    }

    /// Inverse of [`TxnState::discriminant`].
    pub const fn from_discriminant(v: u8) -> Option<Self> {
        match v {
            0 => Some(TxnState::Unknown),
            1 => Some(TxnState::Pending),
            2 => Some(TxnState::Committed),
            3 => Some(TxnState::Aborted),
            _ => None,
        }
    }
}

/// The client protocol: one enum for both directions of a client
/// connection, framed like every other wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum KvWire {
    /// Client → server: apply this command. The command's `(client, seq)`
    /// identity makes retries after redirects or reconnects exactly-once.
    Request(KvCommand),
    /// Server → client: the command decided and applied; here is its
    /// result.
    Reply(KvResult),
    /// Server → client: this server is not the leader; try `leader`
    /// (0 = currently unknown, pick another server).
    Redirect { leader: NodeId },
    /// Server → client: the leader could not take the proposal right now
    /// (e.g. mid-reconfiguration); retry the same command shortly.
    Retry { seq: u64 },
    /// Server → client (sharded gateway): the request's key belongs to
    /// `shard`, whose leader is `leader` (0 = currently unknown). The
    /// client refreshes its cached routing table entry and re-sends there.
    ShardRedirect { shard: u32, leader: NodeId },
    /// Client → server: send me the routing table.
    ShardsReq,
    /// Server → client: the routing table — the known leader pid per
    /// shard, indexed by shard id (0 = unknown). `leaders.len()` is the
    /// cluster's shard count.
    Shards { leaders: Vec<NodeId> },
    /// Client → server: a linearizable read of `key`, served per `mode`
    /// (see [`ReadMode`]): log marker, leader lease, or read index. The
    /// `(client, seq)` identity ties the eventual [`KvWire::Reply`] back
    /// to the request; log-free modes never enter the session table, so
    /// any replica can answer a `ReadIndex` read.
    ReadRequest {
        mode: ReadMode,
        client: u64,
        seq: u64,
        key: String,
    },
    /// Client → server: run this cross-shard transaction. `(client, seq)`
    /// is the transaction id — globally unique and the dedup key across
    /// every coordinator that ever drives it. The eventual
    /// [`KvWire::Reply`] reports `applied: true` iff the transaction
    /// committed (value 1 = committed, 0 = aborted).
    TxnRequest {
        client: u64,
        seq: u64,
        spec: TxnSpec,
    },
    /// Client → server: what became of transaction `(client, seq)`? Used
    /// after a reconnect to resolve an in-doubt outcome.
    TxnStatusReq { client: u64, seq: u64 },
    /// Server → client: the queried server's view of the transaction.
    TxnStatus {
        client: u64,
        seq: u64,
        state: TxnState,
    },
    /// Server → client: the typed rejection for a multi-key op whose keys
    /// span shards (batch, transfer) submitted on the single-shard path.
    /// The client must use the transaction path instead of retrying.
    CrossShard { seq: u64 },
}

impl KvWire {
    /// Stable wire discriminant (append-only).
    pub const fn discriminant(&self) -> u8 {
        match self {
            KvWire::Request(_) => 0,
            KvWire::Reply(_) => 1,
            KvWire::Redirect { .. } => 2,
            KvWire::Retry { .. } => 3,
            KvWire::ShardRedirect { .. } => 4,
            KvWire::ShardsReq => 5,
            KvWire::Shards { .. } => 6,
            KvWire::ReadRequest { .. } => 7,
            KvWire::TxnRequest { .. } => 8,
            KvWire::TxnStatusReq { .. } => 9,
            KvWire::TxnStatus { .. } => 10,
            KvWire::CrossShard { .. } => 11,
        }
    }
}

impl Wire for KvWire {
    fn encode(&self, buf: &mut Vec<u8>, _cache: &mut BatchCache) {
        buf.push(self.discriminant());
        match self {
            KvWire::Request(cmd) => WalEncode::encode(cmd, buf),
            KvWire::Reply(res) => {
                buf.extend_from_slice(&res.client.to_le_bytes());
                buf.extend_from_slice(&res.seq.to_le_bytes());
                match res.value {
                    Some(v) => {
                        buf.push(1);
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                    None => buf.push(0),
                }
                buf.push(res.applied as u8);
            }
            KvWire::Redirect { leader } => buf.extend_from_slice(&leader.to_le_bytes()),
            KvWire::Retry { seq } => buf.extend_from_slice(&seq.to_le_bytes()),
            KvWire::ShardRedirect { shard, leader } => {
                buf.extend_from_slice(&shard.to_le_bytes());
                buf.extend_from_slice(&leader.to_le_bytes());
            }
            KvWire::ShardsReq => {}
            KvWire::Shards { leaders } => {
                buf.extend_from_slice(&(leaders.len() as u32).to_le_bytes());
                for &l in leaders {
                    buf.extend_from_slice(&l.to_le_bytes());
                }
            }
            KvWire::ReadRequest {
                mode,
                client,
                seq,
                key,
            } => {
                buf.push(mode.discriminant());
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                put_str(buf, key);
            }
            KvWire::TxnRequest { client, seq, spec } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                put_guards(buf, &spec.guards);
                put_writes(buf, &spec.writes);
            }
            KvWire::TxnStatusReq { client, seq } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            KvWire::TxnStatus { client, seq, state } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(state.discriminant());
            }
            KvWire::CrossShard { seq } => buf.extend_from_slice(&seq.to_le_bytes()),
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.u8("KvWire discriminant")? {
            0 => KvWire::Request(decode_command(r)?),
            1 => {
                let client = r.u64("KvResult.client")?;
                let seq = r.u64("KvResult.seq")?;
                let value = match r.u8("KvResult.value flag")? {
                    0 => None,
                    1 => Some(r.i64("KvResult.value")?),
                    v => {
                        return Err(WireError::UnknownDiscriminant {
                            what: "KvResult.value flag",
                            value: v,
                        })
                    }
                };
                KvWire::Reply(KvResult {
                    client,
                    seq,
                    value,
                    applied: r.bool("KvResult.applied")?,
                })
            }
            2 => KvWire::Redirect {
                leader: r.u64("Redirect.leader")?,
            },
            3 => KvWire::Retry {
                seq: r.u64("Retry.seq")?,
            },
            4 => KvWire::ShardRedirect {
                shard: r.u32("ShardRedirect.shard")?,
                leader: r.u64("ShardRedirect.leader")?,
            },
            5 => KvWire::ShardsReq,
            6 => {
                let n = r.count(8, "Shards.leaders")?;
                let mut leaders = Vec::with_capacity(n);
                for _ in 0..n {
                    leaders.push(r.u64("Shards.leader")?);
                }
                KvWire::Shards { leaders }
            }
            7 => {
                let mode = r.u8("ReadRequest.mode")?;
                let mode =
                    ReadMode::from_discriminant(mode).ok_or(WireError::UnknownDiscriminant {
                        what: "ReadMode",
                        value: mode,
                    })?;
                KvWire::ReadRequest {
                    mode,
                    client: r.u64("ReadRequest.client")?,
                    seq: r.u64("ReadRequest.seq")?,
                    key: r.str("ReadRequest.key")?,
                }
            }
            8 => KvWire::TxnRequest {
                client: r.u64("TxnRequest.client")?,
                seq: r.u64("TxnRequest.seq")?,
                spec: TxnSpec {
                    guards: get_guards(r)?,
                    writes: get_writes(r)?,
                },
            },
            9 => KvWire::TxnStatusReq {
                client: r.u64("TxnStatusReq.client")?,
                seq: r.u64("TxnStatusReq.seq")?,
            },
            10 => {
                let client = r.u64("TxnStatus.client")?;
                let seq = r.u64("TxnStatus.seq")?;
                let state = r.u8("TxnStatus.state")?;
                let state =
                    TxnState::from_discriminant(state).ok_or(WireError::UnknownDiscriminant {
                        what: "TxnState",
                        value: state,
                    })?;
                KvWire::TxnStatus { client, seq, state }
            }
            11 => KvWire::CrossShard {
                seq: r.u64("CrossShard.seq")?,
            },
            v => {
                return Err(WireError::UnknownDiscriminant {
                    what: "KvWire",
                    value: v,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(seq: u64, op: KvOp) -> KvCommand {
        KvCommand { client: 7, seq, op }
    }

    #[test]
    fn commands_roundtrip_via_wal_encode() {
        let ops = vec![
            KvOp::Put {
                key: "k".into(),
                value: -3,
            },
            KvOp::Delete { key: "gone".into() },
            KvOp::Add {
                key: "ctr".into(),
                delta: 41,
            },
            KvOp::Transfer {
                from: "a".into(),
                to: "b".into(),
                amount: 100,
            },
            KvOp::Read { key: "k".into() },
            KvOp::Cas {
                key: "c".into(),
                expect: Some(3),
                set: None,
            },
            KvOp::Cas {
                key: "c".into(),
                expect: None,
                set: Some(-9),
            },
            KvOp::WriteBatch {
                writes: vec![
                    WriteOp::Put {
                        key: "a".into(),
                        value: 1,
                    },
                    WriteOp::Delete { key: "b".into() },
                    WriteOp::Add {
                        key: "c".into(),
                        delta: -2,
                    },
                ],
            },
            KvOp::TxnPrepare {
                txn: (7, 12),
                coord_shard: 1,
                participants: vec![0, 1, 3],
                guards: vec![
                    TxnGuard::MinValue {
                        key: "from".into(),
                        min: 50,
                    },
                    TxnGuard::Equals {
                        key: "v".into(),
                        expect: None,
                    },
                ],
                writes: vec![WriteOp::Add {
                    key: "from".into(),
                    delta: -50,
                }],
            },
            KvOp::TxnDecide {
                txn: (7, 12),
                commit: true,
            },
            KvOp::TxnCommit { txn: (7, 12) },
            KvOp::TxnAbort { txn: (7, 13) },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let c = cmd(i as u64, op);
            let mut buf = Vec::new();
            WalEncode::encode(&c, &mut buf);
            assert_eq!(KvCommand::decode(&buf), Some(c));
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let c = cmd(1, KvOp::Read { key: "x".into() });
        let mut buf = Vec::new();
        WalEncode::encode(&c, &mut buf);
        buf.push(0);
        assert_eq!(KvCommand::decode(&buf), None);
    }

    #[test]
    fn non_utf8_key_is_typed_error() {
        let c = cmd(1, KvOp::Read { key: "xy".into() });
        let mut buf = Vec::new();
        WalEncode::encode(&c, &mut buf);
        // Corrupt the key bytes (trailing 2 bytes of the string).
        let n = buf.len();
        buf[n - 2] = 0xFF;
        buf[n - 1] = 0xFE;
        assert_eq!(KvCommand::decode(&buf), None);
    }

    #[test]
    fn client_protocol_roundtrips() {
        let msgs = vec![
            KvWire::Request(cmd(
                9,
                KvOp::Put {
                    key: "x".into(),
                    value: 5,
                },
            )),
            KvWire::Reply(KvResult {
                client: 7,
                seq: 9,
                value: Some(5),
                applied: true,
            }),
            KvWire::Reply(KvResult {
                client: 7,
                seq: 10,
                value: None,
                applied: false,
            }),
            KvWire::Redirect { leader: 3 },
            KvWire::Retry { seq: 9 },
            KvWire::ShardRedirect {
                shard: 2,
                leader: 1,
            },
            KvWire::ShardsReq,
            KvWire::Shards {
                leaders: vec![1, 0, 3],
            },
            KvWire::ReadRequest {
                mode: ReadMode::Lease,
                client: 7,
                seq: 11,
                key: "x".into(),
            },
            KvWire::ReadRequest {
                mode: ReadMode::ReadIndex,
                client: 7,
                seq: 12,
                key: "".into(),
            },
            KvWire::ReadRequest {
                mode: ReadMode::Log,
                client: 8,
                seq: 1,
                key: "deep/key".into(),
            },
            KvWire::TxnRequest {
                client: 7,
                seq: 13,
                spec: TxnSpec::transfer("alice", "bob", 25),
            },
            KvWire::TxnRequest {
                client: 7,
                seq: 14,
                spec: TxnSpec::default(),
            },
            KvWire::TxnStatusReq { client: 7, seq: 13 },
            KvWire::TxnStatus {
                client: 7,
                seq: 13,
                state: TxnState::Committed,
            },
            KvWire::TxnStatus {
                client: 7,
                seq: 15,
                state: TxnState::Unknown,
            },
            KvWire::CrossShard { seq: 16 },
        ];
        for m in &msgs {
            let bytes = m.to_bytes();
            assert_eq!(&KvWire::from_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn txn_state_discriminants_roundtrip() {
        for s in [
            TxnState::Unknown,
            TxnState::Pending,
            TxnState::Committed,
            TxnState::Aborted,
        ] {
            assert_eq!(TxnState::from_discriminant(s.discriminant()), Some(s));
        }
        assert_eq!(TxnState::from_discriminant(4), None);
    }
}
