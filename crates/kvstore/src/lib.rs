//! # kvstore — a replicated key-value store on Omni-Paxos
//!
//! The paper motivates RSMs with coordination and data services (§1); this
//! crate is the canonical such service built on the reproduction: a
//! partition-tolerant, linearizable key-value store.
//!
//! Each server embeds an [`omnipaxos::OmniPaxosServer`] replicating
//! [`KvCommand`]s; the store state machine applies decided commands in log
//! order, so every replica converges to the same map. Writes go through the
//! log; reads are served either **eventually consistent** (local state) or
//! **linearizable** by appending a no-op read marker and waiting for it to
//! decide (the classic read-through-log technique).
//!
//! Client sessions carry sequence numbers so command retries (needed under
//! partitions — see the paper's §7.2) are deduplicated: the state machine
//! applies each `(client, seq)` at most once.

pub mod shard;
pub mod store;
pub mod txn;
pub mod wire;

pub use shard::{op_spans_shards, shard_config, shard_of_key, shard_of_op, ShardedKvNode};
pub use store::{
    KvCommand, KvNode, KvOp, KvResult, KvStateMachine, ReadMode, TxnGuard, TxnId, TxnSpec, WriteOp,
};
pub use txn::{TxnCoordinator, TxnOutcome, TXN_CLIENT_FLAG};
pub use wire::{KvWire, TxnState};

/// Server identifier, shared with the `omnipaxos` crate.
pub type NodeId = omnipaxos::NodeId;
