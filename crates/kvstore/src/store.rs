//! The replicated key-value state machine and its server node.

use omnipaxos::sequence_paxos::ProposeErr;
use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::{Entry, NodeId};
use std::collections::HashMap;

/// A key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Set `key` to `value`.
    Put { key: String, value: i64 },
    /// Remove `key`.
    Delete { key: String },
    /// Add `delta` to `key` (missing keys count as 0). Conditional logic in
    /// the state machine (rather than read-modify-write at the client) is
    /// what makes concurrent increments linearizable.
    Add { key: String, delta: i64 },
    /// Atomically move `amount` from `from` to `to` iff `from` has at least
    /// `amount` (the bank-transfer example of `examples/kv_bank.rs`).
    Transfer {
        from: String,
        to: String,
        amount: i64,
    },
    /// A read marker: deciding it linearizes the read at its log position.
    Read { key: String },
}

/// A client command: the operation plus its session identity for exactly-
/// once application under retries.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCommand {
    /// Issuing client.
    pub client: u64,
    /// Per-client sequence number; commands apply at most once per
    /// `(client, seq)`.
    pub seq: u64,
    pub op: KvOp,
}

impl Entry for KvCommand {
    fn size_bytes(&self) -> usize {
        let op = match &self.op {
            KvOp::Put { key, .. } => key.len() + 8,
            KvOp::Delete { key } => key.len(),
            KvOp::Add { key, .. } => key.len() + 8,
            KvOp::Transfer { from, to, .. } => from.len() + to.len() + 8,
            KvOp::Read { key } => key.len(),
        };
        16 + op
    }
}

/// Result of an applied command, delivered to the issuing client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvResult {
    pub client: u64,
    pub seq: u64,
    /// The value read (for `Read`), the value after the update (for
    /// `Put`/`Add`), `None` for `Delete`, and `None` for a `Transfer` that
    /// was rejected for insufficient funds.
    pub value: Option<i64>,
    /// Did the operation take effect? (`false` only for rejected
    /// transfers and duplicate retries.)
    pub applied: bool,
}

/// One key-value server: an Omni-Paxos replica plus the applied state.
pub struct KvNode {
    server: OmniPaxosServer<KvCommand>,
    state: HashMap<String, i64>,
    /// Highest applied sequence number per client (session dedup).
    sessions: HashMap<u64, u64>,
    results: Vec<KvResult>,
}

impl KvNode {
    /// A server of the initial configuration `nodes`.
    pub fn new(pid: NodeId, nodes: Vec<NodeId>) -> Self {
        KvNode {
            server: OmniPaxosServer::new(ServerConfig::with(pid), nodes),
            state: HashMap::new(),
            sessions: HashMap::new(),
            results: Vec::new(),
        }
    }

    /// This server's id.
    pub fn pid(&self) -> NodeId {
        self.server.pid()
    }

    /// Is this server the current leader?
    pub fn is_leader(&self) -> bool {
        self.server.is_leader()
    }

    /// Submit a command for replication.
    pub fn submit(&mut self, cmd: KvCommand) -> Result<(), ProposeErr> {
        self.server.propose(cmd)
    }

    /// Eventually-consistent local read (no log round-trip).
    pub fn read_local(&self, key: &str) -> Option<i64> {
        self.state.get(key).copied()
    }

    /// Linearizable read: replicate a read marker; the result arrives via
    /// [`KvNode::take_results`] once the marker decides.
    pub fn read_linearizable(
        &mut self,
        client: u64,
        seq: u64,
        key: impl Into<String>,
    ) -> Result<(), ProposeErr> {
        self.submit(KvCommand {
            client,
            seq,
            op: KvOp::Read { key: key.into() },
        })
    }

    /// Advance timers, apply newly decided commands.
    pub fn tick(&mut self) {
        self.server.tick();
        for cmd in self.server.poll_applied() {
            self.apply(cmd);
        }
    }

    /// Feed one incoming message.
    pub fn handle(&mut self, from: NodeId, msg: ServiceMsg<KvCommand>) {
        self.server.handle(from, msg);
        for cmd in self.server.poll_applied() {
            self.apply(cmd);
        }
    }

    /// Drain outgoing messages.
    pub fn outgoing(&mut self) -> Vec<(NodeId, ServiceMsg<KvCommand>)> {
        self.server.outgoing()
    }

    /// Results of commands applied since the last call.
    pub fn take_results(&mut self) -> Vec<KvResult> {
        std::mem::take(&mut self.results)
    }

    /// The applied state (for inspection and tests).
    pub fn state(&self) -> &HashMap<String, i64> {
        &self.state
    }

    /// Access the underlying replication server (partitions, recovery).
    pub fn server(&mut self) -> &mut OmniPaxosServer<KvCommand> {
        &mut self.server
    }

    fn apply(&mut self, cmd: KvCommand) {
        // Session dedup: at-most-once per (client, seq). Reads are also
        // markers, so they participate in the same numbering.
        let last = self.sessions.entry(cmd.client).or_insert(0);
        if cmd.seq <= *last {
            self.results.push(KvResult {
                client: cmd.client,
                seq: cmd.seq,
                value: None,
                applied: false,
            });
            return;
        }
        *last = cmd.seq;
        let (value, applied) = match cmd.op {
            KvOp::Put { key, value } => {
                self.state.insert(key, value);
                (Some(value), true)
            }
            KvOp::Delete { key } => {
                self.state.remove(&key);
                (None, true)
            }
            KvOp::Add { key, delta } => {
                let v = self.state.entry(key).or_insert(0);
                *v += delta;
                (Some(*v), true)
            }
            KvOp::Transfer { from, to, amount } => {
                let balance = self.state.get(&from).copied().unwrap_or(0);
                if balance >= amount {
                    *self.state.entry(from).or_insert(0) -= amount;
                    *self.state.entry(to).or_insert(0) += amount;
                    (Some(amount), true)
                } else {
                    (None, false)
                }
            }
            KvOp::Read { key } => (self.state.get(&key).copied(), true),
        };
        self.results.push(KvResult {
            client: cmd.client,
            seq: cmd.seq,
            value,
            applied,
        });
    }
}

impl std::fmt::Debug for KvNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvNode")
            .field("server", &self.server)
            .field("keys", &self.state.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a fully connected in-memory cluster until quiescent.
    fn run(nodes: &mut [KvNode], steps: usize) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    fn cluster(n: usize) -> Vec<KvNode> {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        ids.iter().map(|&p| KvNode::new(p, ids.clone())).collect()
    }

    fn leader_idx(nodes: &[KvNode]) -> usize {
        nodes.iter().position(|n| n.is_leader()).expect("leader")
    }

    #[test]
    fn puts_replicate_to_all_servers() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 7,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("x"), Some(7));
        }
    }

    #[test]
    fn adds_are_linearized_not_lost() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        for seq in 1..=10 {
            nodes[li]
                .submit(KvCommand {
                    client: 1,
                    seq,
                    op: KvOp::Add {
                        key: "ctr".into(),
                        delta: 1,
                    },
                })
                .unwrap();
        }
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("ctr"), Some(10));
        }
    }

    #[test]
    fn duplicate_retries_apply_once() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let cmd = KvCommand {
            client: 9,
            seq: 1,
            op: KvOp::Add {
                key: "k".into(),
                delta: 5,
            },
        };
        nodes[li].submit(cmd.clone()).unwrap();
        nodes[li].submit(cmd.clone()).unwrap(); // client retry
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("k"), Some(5), "retry must not double-apply");
        }
    }

    #[test]
    fn transfer_rejected_on_insufficient_funds() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "alice".into(),
                    value: 30,
                },
            })
            .unwrap();
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 2,
                op: KvOp::Transfer {
                    from: "alice".into(),
                    to: "bob".into(),
                    amount: 50,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let results = nodes[li].take_results();
        let xfer = results.iter().find(|r| r.seq == 2).unwrap();
        assert!(!xfer.applied);
        for n in &nodes {
            assert_eq!(n.read_local("alice"), Some(30));
            assert_eq!(n.read_local("bob"), None);
        }
    }

    #[test]
    fn linearizable_read_returns_value_through_log() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 42,
                },
            })
            .unwrap();
        nodes[li].read_linearizable(1, 2, "x").unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let results = nodes[li].take_results();
        let read = results.iter().find(|r| r.seq == 2).unwrap();
        assert_eq!(read.value, Some(42));
    }

    #[test]
    fn follower_submissions_are_forwarded() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let fi = (li + 1) % 3;
        nodes[fi]
            .submit(KvCommand {
                client: 2,
                seq: 1,
                op: KvOp::Put {
                    key: "f".into(),
                    value: 1,
                },
            })
            .unwrap();
        run(&mut nodes, 200);
        for n in &nodes {
            assert_eq!(n.read_local("f"), Some(1));
        }
    }

    #[test]
    fn state_machines_converge_identically() {
        let mut nodes = cluster(5);
        run(&mut nodes, 150);
        let li = leader_idx(&nodes);
        for seq in 1..=50u64 {
            let op = match seq % 4 {
                0 => KvOp::Put {
                    key: format!("k{}", seq % 7),
                    value: seq as i64,
                },
                1 => KvOp::Add {
                    key: format!("k{}", seq % 5),
                    delta: 2,
                },
                2 => KvOp::Delete {
                    key: format!("k{}", seq % 3),
                },
                _ => KvOp::Transfer {
                    from: format!("k{}", seq % 5),
                    to: format!("k{}", seq % 7),
                    amount: 1,
                },
            };
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run(&mut nodes, 200);
        let reference = nodes[0].state().clone();
        for n in &nodes[1..] {
            assert_eq!(n.state(), &reference, "replicas must converge");
        }
    }
}
