//! The replicated key-value state machine and its server node.

use omnipaxos::sequence_paxos::ProposeErr;
use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::snapshot::{SnapshotData, Snapshottable};
use omnipaxos::storage::{MemoryStorage, Storage, TrimError};
use omnipaxos::{Entry, NodeId};
use std::collections::{BTreeMap, HashMap};

/// Transaction identity: the issuing client's `(client, seq)` pair.
/// Clients own their id space, so the pair is globally unique — it is the
/// key under which a whole cross-shard transaction is deduplicated, no
/// matter how many coordinators end up driving it.
pub type TxnId = (u64, u64);

/// One unconditional write, usable inside a [`KvOp::WriteBatch`] (applied
/// atomically as one log entry) or staged by a [`KvOp::TxnPrepare`]
/// (applied at commit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Set `key` to `value`.
    Put { key: String, value: i64 },
    /// Remove `key`.
    Delete { key: String },
    /// Add `delta` to `key` (missing keys count as 0).
    Add { key: String, delta: i64 },
}

impl WriteOp {
    /// The key this write touches.
    pub fn key(&self) -> &str {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Delete { key } | WriteOp::Add { key, .. } => key,
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Add { key, .. } => key.len() + 9,
            WriteOp::Delete { key } => key.len() + 1,
        }
    }
}

/// A transaction precondition, evaluated at prepare time against the
/// participant shard's state. A failed guard is a no-vote: the prepare
/// stages nothing and the coordinator aborts the whole transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnGuard {
    /// `key`'s value (absent = 0) must be at least `min` — the
    /// sufficient-funds guard of a cross-shard transfer.
    MinValue { key: String, min: i64 },
    /// `key`'s value must equal `expect` (`None` = absent) — the CAS
    /// guard, lifted to a transaction.
    Equals { key: String, expect: Option<i64> },
}

impl TxnGuard {
    /// The key this guard reads (it is locked between prepare and
    /// commit/abort so concurrent writes cannot invalidate the check).
    pub fn key(&self) -> &str {
        match self {
            TxnGuard::MinValue { key, .. } | TxnGuard::Equals { key, .. } => key,
        }
    }

    /// Does the guard hold against `state`?
    pub fn holds(&self, state: &HashMap<String, i64>) -> bool {
        match self {
            TxnGuard::MinValue { key, min } => state.get(key).copied().unwrap_or(0) >= *min,
            TxnGuard::Equals { key, expect } => state.get(key).copied() == *expect,
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        match self {
            TxnGuard::MinValue { key, .. } => key.len() + 9,
            TxnGuard::Equals { key, .. } => key.len() + 10,
        }
    }
}

/// A client-facing transaction: preconditions plus writes, spanning any
/// number of shards. The coordinator (`crate::txn`) partitions both lists
/// by key ownership and runs two-phase commit across the participant
/// shards' logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnSpec {
    pub guards: Vec<TxnGuard>,
    pub writes: Vec<WriteOp>,
}

impl TxnSpec {
    /// The bank transfer: move `amount` from `from` to `to` iff `from`
    /// holds at least `amount` — possibly across shards.
    pub fn transfer(from: impl Into<String>, to: impl Into<String>, amount: i64) -> Self {
        let (from, to) = (from.into(), to.into());
        TxnSpec {
            guards: vec![TxnGuard::MinValue {
                key: from.clone(),
                min: amount,
            }],
            writes: vec![
                WriteOp::Add {
                    key: from,
                    delta: -amount,
                },
                WriteOp::Add {
                    key: to,
                    delta: amount,
                },
            ],
        }
    }

    /// Every key the transaction touches (guards and writes).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.guards
            .iter()
            .map(|g| g.key())
            .chain(self.writes.iter().map(|w| w.key()))
    }

    /// A transaction with nothing to check and nothing to write.
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty() && self.writes.is_empty()
    }
}

/// A key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Set `key` to `value`.
    Put { key: String, value: i64 },
    /// Remove `key`.
    Delete { key: String },
    /// Add `delta` to `key` (missing keys count as 0). Conditional logic in
    /// the state machine (rather than read-modify-write at the client) is
    /// what makes concurrent increments linearizable.
    Add { key: String, delta: i64 },
    /// Atomically move `amount` from `from` to `to` iff `from` has at least
    /// `amount` (the bank-transfer example of `examples/kv_bank.rs`).
    Transfer {
        from: String,
        to: String,
        amount: i64,
    },
    /// A read marker: deciding it linearizes the read at its log position.
    Read { key: String },
    /// Compare-and-set, decided as an ordinary single log entry: if
    /// `key`'s current value equals `expect` (`None` = absent), apply
    /// `set` (`Some(v)` puts `v`, `None` deletes the key) and succeed;
    /// otherwise leave the state untouched and report the actual value.
    /// Conditional put and conditional delete are the two `set` shapes of
    /// the same op. The *verdict* — not just a dedup bit — is cached in
    /// the session table, so a retried CAS observes its original outcome
    /// instead of being re-evaluated against newer state.
    Cas {
        key: String,
        expect: Option<i64>,
        set: Option<i64>,
    },
    /// Several unconditional writes applied atomically as ONE log entry
    /// (all-or-nothing is trivial: one decide, one apply, trivially
    /// linearizable). The sharded gateway admits a batch only if every
    /// key lives on one shard; spanning batches earn a typed error.
    WriteBatch { writes: Vec<WriteOp> },
    /// 2PC participant record (see `crate::txn`): iff every guard holds
    /// and no touched key is locked by another transaction, stage
    /// `writes` and lock every touched key (vote yes); otherwise stage
    /// nothing (vote no). Idempotent by `txn`; bypasses the session table.
    TxnPrepare {
        txn: TxnId,
        /// The shard whose log holds the commit/abort decision.
        coord_shard: u32,
        /// Every participant shard — recovery needs the full set to drive
        /// an orphaned transaction to resolution from any replica.
        participants: Vec<u32>,
        guards: Vec<TxnGuard>,
        writes: Vec<WriteOp>,
    },
    /// 2PC decision record, proposed into the *coordinator shard's* log.
    /// The first decision for `txn` wins and is immutable; later
    /// conflicting records are no-ops that report the recorded decision —
    /// which is what serializes a racing recovery abort against the
    /// original coordinator's commit.
    TxnDecide { txn: TxnId, commit: bool },
    /// 2PC resolution record: apply `txn`'s staged writes and release its
    /// locks. A no-op (reporting the recorded resolution) if the
    /// transaction is not prepared here.
    TxnCommit { txn: TxnId },
    /// 2PC resolution record: discard `txn`'s staged writes and release
    /// its locks. A no-op if the transaction is not prepared here.
    TxnAbort { txn: TxnId },
}

/// A client command: the operation plus its session identity for exactly-
/// once application under retries.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCommand {
    /// Issuing client.
    pub client: u64,
    /// Per-client sequence number; commands apply at most once per
    /// `(client, seq)`.
    pub seq: u64,
    pub op: KvOp,
}

impl Entry for KvCommand {
    fn size_bytes(&self) -> usize {
        let op = match &self.op {
            KvOp::Put { key, .. } => key.len() + 8,
            KvOp::Delete { key } => key.len(),
            KvOp::Add { key, .. } => key.len() + 8,
            KvOp::Transfer { from, to, .. } => from.len() + to.len() + 8,
            KvOp::Read { key } => key.len(),
            KvOp::Cas { key, .. } => key.len() + 18,
            KvOp::WriteBatch { writes } => 4 + writes.iter().map(|w| w.size_bytes()).sum::<usize>(),
            KvOp::TxnPrepare {
                participants,
                guards,
                writes,
                ..
            } => {
                28 + 4 * participants.len()
                    + guards.iter().map(|g| g.size_bytes()).sum::<usize>()
                    + writes.iter().map(|w| w.size_bytes()).sum::<usize>()
            }
            KvOp::TxnDecide { .. } => 17,
            KvOp::TxnCommit { .. } | KvOp::TxnAbort { .. } => 16,
        };
        16 + op
    }
}

/// How a linearizable read is served (per request; see DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Replicate a read marker through the log — the always-correct
    /// baseline: a full consensus round and a log slot per read.
    #[default]
    Log,
    /// Leader lease: served from the leader's local state machine with no
    /// message round while the BLE lease holds; falls through to the log
    /// path when it does not.
    Lease,
    /// Read index: any replica captures the leader's commit index in one
    /// lightweight round, waits for local apply, and serves from its own
    /// state machine (the follower-read path).
    ReadIndex,
}

impl ReadMode {
    /// Stable wire discriminant (append-only).
    pub const fn discriminant(self) -> u8 {
        match self {
            ReadMode::Log => 0,
            ReadMode::Lease => 1,
            ReadMode::ReadIndex => 2,
        }
    }

    /// Inverse of [`ReadMode::discriminant`].
    pub const fn from_discriminant(v: u8) -> Option<Self> {
        match v {
            0 => Some(ReadMode::Log),
            1 => Some(ReadMode::Lease),
            2 => Some(ReadMode::ReadIndex),
            _ => None,
        }
    }
}

/// Result of an applied command, delivered to the issuing client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvResult {
    pub client: u64,
    pub seq: u64,
    /// The value read (for `Read`), the value after the update (for
    /// `Put`/`Add`), `None` for `Delete`, the *actual* value for a `Cas`
    /// that lost its race, and `None` for a `Transfer` rejected for
    /// insufficient funds.
    pub value: Option<i64>,
    /// Did the operation take effect? `false` for rejected transfers,
    /// failed CAS, writes refused because a key is transaction-locked,
    /// duplicate retries, and no-vote/no-op transaction records.
    pub applied: bool,
}

/// One client's session slot: the highest applied sequence number plus the
/// cached *verdict* of that command. Caching the verdict (not just the
/// dedup watermark) is what makes conditional ops retry-safe: a retried
/// `Cas` that lost the race re-observes its original `(value, applied)`
/// instead of being re-evaluated against newer state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionEntry {
    /// Highest applied sequence number for this client.
    pub seq: u64,
    /// Cached result value of that command.
    pub value: Option<i64>,
    /// Cached applied bit of that command.
    pub applied: bool,
}

/// A transaction prepared (vote-yes) on this shard: its staged writes and
/// the keys it holds locked until a commit/abort record resolves it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedTxn {
    /// The shard whose log holds the decision record.
    pub coord_shard: u32,
    /// Every participant shard of the transaction.
    pub participants: Vec<u32>,
    /// Writes staged here, applied only at commit.
    pub writes: Vec<WriteOp>,
    /// Keys locked here (sorted, deduplicated; guards and writes).
    pub locked: Vec<String>,
}

/// The bare key-value state machine: the applied map, the client session
/// table, and the 2PC participant state (all of it is replicated state —
/// a snapshot that forgot any piece would re-apply retried commands or
/// orphan prepared locks after a restore).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStateMachine {
    state: HashMap<String, i64>,
    /// Latest applied sequence number and its cached verdict, per client.
    sessions: HashMap<u64, SessionEntry>,
    /// Transactions prepared (vote-yes) here, awaiting commit/abort.
    /// BTreeMap so snapshots and scans iterate deterministically.
    prepared: BTreeMap<TxnId, PreparedTxn>,
    /// Decision records in *this* shard's log (this shard is the
    /// transaction's coordinator shard). First decision wins, immutable.
    decisions: BTreeMap<TxnId, bool>,
    /// Transactions resolved here (commit applied or abort discarded).
    /// Blocks a late duplicate prepare from re-staging after resolution.
    resolved: BTreeMap<TxnId, bool>,
    /// Key → holding transaction. Derived from `prepared` (rebuilt on
    /// restore), kept materialized for O(1) conflict checks.
    locks: HashMap<String, TxnId>,
}

impl KvStateMachine {
    /// The applied key-value map.
    pub fn state(&self) -> &HashMap<String, i64> {
        &self.state
    }

    /// The client session table: latest applied sequence number plus its
    /// cached verdict, per client. Part of the replicated state (snapshots
    /// include it); the chaos harness asserts it survives crash-restore
    /// and snapshot transfer so retried commands stay deduplicated and
    /// retried conditional ops re-observe their original verdict.
    pub fn sessions(&self) -> &HashMap<u64, SessionEntry> {
        &self.sessions
    }

    /// Transactions prepared here and not yet resolved (their keys are
    /// locked). Empty in a quiescent, fully healed cluster — the chaos
    /// harness asserts no orphaned locks survive a forced heal.
    pub fn prepared(&self) -> &BTreeMap<TxnId, PreparedTxn> {
        &self.prepared
    }

    /// Decision records held in this shard's log (first-wins, immutable).
    pub fn decisions(&self) -> &BTreeMap<TxnId, bool> {
        &self.decisions
    }

    /// Transactions resolved on this shard (`true` = committed).
    pub fn resolved(&self) -> &BTreeMap<TxnId, bool> {
        &self.resolved
    }

    /// The lock table: key → transaction holding it.
    pub fn locks(&self) -> &HashMap<String, TxnId> {
        &self.locks
    }

    /// Apply one decided command, returning its client-visible result.
    /// Exactly-once: a duplicate of the *latest* `(client, seq)` replays
    /// its cached verdict verbatim; older duplicates report
    /// `applied: false`. Transaction records bypass the session table —
    /// they are idempotent by `txn` id and may be driven by any number of
    /// recovering coordinators.
    pub fn apply(&mut self, cmd: KvCommand) -> KvResult {
        let (value, applied) = match cmd.op {
            KvOp::TxnPrepare {
                txn,
                coord_shard,
                participants,
                guards,
                writes,
            } => self.apply_prepare(txn, coord_shard, participants, guards, writes),
            KvOp::TxnDecide { txn, commit } => self.apply_decide(txn, commit),
            KvOp::TxnCommit { txn } => self.apply_commit(txn),
            KvOp::TxnAbort { txn } => self.apply_abort(txn),
            op => {
                // Session dedup: at-most-once per (client, seq). Reads are
                // also markers, so they participate in the same numbering.
                let entry = self.sessions.entry(cmd.client).or_default();
                if cmd.seq == entry.seq && cmd.seq != 0 {
                    // Retransmit of the latest command: replay the cached
                    // verdict (exactly-once semantics for conditional ops).
                    return KvResult {
                        client: cmd.client,
                        seq: cmd.seq,
                        value: entry.value,
                        applied: entry.applied,
                    };
                }
                if cmd.seq <= entry.seq {
                    // An older retransmit (seq numbering starts at 1, so
                    // seq 0 is always stale): deduplicated, verdict lost —
                    // only the latest slot caches one.
                    return KvResult {
                        client: cmd.client,
                        seq: cmd.seq,
                        value: None,
                        applied: false,
                    };
                }
                let verdict = self.apply_op(op);
                self.sessions.insert(
                    cmd.client,
                    SessionEntry {
                        seq: cmd.seq,
                        value: verdict.0,
                        applied: verdict.1,
                    },
                );
                verdict
            }
        };
        KvResult {
            client: cmd.client,
            seq: cmd.seq,
            value,
            applied,
        }
    }

    /// Apply a non-transactional op. A key locked by a prepared
    /// transaction rejects every plain write touching it (`applied:
    /// false`, client retries) — writes sneaking past a prepare would
    /// invalidate the guard the participant already voted yes on.
    fn apply_op(&mut self, op: KvOp) -> (Option<i64>, bool) {
        match op {
            KvOp::Put { key, value } => {
                if self.locks.contains_key(&key) {
                    return (None, false);
                }
                self.state.insert(key, value);
                (Some(value), true)
            }
            KvOp::Delete { key } => {
                if self.locks.contains_key(&key) {
                    return (None, false);
                }
                self.state.remove(&key);
                (None, true)
            }
            KvOp::Add { key, delta } => {
                if self.locks.contains_key(&key) {
                    return (None, false);
                }
                let v = self.state.entry(key).or_insert(0);
                *v += delta;
                (Some(*v), true)
            }
            KvOp::Transfer { from, to, amount } => {
                if self.locks.contains_key(&from) || self.locks.contains_key(&to) {
                    return (None, false);
                }
                let balance = self.state.get(&from).copied().unwrap_or(0);
                if balance >= amount {
                    *self.state.entry(from).or_insert(0) -= amount;
                    *self.state.entry(to).or_insert(0) += amount;
                    (Some(amount), true)
                } else {
                    (None, false)
                }
            }
            KvOp::Read { key } => (self.state.get(&key).copied(), true),
            KvOp::Cas { key, expect, set } => {
                if self.locks.contains_key(&key) {
                    return (None, false);
                }
                let actual = self.state.get(&key).copied();
                if actual != expect {
                    // Lost the race: report the actual value, applied=false.
                    return (actual, false);
                }
                match set {
                    Some(v) => {
                        self.state.insert(key, v);
                        (Some(v), true)
                    }
                    None => {
                        self.state.remove(&key);
                        (None, true)
                    }
                }
            }
            KvOp::WriteBatch { writes } => {
                if writes.iter().any(|w| self.locks.contains_key(w.key())) {
                    return (None, false);
                }
                let n = writes.len();
                for w in writes {
                    self.apply_write(w);
                }
                (Some(n as i64), true)
            }
            KvOp::TxnPrepare { .. }
            | KvOp::TxnDecide { .. }
            | KvOp::TxnCommit { .. }
            | KvOp::TxnAbort { .. } => unreachable!("txn records routed in apply()"),
        }
    }

    fn apply_write(&mut self, w: WriteOp) {
        match w {
            WriteOp::Put { key, value } => {
                self.state.insert(key, value);
            }
            WriteOp::Delete { key } => {
                self.state.remove(&key);
            }
            WriteOp::Add { key, delta } => {
                *self.state.entry(key).or_insert(0) += delta;
            }
        }
    }

    /// 2PC prepare: vote yes (stage writes, lock keys) iff every guard
    /// holds and no touched key is locked by another transaction.
    /// Idempotent: a duplicate prepare of an already-prepared or
    /// already-resolved transaction re-reports without re-staging.
    fn apply_prepare(
        &mut self,
        txn: TxnId,
        coord_shard: u32,
        participants: Vec<u32>,
        guards: Vec<TxnGuard>,
        writes: Vec<WriteOp>,
    ) -> (Option<i64>, bool) {
        if let Some(&committed) = self.resolved.get(&txn) {
            // Already resolved here: a late duplicate prepare must not
            // re-stage. Report the outcome, vote "no" so a confused
            // coordinator cannot double-commit.
            return (Some(committed as i64), false);
        }
        if self.prepared.contains_key(&txn) {
            return (None, true); // duplicate prepare: still vote yes
        }
        if self.decisions.get(&txn) == Some(&false) {
            // Presumed-abort already recorded here (this shard is also the
            // coordinator shard): refuse to prepare after the fact.
            return (Some(0), false);
        }
        let mut keys: Vec<String> = guards
            .iter()
            .map(|g| g.key().to_string())
            .chain(writes.iter().map(|w| w.key().to_string()))
            .collect();
        keys.sort();
        keys.dedup();
        let conflict = keys.iter().any(|k| self.locks.contains_key(k));
        let holds = guards.iter().all(|g| g.holds(&self.state));
        if conflict || !holds {
            return (None, false); // vote no; nothing staged, nothing locked
        }
        for k in &keys {
            self.locks.insert(k.clone(), txn);
        }
        self.prepared.insert(
            txn,
            PreparedTxn {
                coord_shard,
                participants,
                writes,
                locked: keys,
            },
        );
        (None, true)
    }

    /// 2PC decision record: first decision for `txn` wins and is
    /// immutable. The result value always carries the *winning* decision
    /// (1 = commit, 0 = abort) so both the original coordinator and a
    /// racing recovery observe the same verdict.
    fn apply_decide(&mut self, txn: TxnId, commit: bool) -> (Option<i64>, bool) {
        if let Some(&d) = self.decisions.get(&txn) {
            return (Some(d as i64), false);
        }
        self.decisions.insert(txn, commit);
        (Some(commit as i64), true)
    }

    /// 2PC commit: apply the staged writes, release the locks. A no-op
    /// reporting the recorded resolution if `txn` is not prepared here.
    fn apply_commit(&mut self, txn: TxnId) -> (Option<i64>, bool) {
        match self.prepared.remove(&txn) {
            Some(p) => {
                for k in &p.locked {
                    self.locks.remove(k);
                }
                for w in p.writes {
                    self.apply_write(w);
                }
                self.resolved.insert(txn, true);
                (Some(1), true)
            }
            None => (self.resolved.get(&txn).map(|&c| c as i64), false),
        }
    }

    /// 2PC abort: discard the staged writes, release the locks. Without a
    /// prepare here it still records an abort *tombstone* (unless already
    /// resolved): a recovery abort can overtake a slow prepare, and the
    /// tombstone makes the late prepare vote no instead of staging locks
    /// nobody will ever release promptly.
    fn apply_abort(&mut self, txn: TxnId) -> (Option<i64>, bool) {
        match self.prepared.remove(&txn) {
            Some(p) => {
                for k in &p.locked {
                    self.locks.remove(k);
                }
                self.resolved.insert(txn, false);
                (Some(0), true)
            }
            None => match self.resolved.get(&txn) {
                Some(&c) => (Some(c as i64), false),
                None => {
                    self.resolved.insert(txn, false);
                    (Some(0), false)
                }
            },
        }
    }
}

fn put_key(buf: &mut Vec<u8>, k: &str) {
    buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
    buf.extend_from_slice(k.as_bytes());
}

fn put_write(buf: &mut Vec<u8>, w: &WriteOp) {
    match w {
        WriteOp::Put { key, value } => {
            buf.push(0);
            put_key(buf, key);
            buf.extend_from_slice(&value.to_le_bytes());
        }
        WriteOp::Delete { key } => {
            buf.push(1);
            put_key(buf, key);
        }
        WriteOp::Add { key, delta } => {
            buf.push(2);
            put_key(buf, key);
            buf.extend_from_slice(&delta.to_le_bytes());
        }
    }
}

/// Snapshot wire format (deterministic: maps are emitted in sorted order,
/// so equal states produce byte-identical snapshots):
///
/// ```text
/// [n_state: u64] ([klen: u32][key bytes][value: i64])*   sorted by key
/// [n_sessions: u64]
///   ([client: u64][seq: u64][vflag: u8][value: i64 iff vflag][applied: u8])*
///                                                        sorted by client
/// [n_prepared: u64]
///   ([txn: u64,u64][coord: u32][n_part: u32][part: u32]*
///    [n_locked: u32]([klen: u32][key])*
///    [n_writes: u32](write: disc u8, key, i64 for Put/Add)*)*
/// [n_decisions: u64] ([txn: u64,u64][commit: u8])*
/// [n_resolved: u64] ([txn: u64,u64][committed: u8])*
/// ```
///
/// The lock table is not encoded: it is derived state, rebuilt from each
/// prepared transaction's `locked` list on restore.
impl Snapshottable for KvStateMachine {
    fn snapshot(&self) -> SnapshotData {
        let mut buf = Vec::new();
        let mut keys: Vec<&String> = self.state.keys().collect();
        keys.sort();
        buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        for k in keys {
            put_key(&mut buf, k);
            buf.extend_from_slice(&self.state[k].to_le_bytes());
        }
        let mut clients: Vec<u64> = self.sessions.keys().copied().collect();
        clients.sort_unstable();
        buf.extend_from_slice(&(clients.len() as u64).to_le_bytes());
        for c in clients {
            let e = &self.sessions[&c];
            buf.extend_from_slice(&c.to_le_bytes());
            buf.extend_from_slice(&e.seq.to_le_bytes());
            match e.value {
                Some(v) => {
                    buf.push(1);
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                None => buf.push(0),
            }
            buf.push(e.applied as u8);
        }
        buf.extend_from_slice(&(self.prepared.len() as u64).to_le_bytes());
        for (&(tc, ts), p) in &self.prepared {
            buf.extend_from_slice(&tc.to_le_bytes());
            buf.extend_from_slice(&ts.to_le_bytes());
            buf.extend_from_slice(&p.coord_shard.to_le_bytes());
            buf.extend_from_slice(&(p.participants.len() as u32).to_le_bytes());
            for &s in &p.participants {
                buf.extend_from_slice(&s.to_le_bytes());
            }
            buf.extend_from_slice(&(p.locked.len() as u32).to_le_bytes());
            for k in &p.locked {
                put_key(&mut buf, k);
            }
            buf.extend_from_slice(&(p.writes.len() as u32).to_le_bytes());
            for w in &p.writes {
                put_write(&mut buf, w);
            }
        }
        buf.extend_from_slice(&(self.decisions.len() as u64).to_le_bytes());
        for (&(tc, ts), &commit) in &self.decisions {
            buf.extend_from_slice(&tc.to_le_bytes());
            buf.extend_from_slice(&ts.to_le_bytes());
            buf.push(commit as u8);
        }
        buf.extend_from_slice(&(self.resolved.len() as u64).to_le_bytes());
        for (&(tc, ts), &committed) in &self.resolved {
            buf.extend_from_slice(&tc.to_le_bytes());
            buf.extend_from_slice(&ts.to_le_bytes());
            buf.push(committed as u8);
        }
        buf.into()
    }

    fn restore(&mut self, data: &[u8]) {
        fn take<const N: usize>(data: &[u8], at: &mut usize) -> [u8; N] {
            let out: [u8; N] = data[*at..*at + N].try_into().expect("truncated snapshot");
            *at += N;
            out
        }
        fn take_key(data: &[u8], at: &mut usize) -> String {
            let klen = u32::from_le_bytes(take(data, at)) as usize;
            let key = String::from_utf8(data[*at..*at + klen].to_vec()).expect("utf8 key");
            *at += klen;
            key
        }
        let mut at = 0usize;
        let mut state = HashMap::new();
        let n_state = u64::from_le_bytes(take(data, &mut at));
        for _ in 0..n_state {
            let key = take_key(data, &mut at);
            let value = i64::from_le_bytes(take(data, &mut at));
            state.insert(key, value);
        }
        let mut sessions = HashMap::new();
        let n_sessions = u64::from_le_bytes(take(data, &mut at));
        for _ in 0..n_sessions {
            let client = u64::from_le_bytes(take(data, &mut at));
            let seq = u64::from_le_bytes(take(data, &mut at));
            let value = match take::<1>(data, &mut at)[0] {
                0 => None,
                _ => Some(i64::from_le_bytes(take(data, &mut at))),
            };
            let applied = take::<1>(data, &mut at)[0] != 0;
            sessions.insert(
                client,
                SessionEntry {
                    seq,
                    value,
                    applied,
                },
            );
        }
        let mut prepared = BTreeMap::new();
        let mut locks = HashMap::new();
        let n_prepared = u64::from_le_bytes(take(data, &mut at));
        for _ in 0..n_prepared {
            let tc = u64::from_le_bytes(take(data, &mut at));
            let ts = u64::from_le_bytes(take(data, &mut at));
            let coord_shard = u32::from_le_bytes(take(data, &mut at));
            let n_part = u32::from_le_bytes(take(data, &mut at));
            let participants = (0..n_part)
                .map(|_| u32::from_le_bytes(take(data, &mut at)))
                .collect();
            let n_locked = u32::from_le_bytes(take(data, &mut at));
            let locked: Vec<String> = (0..n_locked).map(|_| take_key(data, &mut at)).collect();
            let n_writes = u32::from_le_bytes(take(data, &mut at));
            let writes = (0..n_writes)
                .map(|_| match take::<1>(data, &mut at)[0] {
                    0 => WriteOp::Put {
                        key: take_key(data, &mut at),
                        value: i64::from_le_bytes(take(data, &mut at)),
                    },
                    1 => WriteOp::Delete {
                        key: take_key(data, &mut at),
                    },
                    _ => WriteOp::Add {
                        key: take_key(data, &mut at),
                        delta: i64::from_le_bytes(take(data, &mut at)),
                    },
                })
                .collect();
            for k in &locked {
                locks.insert(k.clone(), (tc, ts));
            }
            prepared.insert(
                (tc, ts),
                PreparedTxn {
                    coord_shard,
                    participants,
                    writes,
                    locked,
                },
            );
        }
        let mut decisions = BTreeMap::new();
        let n_decisions = u64::from_le_bytes(take(data, &mut at));
        for _ in 0..n_decisions {
            let tc = u64::from_le_bytes(take(data, &mut at));
            let ts = u64::from_le_bytes(take(data, &mut at));
            decisions.insert((tc, ts), take::<1>(data, &mut at)[0] != 0);
        }
        let mut resolved = BTreeMap::new();
        let n_resolved = u64::from_le_bytes(take(data, &mut at));
        for _ in 0..n_resolved {
            let tc = u64::from_le_bytes(take(data, &mut at));
            let ts = u64::from_le_bytes(take(data, &mut at));
            resolved.insert((tc, ts), take::<1>(data, &mut at)[0] != 0);
        }
        self.state = state;
        self.sessions = sessions;
        self.prepared = prepared;
        self.decisions = decisions;
        self.resolved = resolved;
        self.locks = locks;
    }
}

/// Ticks between re-issuing an unanswered read-index request (the request
/// and its response are best-effort messages; a leader change or drop is
/// repaired by retrying under the same token).
const READ_RETRY_TICKS: u64 = 50;
/// Ticks before an unanswered read-index request gives up and reports
/// `applied: false` to the client (who retries end to end).
const READ_DEADLINE_TICKS: u64 = 400;

/// What a pending log-free read is waiting for.
#[derive(Debug)]
enum ReadWait {
    /// Barrier captured; waiting for the local apply cursor to reach it.
    Apply { wait_idx: u64 },
    /// Waiting for the leader to grant a read index for `token`.
    Grant {
        token: u64,
        next_retry: u64,
        deadline: u64,
    },
}

/// One in-flight log-free read (lease or read-index mode).
#[derive(Debug)]
struct PendingRead {
    client: u64,
    seq: u64,
    key: String,
    wait: ReadWait,
}

/// Bookkeeping for log-free reads: a local tick counter (deadlines), the
/// token allocator, and the pending queue.
#[derive(Debug, Default)]
struct ReadTracker {
    ticks: u64,
    next_token: u64,
    pending: Vec<PendingRead>,
}

/// One key-value server: an Omni-Paxos replica plus the applied state.
/// Generic over the replication storage (default: in-memory); a sharded
/// deployment gives each shard its own `KvNode` with its own storage
/// namespace (see `crate::shard`).
pub struct KvNode<S: Storage<KvCommand> = MemoryStorage<KvCommand>> {
    server: OmniPaxosServer<KvCommand, S>,
    sm: KvStateMachine,
    results: Vec<KvResult>,
    reads: ReadTracker,
}

impl KvNode {
    /// A server of the initial configuration `nodes`.
    pub fn new(pid: NodeId, nodes: Vec<NodeId>) -> Self {
        Self::with_config(ServerConfig::with(pid), nodes)
    }

    /// A server of the initial configuration with an explicit service
    /// config (ballot priority, timeouts — the sharding layer uses the
    /// priority knob to spread per-shard leaders across the cluster).
    pub fn with_config(config: ServerConfig, nodes: Vec<NodeId>) -> Self {
        KvNode {
            server: OmniPaxosServer::new(config, nodes),
            sm: KvStateMachine::default(),
            results: Vec::new(),
            reads: ReadTracker::default(),
        }
    }

    /// A server outside every configuration, waiting to be added by a
    /// reconfiguration (it activates when a `StartConfig` notification
    /// arrives; see the service layer).
    pub fn joiner(pid: NodeId) -> Self {
        Self::joiner_with_config(ServerConfig::with(pid))
    }

    /// A joiner with an explicit service config.
    pub fn joiner_with_config(config: ServerConfig) -> Self {
        KvNode {
            server: OmniPaxosServer::new_joiner(config),
            sm: KvStateMachine::default(),
            results: Vec::new(),
            reads: ReadTracker::default(),
        }
    }
}

impl<S: Storage<KvCommand>> KvNode<S> {
    /// Wrap a pre-built replication server (durable or fault-injected
    /// storage) into a kv node.
    pub fn from_server(server: OmniPaxosServer<KvCommand, S>) -> Self {
        KvNode {
            server,
            sm: KvStateMachine::default(),
            results: Vec::new(),
            reads: ReadTracker::default(),
        }
    }

    /// This server's id.
    pub fn pid(&self) -> NodeId {
        self.server.pid()
    }

    /// Is this server the current leader?
    pub fn is_leader(&self) -> bool {
        self.server.is_leader()
    }

    /// Submit a command for replication.
    pub fn submit(&mut self, cmd: KvCommand) -> Result<(), ProposeErr> {
        self.server.propose(cmd)
    }

    /// Submit a batch of commands as one contiguous append run: the next
    /// outgoing drain replicates all of them in a single `AcceptDecide`
    /// per follower and one storage flush. Returns how many were
    /// accepted; on error the remainder were not proposed.
    pub fn submit_batch(
        &mut self,
        cmds: impl IntoIterator<Item = KvCommand>,
    ) -> Result<usize, (usize, ProposeErr)> {
        self.server.propose_batch(cmds)
    }

    /// Eventually-consistent local read (no log round-trip).
    pub fn read_local(&self, key: &str) -> Option<i64> {
        self.sm.state.get(key).copied()
    }

    /// Linearizable read: replicate a read marker; the result arrives via
    /// [`KvNode::take_results`] once the marker decides.
    pub fn read_linearizable(
        &mut self,
        client: u64,
        seq: u64,
        key: impl Into<String>,
    ) -> Result<(), ProposeErr> {
        self.submit(KvCommand {
            client,
            seq,
            op: KvOp::Read { key: key.into() },
        })
    }

    /// Linearizable read served per `mode` (see [`ReadMode`]). The result
    /// arrives via [`KvNode::take_results`]: log-free reads report
    /// `applied: true` with the value once served, or `applied: false` if
    /// the read-index deadline expires (the client retries end to end).
    /// Log-free reads do not consume a log slot and bypass the session
    /// table — they are idempotent, so dedup is unnecessary.
    pub fn read(
        &mut self,
        mode: ReadMode,
        client: u64,
        seq: u64,
        key: impl Into<String>,
    ) -> Result<(), ProposeErr> {
        let key = key.into();
        match mode {
            ReadMode::Log => self.read_linearizable(client, seq, key),
            ReadMode::Lease => {
                if self.server.lease_valid() {
                    if let Some(wait_idx) = self.server.read_barrier() {
                        // Capture-time lease validity linearizes the read;
                        // it serves as soon as the local apply cursor
                        // reaches the barrier (often immediately).
                        self.reads.pending.push(PendingRead {
                            client,
                            seq,
                            key,
                            wait: ReadWait::Apply { wait_idx },
                        });
                        self.serve_ready_reads();
                        return Ok(());
                    }
                }
                // No valid lease here: fall through to the always-correct
                // log path rather than fail the read.
                self.read_linearizable(client, seq, key)
            }
            ReadMode::ReadIndex => {
                let token = self.reads.next_token;
                self.reads.next_token += 1;
                // A lost or refused request (no leader yet, reconfiguring)
                // is repaired by the retry/deadline machinery below.
                let _ = self.server.request_read_index(token);
                self.reads.pending.push(PendingRead {
                    client,
                    seq,
                    key,
                    wait: ReadWait::Grant {
                        token,
                        next_retry: self.reads.ticks + READ_RETRY_TICKS,
                        deadline: self.reads.ticks + READ_DEADLINE_TICKS,
                    },
                });
                Ok(())
            }
        }
    }

    /// Can this server currently serve lease reads locally? (Leader with a
    /// quorum of unexpired lease grants, not reconfiguring.)
    pub fn lease_valid(&self) -> bool {
        self.server.lease_valid()
    }

    /// Number of log-free reads still waiting to be served.
    pub fn pending_reads(&self) -> usize {
        self.reads.pending.len()
    }

    /// Advance timers, apply newly decided commands.
    pub fn tick(&mut self) {
        self.reads.ticks += 1;
        self.server.tick();
        self.pump();
        self.tick_reads();
    }

    /// Feed one incoming message.
    pub fn handle(&mut self, from: NodeId, msg: ServiceMsg<KvCommand>) {
        self.server.handle(from, msg);
        self.pump();
    }

    /// Restore a snapshot adopted from a peer (snapshot-first catch-up),
    /// then apply the decided tail above it.
    fn pump(&mut self) {
        if let Some((_, data)) = self.server.take_snapshot_event() {
            self.sm.restore(&data);
        }
        for cmd in self.server.poll_applied() {
            let result = self.sm.apply(cmd);
            self.results.push(result);
        }
        // Resolve read-index grants into apply barriers, then serve every
        // log-free read whose barrier the apply cursor has reached.
        for (token, idx) in self.server.take_read_grants() {
            for p in self.reads.pending.iter_mut() {
                match p.wait {
                    ReadWait::Grant { token: t, .. } if t == token => {
                        p.wait = ReadWait::Apply { wait_idx: idx };
                        break;
                    }
                    _ => {}
                }
            }
        }
        self.serve_ready_reads();
    }

    /// Serve pending log-free reads whose barrier is applied locally.
    fn serve_ready_reads(&mut self) {
        let cursor = self.server.applied_cursor();
        let mut i = 0;
        while i < self.reads.pending.len() {
            let ready = matches!(
                self.reads.pending[i].wait,
                ReadWait::Apply { wait_idx } if wait_idx <= cursor
            );
            if !ready {
                i += 1;
                continue;
            }
            let p = self.reads.pending.remove(i);
            self.results.push(KvResult {
                client: p.client,
                seq: p.seq,
                value: self.sm.state.get(&p.key).copied(),
                applied: true,
            });
        }
    }

    /// Expire and re-issue stalled read-index requests.
    fn tick_reads(&mut self) {
        let now = self.reads.ticks;
        let mut expired = Vec::new();
        let mut retries = Vec::new();
        self.reads.pending.retain_mut(|p| {
            if let ReadWait::Grant {
                token,
                next_retry,
                deadline,
            } = &mut p.wait
            {
                if *deadline <= now {
                    expired.push((p.client, p.seq));
                    return false;
                }
                if *next_retry <= now {
                    *next_retry = now + READ_RETRY_TICKS;
                    retries.push(*token);
                }
            }
            true
        });
        for (client, seq) in expired {
            self.results.push(KvResult {
                client,
                seq,
                value: None,
                applied: false,
            });
        }
        for token in retries {
            let _ = self.server.request_read_index(token);
        }
    }

    /// Compact this server's log: snapshot the state machine at everything
    /// applied so far, drop the superseded log prefix, and checkpoint the
    /// replication instance. Returns the compaction index. Errors (e.g.
    /// nothing new to compact) surface instead of being swallowed.
    pub fn compact(&mut self) -> Result<u64, TrimError> {
        self.pump(); // the snapshot must cover everything decided
        let upto = self.server.decided_len();
        let data = self.sm.snapshot();
        self.server.provide_snapshot(upto, data)?;
        Ok(upto)
    }

    /// Drain outgoing messages.
    pub fn outgoing(&mut self) -> Vec<(NodeId, ServiceMsg<KvCommand>)> {
        self.server.outgoing()
    }

    /// Results of commands applied since the last call.
    pub fn take_results(&mut self) -> Vec<KvResult> {
        std::mem::take(&mut self.results)
    }

    /// The applied state (for inspection and tests).
    pub fn state(&self) -> &HashMap<String, i64> {
        &self.sm.state
    }

    /// The full state machine, sessions included (for convergence checks).
    pub fn state_machine(&self) -> &KvStateMachine {
        &self.sm
    }

    /// Access the underlying replication server (partitions, recovery).
    pub fn server(&mut self) -> &mut OmniPaxosServer<KvCommand, S> {
        &mut self.server
    }

    /// Shared access to the replication server (invariant observation).
    pub fn server_ref(&self) -> &OmniPaxosServer<KvCommand, S> {
        &self.server
    }
}

impl<S: Storage<KvCommand>> std::fmt::Debug for KvNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvNode")
            .field("server", &self.server)
            .field("keys", &self.sm.state.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a fully connected in-memory cluster until quiescent.
    fn run(nodes: &mut [KvNode], steps: usize) {
        run_cut(nodes, steps, &[]);
    }

    /// Like [`run`], but messages to or from the nodes in `cut` are
    /// dropped (a network partition).
    fn run_cut(nodes: &mut [KvNode], steps: usize, cut: &[NodeId]) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing() {
                    if cut.contains(&from) || cut.contains(&to) {
                        continue;
                    }
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    fn cluster(n: usize) -> Vec<KvNode> {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        ids.iter().map(|&p| KvNode::new(p, ids.clone())).collect()
    }

    /// A cluster with leader leases enabled (20-tick lease, 2-tick skew
    /// bound — the same parameters as the core lease tests).
    fn lease_cluster(n: usize) -> Vec<KvNode> {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        ids.iter()
            .map(|&p| {
                let mut cfg = ServerConfig::with(p);
                cfg.lease_ticks = 20;
                cfg.lease_epsilon_ticks = 2;
                KvNode::with_config(cfg, ids.clone())
            })
            .collect()
    }

    fn leader_idx(nodes: &[KvNode]) -> usize {
        nodes.iter().position(|n| n.is_leader()).expect("leader")
    }

    #[test]
    fn puts_replicate_to_all_servers() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 7,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("x"), Some(7));
        }
    }

    #[test]
    fn adds_are_linearized_not_lost() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        for seq in 1..=10 {
            nodes[li]
                .submit(KvCommand {
                    client: 1,
                    seq,
                    op: KvOp::Add {
                        key: "ctr".into(),
                        delta: 1,
                    },
                })
                .unwrap();
        }
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("ctr"), Some(10));
        }
    }

    #[test]
    fn duplicate_retries_apply_once() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let cmd = KvCommand {
            client: 9,
            seq: 1,
            op: KvOp::Add {
                key: "k".into(),
                delta: 5,
            },
        };
        nodes[li].submit(cmd.clone()).unwrap();
        nodes[li].submit(cmd.clone()).unwrap(); // client retry
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("k"), Some(5), "retry must not double-apply");
        }
    }

    #[test]
    fn transfer_rejected_on_insufficient_funds() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "alice".into(),
                    value: 30,
                },
            })
            .unwrap();
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 2,
                op: KvOp::Transfer {
                    from: "alice".into(),
                    to: "bob".into(),
                    amount: 50,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let results = nodes[li].take_results();
        let xfer = results.iter().find(|r| r.seq == 2).unwrap();
        assert!(!xfer.applied);
        for n in &nodes {
            assert_eq!(n.read_local("alice"), Some(30));
            assert_eq!(n.read_local("bob"), None);
        }
    }

    #[test]
    fn linearizable_read_returns_value_through_log() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 42,
                },
            })
            .unwrap();
        nodes[li].read_linearizable(1, 2, "x").unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let results = nodes[li].take_results();
        let read = results.iter().find(|r| r.seq == 2).unwrap();
        assert_eq!(read.value, Some(42));
    }

    #[test]
    fn follower_submissions_are_forwarded() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let fi = (li + 1) % 3;
        nodes[fi]
            .submit(KvCommand {
                client: 2,
                seq: 1,
                op: KvOp::Put {
                    key: "f".into(),
                    value: 1,
                },
            })
            .unwrap();
        run(&mut nodes, 200);
        for n in &nodes {
            assert_eq!(n.read_local("f"), Some(1));
        }
    }

    fn mixed_op(seq: u64) -> KvOp {
        match seq % 4 {
            0 => KvOp::Put {
                key: format!("k{}", seq % 7),
                value: seq as i64,
            },
            1 => KvOp::Add {
                key: format!("k{}", seq % 5),
                delta: 2,
            },
            2 => KvOp::Delete {
                key: format!("k{}", seq % 3),
            },
            _ => KvOp::Transfer {
                from: format!("k{}", seq % 5),
                to: format!("k{}", seq % 7),
                amount: 1,
            },
        }
    }

    #[test]
    fn state_machines_converge_identically() {
        let mut nodes = cluster(5);
        run(&mut nodes, 150);
        let li = leader_idx(&nodes);
        for seq in 1..=50u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run(&mut nodes, 200);
        // Mid-stream compaction on every server must not disturb
        // convergence: the log prefix is superseded by the snapshot.
        for n in nodes.iter_mut() {
            n.compact().expect("compact");
        }
        let li = leader_idx(&nodes);
        for seq in 51..=80u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run(&mut nodes, 200);
        let reference = nodes[0].state_machine().clone();
        for n in &nodes[1..] {
            assert_eq!(
                n.state_machine(),
                &reference,
                "replicas must converge (sessions included)"
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_reproduces_the_state_machine() {
        use omnipaxos::snapshot::Snapshottable;
        let mut sm = KvStateMachine::default();
        for seq in 1..=40u64 {
            sm.apply(KvCommand {
                client: seq % 3,
                seq,
                op: mixed_op(seq),
            });
        }
        let snap = sm.snapshot();
        let mut restored = KvStateMachine::default();
        restored.restore(&snap);
        assert_eq!(restored, sm);
        // Deterministic: equal states encode to identical bytes.
        assert_eq!(restored.snapshot()[..], snap[..]);
        // The session table is part of the snapshot: a retried command is
        // still deduplicated after restore.
        let dup = restored.apply(KvCommand {
            client: 1,
            seq: 1,
            op: KvOp::Add {
                key: "k1".into(),
                delta: 100,
            },
        });
        assert!(!dup.applied, "retry after restore must not re-apply");
    }

    #[test]
    fn lease_read_serves_locally_without_log_growth() {
        let mut nodes = cluster(3); // leases off: never valid
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        assert!(!nodes[li].lease_valid(), "leases disabled by default");

        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        assert!(nodes[li].lease_valid(), "steady-state leader holds a lease");
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 7,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li].take_results();
        let log_before = nodes[li].server_ref().decided_len();
        nodes[li].read(ReadMode::Lease, 1, 2, "x").unwrap();
        // Served immediately from local state: no round, no log slot.
        let results = nodes[li].take_results();
        let read = results.iter().find(|r| r.seq == 2).expect("served");
        assert_eq!(read.value, Some(7));
        assert!(read.applied);
        run(&mut nodes, 50);
        let li = leader_idx(&nodes);
        assert_eq!(
            nodes[li].server_ref().decided_len(),
            log_before,
            "lease reads must not consume log slots"
        );
    }

    #[test]
    fn lease_read_falls_through_to_log_at_followers() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 9,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let fi = (leader_idx(&nodes) + 1) % 3;
        assert!(!nodes[fi].lease_valid());
        nodes[fi].take_results();
        nodes[fi].read(ReadMode::Lease, 1, 2, "x").unwrap();
        // Not served locally — forwarded as a log marker.
        assert!(nodes[fi].take_results().is_empty());
        run(&mut nodes, 200);
        let results = nodes[fi].take_results();
        let read = results.iter().find(|r| r.seq == 2).expect("via log");
        assert_eq!(read.value, Some(9));
    }

    #[test]
    fn read_index_serves_at_follower_without_log_growth() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 42,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let fi = (leader_idx(&nodes) + 1) % 3;
        let log_before = nodes[fi].server_ref().decided_len();
        nodes[fi].take_results();
        nodes[fi].read(ReadMode::ReadIndex, 1, 2, "x").unwrap();
        run(&mut nodes, 100);
        let results = nodes[fi].take_results();
        let read = results.iter().find(|r| r.seq == 2).expect("granted");
        assert_eq!(read.value, Some(42));
        assert!(read.applied);
        assert_eq!(nodes[fi].pending_reads(), 0);
        assert_eq!(
            nodes[fi].server_ref().decided_len(),
            log_before,
            "read-index reads must not consume log slots"
        );
    }

    #[test]
    fn read_index_expires_when_cut_off_from_the_leader() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let fi = (leader_idx(&nodes) + 1) % 3;
        let cut_pid = nodes[fi].pid();
        run_cut(&mut nodes, 30, &[cut_pid]); // lease grant from fi lapses
        nodes[fi].take_results();
        nodes[fi].read(ReadMode::ReadIndex, 1, 1, "x").unwrap();
        run_cut(&mut nodes, READ_DEADLINE_TICKS as usize + 50, &[cut_pid]);
        let results = nodes[fi].take_results();
        let read = results.iter().find(|r| r.seq == 1).expect("expired");
        assert!(!read.applied, "unreachable leader must expire, not hang");
        assert_eq!(nodes[fi].pending_reads(), 0);
    }

    /// Satellite (e): a lease never spans a reconfiguration. Once the
    /// stop-sign is decided the old configuration's leader must refuse
    /// local reads and fall through to the (refused) log path.
    #[test]
    fn lease_reads_refused_once_stopsign_decides() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        assert!(nodes[li].lease_valid());
        nodes[li].server().reconfigure(vec![1, 2, 3, 4]).unwrap();
        // Enough steps to decide the stop-sign and hand over, but far too
        // few for the successor configuration to assemble lease grants
        // (which takes election rounds plus a heartbeat round).
        run(&mut nodes, 10);
        assert!(
            !nodes[li].lease_valid(),
            "lease must die with the configuration"
        );
        nodes[li].take_results();
        let _ = nodes[li].read(ReadMode::Lease, 8, 1, "x");
        assert!(
            nodes[li].take_results().is_empty(),
            "must not serve locally across a config change"
        );
        // The successor configuration (majority 3 of 4; node 4 is absent)
        // eventually earns its own lease — a fresh one, not a carry-over.
        run(&mut nodes, 400);
        assert!(nodes.iter().any(|n| n.lease_valid()));
    }

    /// The satellite scenario: a follower is partitioned long enough for
    /// the rest of the cluster to compact past its log; on heal it must
    /// recover via snapshot transfer (the prefix no longer exists as log
    /// entries) and converge to the identical state machine.
    #[test]
    fn partitioned_follower_recovers_via_snapshot_after_compaction() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let cut_pid = nodes[(li + 1) % 3].pid();
        for seq in 1..=30u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run_cut(&mut nodes, 150, &[cut_pid]);
        // The connected majority compacts everything it decided: the
        // partitioned follower's missing prefix is gone from every log.
        let mut compacted_at = 0;
        for n in nodes.iter_mut() {
            if n.pid() != cut_pid {
                compacted_at = n.compact().expect("compact");
            }
        }
        assert_eq!(compacted_at, 30);
        run_cut(&mut nodes, 50, &[cut_pid]);
        // Heal: the follower re-syncs via chunked snapshot transfer, then
        // fresh traffic replicates to everyone.
        run(&mut nodes, 300);
        let li = leader_idx(&nodes);
        for seq in 31..=35u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run(&mut nodes, 300);
        let reference = nodes[0].state_machine().clone();
        for n in nodes.iter_mut() {
            assert_eq!(n.state_machine(), &reference, "identical state machines");
            assert!(
                n.server().log_start() >= 30,
                "prefix was never re-migrated as entries (pid {})",
                n.pid()
            );
        }
    }

    fn apply(sm: &mut KvStateMachine, client: u64, seq: u64, op: KvOp) -> KvResult {
        sm.apply(KvCommand { client, seq, op })
    }

    #[test]
    fn cas_applies_only_on_expected_value() {
        let mut sm = KvStateMachine::default();
        // CAS on an absent key with expect=None: a conditional create.
        let r = apply(
            &mut sm,
            1,
            1,
            KvOp::Cas {
                key: "x".into(),
                expect: None,
                set: Some(5),
            },
        );
        assert!(r.applied);
        assert_eq!(r.value, Some(5));
        // Wrong expectation: rejected, reports the actual value.
        let r = apply(
            &mut sm,
            1,
            2,
            KvOp::Cas {
                key: "x".into(),
                expect: Some(4),
                set: Some(9),
            },
        );
        assert!(!r.applied);
        assert_eq!(r.value, Some(5), "failed CAS reports the actual value");
        assert_eq!(sm.state()["x"], 5);
        // Right expectation with set=None: a conditional delete.
        let r = apply(
            &mut sm,
            1,
            3,
            KvOp::Cas {
                key: "x".into(),
                expect: Some(5),
                set: None,
            },
        );
        assert!(r.applied);
        assert!(!sm.state().contains_key("x"));
    }

    #[test]
    fn retried_cas_replays_its_original_verdict() {
        let mut sm = KvStateMachine::default();
        apply(
            &mut sm,
            1,
            1,
            KvOp::Put {
                key: "x".into(),
                value: 10,
            },
        );
        // Client 2's CAS loses: expects 99, actual is 10.
        let lost = apply(
            &mut sm,
            2,
            1,
            KvOp::Cas {
                key: "x".into(),
                expect: Some(99),
                set: Some(1),
            },
        );
        assert!(!lost.applied);
        assert_eq!(lost.value, Some(10));
        // The state then moves to exactly what the CAS expected...
        apply(
            &mut sm,
            1,
            2,
            KvOp::Put {
                key: "x".into(),
                value: 99,
            },
        );
        // ...but the duplicate retry must replay the ORIGINAL verdict,
        // not re-evaluate (which would now succeed).
        let dup = apply(
            &mut sm,
            2,
            1,
            KvOp::Cas {
                key: "x".into(),
                expect: Some(99),
                set: Some(1),
            },
        );
        assert!(!dup.applied, "retry must not re-evaluate against new state");
        assert_eq!(dup.value, Some(10), "retry observes the original verdict");
        assert_eq!(sm.state()["x"], 99, "state untouched by the replay");
    }

    #[test]
    fn retried_success_replays_applied_true_without_reapplying() {
        let mut sm = KvStateMachine::default();
        let first = apply(
            &mut sm,
            1,
            1,
            KvOp::Add {
                key: "k".into(),
                delta: 5,
            },
        );
        assert!(first.applied);
        assert_eq!(first.value, Some(5));
        let dup = apply(
            &mut sm,
            1,
            1,
            KvOp::Add {
                key: "k".into(),
                delta: 5,
            },
        );
        assert!(dup.applied, "latest-seq retry replays the success verdict");
        assert_eq!(dup.value, Some(5));
        assert_eq!(sm.state()["k"], 5, "but applies nothing");
    }

    #[test]
    fn write_batch_applies_atomically_or_not_at_all() {
        let mut sm = KvStateMachine::default();
        let r = apply(
            &mut sm,
            1,
            1,
            KvOp::WriteBatch {
                writes: vec![
                    WriteOp::Put {
                        key: "a".into(),
                        value: 1,
                    },
                    WriteOp::Add {
                        key: "b".into(),
                        delta: 2,
                    },
                    WriteOp::Delete { key: "a".into() },
                ],
            },
        );
        assert!(r.applied);
        assert_eq!(r.value, Some(3));
        assert!(!sm.state().contains_key("a"));
        assert_eq!(sm.state()["b"], 2);
        // A batch touching a transaction-locked key is refused whole.
        let (_, prepared) = apply_prepare_yes(&mut sm, (9, 1), &["b"]);
        assert!(prepared);
        let r = apply(
            &mut sm,
            1,
            2,
            KvOp::WriteBatch {
                writes: vec![
                    WriteOp::Put {
                        key: "c".into(),
                        value: 7,
                    },
                    WriteOp::Add {
                        key: "b".into(),
                        delta: 1,
                    },
                ],
            },
        );
        assert!(!r.applied);
        assert!(
            !sm.state().contains_key("c"),
            "nothing from a refused batch"
        );
        assert_eq!(sm.state()["b"], 2);
    }

    /// Prepare `txn` (vote expected yes) locking `keys` with a no-op
    /// guard, returning the (value, applied) verdict.
    fn apply_prepare_yes(
        sm: &mut KvStateMachine,
        txn: TxnId,
        keys: &[&str],
    ) -> (Option<i64>, bool) {
        let r = sm.apply(KvCommand {
            client: 0,
            seq: 0,
            op: KvOp::TxnPrepare {
                txn,
                coord_shard: 0,
                participants: vec![0],
                guards: vec![],
                writes: keys
                    .iter()
                    .map(|k| WriteOp::Add {
                        key: (*k).into(),
                        delta: 1,
                    })
                    .collect(),
            },
        });
        (r.value, r.applied)
    }

    #[test]
    fn prepare_locks_keys_against_plain_writes_until_resolved() {
        let mut sm = KvStateMachine::default();
        apply(
            &mut sm,
            1,
            1,
            KvOp::Put {
                key: "acct".into(),
                value: 100,
            },
        );
        let txn = (42, 7);
        let r = apply(
            &mut sm,
            0,
            0,
            KvOp::TxnPrepare {
                txn,
                coord_shard: 1,
                participants: vec![0, 1],
                guards: vec![TxnGuard::MinValue {
                    key: "acct".into(),
                    min: 50,
                }],
                writes: vec![WriteOp::Add {
                    key: "acct".into(),
                    delta: -50,
                }],
            },
        );
        assert!(r.applied, "guard holds: vote yes");
        assert_eq!(sm.locks().get("acct"), Some(&txn));
        // Every plain write on the locked key bounces; reads still serve.
        for (seq, op) in [
            (
                2,
                KvOp::Put {
                    key: "acct".into(),
                    value: 0,
                },
            ),
            (3, KvOp::Delete { key: "acct".into() }),
            (
                4,
                KvOp::Add {
                    key: "acct".into(),
                    delta: 1,
                },
            ),
            (
                5,
                KvOp::Cas {
                    key: "acct".into(),
                    expect: Some(100),
                    set: Some(0),
                },
            ),
            (
                6,
                KvOp::Transfer {
                    from: "acct".into(),
                    to: "other".into(),
                    amount: 1,
                },
            ),
        ] {
            assert!(
                !apply(&mut sm, 1, seq, op).applied,
                "locked key must bounce"
            );
        }
        assert_eq!(sm.state()["acct"], 100);
        let read = apply(&mut sm, 1, 7, KvOp::Read { key: "acct".into() });
        assert!(read.applied);
        assert_eq!(read.value, Some(100));
        // Commit applies the staged write and releases the lock.
        let r = apply(&mut sm, 0, 0, KvOp::TxnCommit { txn });
        assert!(r.applied);
        assert_eq!(sm.state()["acct"], 50);
        assert!(sm.locks().is_empty());
        assert!(sm.prepared().is_empty());
        assert_eq!(sm.resolved().get(&txn), Some(&true));
        // Plain writes flow again.
        assert!(
            apply(
                &mut sm,
                1,
                8,
                KvOp::Add {
                    key: "acct".into(),
                    delta: 1
                }
            )
            .applied
        );
    }

    #[test]
    fn prepare_votes_no_on_failed_guard_or_conflicting_lock() {
        let mut sm = KvStateMachine::default();
        // Failed guard: balance 0 < 10.
        let r = apply(
            &mut sm,
            0,
            0,
            KvOp::TxnPrepare {
                txn: (1, 1),
                coord_shard: 0,
                participants: vec![0],
                guards: vec![TxnGuard::MinValue {
                    key: "a".into(),
                    min: 10,
                }],
                writes: vec![WriteOp::Add {
                    key: "a".into(),
                    delta: -10,
                }],
            },
        );
        assert!(!r.applied, "failed guard votes no");
        assert!(sm.prepared().is_empty(), "no-vote stages nothing");
        assert!(sm.locks().is_empty());
        // Conflicting lock: (2,1) holds "b", (3,1) wants it too.
        let (_, yes) = apply_prepare_yes(&mut sm, (2, 1), &["b"]);
        assert!(yes);
        let (_, no) = apply_prepare_yes(&mut sm, (3, 1), &["b", "c"]);
        assert!(!no, "lock conflict votes no");
        assert!(!sm.locks().contains_key("c"), "loser locks nothing");
        // Duplicate prepare of the winner still votes yes, idempotently.
        let (_, again) = apply_prepare_yes(&mut sm, (2, 1), &["b"]);
        assert!(again);
        assert_eq!(sm.prepared().len(), 1);
    }

    #[test]
    fn first_decision_wins_and_later_ones_report_it() {
        let mut sm = KvStateMachine::default();
        let txn = (5, 5);
        let first = apply(&mut sm, 0, 0, KvOp::TxnDecide { txn, commit: true });
        assert!(first.applied);
        assert_eq!(first.value, Some(1));
        // A racing recovery's presumed-abort arrives second: it must
        // observe the recorded commit, not overwrite it.
        let late = apply(&mut sm, 0, 0, KvOp::TxnDecide { txn, commit: false });
        assert!(!late.applied);
        assert_eq!(late.value, Some(1), "late decide reports the winner");
        assert_eq!(sm.decisions().get(&txn), Some(&true));
    }

    #[test]
    fn commit_and_abort_are_noops_without_a_prepare() {
        let mut sm = KvStateMachine::default();
        let txn = (6, 1);
        let r = apply(&mut sm, 0, 0, KvOp::TxnCommit { txn });
        assert!(!r.applied);
        assert_eq!(r.value, None, "nothing recorded yet");
        // Abort a real prepare, then observe replays of both records.
        let (_, yes) = apply_prepare_yes(&mut sm, txn, &["z"]);
        assert!(yes);
        let r = apply(&mut sm, 0, 0, KvOp::TxnAbort { txn });
        assert!(r.applied);
        assert!(!sm.state().contains_key("z"), "aborted writes discarded");
        assert!(sm.locks().is_empty());
        let replay = apply(&mut sm, 0, 0, KvOp::TxnAbort { txn });
        assert!(!replay.applied);
        assert_eq!(replay.value, Some(0), "replays report the resolution");
        // A late duplicate prepare after resolution must not re-stage.
        let (v, applied) = apply_prepare_yes(&mut sm, txn, &["z"]);
        assert!(!applied, "resolved txn cannot re-prepare");
        assert_eq!(v, Some(0));
        assert!(sm.prepared().is_empty());
        assert!(sm.locks().is_empty());
        // An abort overtaking the prepare entirely leaves a tombstone that
        // blocks the late prepare from staging locks.
        let ghost = (6, 2);
        let r = apply(&mut sm, 0, 0, KvOp::TxnAbort { txn: ghost });
        assert!(!r.applied);
        assert_eq!(sm.resolved().get(&ghost), Some(&false), "tombstoned");
        let (_, applied) = apply_prepare_yes(&mut sm, ghost, &["z"]);
        assert!(!applied, "tombstone blocks the overtaken prepare");
        assert!(sm.locks().is_empty());
    }

    #[test]
    fn snapshot_roundtrip_preserves_txn_state_and_verdicts() {
        let mut sm = KvStateMachine::default();
        apply(
            &mut sm,
            1,
            1,
            KvOp::Put {
                key: "x".into(),
                value: 3,
            },
        );
        // A failed CAS leaves a cached failure verdict in the session.
        let lost = apply(
            &mut sm,
            2,
            4,
            KvOp::Cas {
                key: "x".into(),
                expect: Some(9),
                set: Some(0),
            },
        );
        assert!(!lost.applied);
        // One prepared (locked), one decided, one resolved transaction.
        let (_, yes) = apply_prepare_yes(&mut sm, (7, 1), &["x", "y"]);
        assert!(yes);
        apply(
            &mut sm,
            0,
            0,
            KvOp::TxnDecide {
                txn: (7, 1),
                commit: true,
            },
        );
        let (_, yes) = apply_prepare_yes(&mut sm, (8, 1), &["w"]);
        assert!(yes);
        apply(&mut sm, 0, 0, KvOp::TxnAbort { txn: (8, 1) });

        let snap = sm.snapshot();
        let mut restored = KvStateMachine::default();
        restored.restore(&snap);
        assert_eq!(restored, sm, "locks rebuilt, every table restored");
        assert_eq!(restored.snapshot()[..], snap[..], "deterministic bytes");
        // The restored replica still replays the cached CAS failure even
        // though re-evaluating against current state is meaningless here.
        let dup = restored.apply(KvCommand {
            client: 2,
            seq: 4,
            op: KvOp::Cas {
                key: "x".into(),
                expect: Some(9),
                set: Some(0),
            },
        });
        assert!(!dup.applied);
        assert_eq!(dup.value, Some(3), "original actual-value verdict");
        // And the restored lock table still guards the prepared keys.
        assert!(
            !restored
                .apply(KvCommand {
                    client: 1,
                    seq: 2,
                    op: KvOp::Put {
                        key: "y".into(),
                        value: 1
                    },
                })
                .applied
        );
    }
}
