//! The replicated key-value state machine and its server node.

use omnipaxos::sequence_paxos::ProposeErr;
use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::snapshot::{SnapshotData, Snapshottable};
use omnipaxos::storage::{MemoryStorage, Storage, TrimError};
use omnipaxos::{Entry, NodeId};
use std::collections::HashMap;

/// A key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Set `key` to `value`.
    Put { key: String, value: i64 },
    /// Remove `key`.
    Delete { key: String },
    /// Add `delta` to `key` (missing keys count as 0). Conditional logic in
    /// the state machine (rather than read-modify-write at the client) is
    /// what makes concurrent increments linearizable.
    Add { key: String, delta: i64 },
    /// Atomically move `amount` from `from` to `to` iff `from` has at least
    /// `amount` (the bank-transfer example of `examples/kv_bank.rs`).
    Transfer {
        from: String,
        to: String,
        amount: i64,
    },
    /// A read marker: deciding it linearizes the read at its log position.
    Read { key: String },
}

/// A client command: the operation plus its session identity for exactly-
/// once application under retries.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCommand {
    /// Issuing client.
    pub client: u64,
    /// Per-client sequence number; commands apply at most once per
    /// `(client, seq)`.
    pub seq: u64,
    pub op: KvOp,
}

impl Entry for KvCommand {
    fn size_bytes(&self) -> usize {
        let op = match &self.op {
            KvOp::Put { key, .. } => key.len() + 8,
            KvOp::Delete { key } => key.len(),
            KvOp::Add { key, .. } => key.len() + 8,
            KvOp::Transfer { from, to, .. } => from.len() + to.len() + 8,
            KvOp::Read { key } => key.len(),
        };
        16 + op
    }
}

/// How a linearizable read is served (per request; see DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Replicate a read marker through the log — the always-correct
    /// baseline: a full consensus round and a log slot per read.
    #[default]
    Log,
    /// Leader lease: served from the leader's local state machine with no
    /// message round while the BLE lease holds; falls through to the log
    /// path when it does not.
    Lease,
    /// Read index: any replica captures the leader's commit index in one
    /// lightweight round, waits for local apply, and serves from its own
    /// state machine (the follower-read path).
    ReadIndex,
}

impl ReadMode {
    /// Stable wire discriminant (append-only).
    pub const fn discriminant(self) -> u8 {
        match self {
            ReadMode::Log => 0,
            ReadMode::Lease => 1,
            ReadMode::ReadIndex => 2,
        }
    }

    /// Inverse of [`ReadMode::discriminant`].
    pub const fn from_discriminant(v: u8) -> Option<Self> {
        match v {
            0 => Some(ReadMode::Log),
            1 => Some(ReadMode::Lease),
            2 => Some(ReadMode::ReadIndex),
            _ => None,
        }
    }
}

/// Result of an applied command, delivered to the issuing client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvResult {
    pub client: u64,
    pub seq: u64,
    /// The value read (for `Read`), the value after the update (for
    /// `Put`/`Add`), `None` for `Delete`, and `None` for a `Transfer` that
    /// was rejected for insufficient funds.
    pub value: Option<i64>,
    /// Did the operation take effect? (`false` only for rejected
    /// transfers and duplicate retries.)
    pub applied: bool,
}

/// The bare key-value state machine: the applied map plus the client
/// session table (the session table is part of the state — a snapshot that
/// forgot it would re-apply retried commands after a restore).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStateMachine {
    state: HashMap<String, i64>,
    /// Highest applied sequence number per client (session dedup).
    sessions: HashMap<u64, u64>,
}

impl KvStateMachine {
    /// The applied key-value map.
    pub fn state(&self) -> &HashMap<String, i64> {
        &self.state
    }

    /// The client session table: highest applied sequence number per
    /// client. Part of the replicated state (snapshots include it); the
    /// chaos harness asserts it survives crash-restore and snapshot
    /// transfer so retried commands stay deduplicated.
    pub fn sessions(&self) -> &HashMap<u64, u64> {
        &self.sessions
    }

    /// Apply one decided command, returning its client-visible result.
    /// Exactly-once: duplicate `(client, seq)` pairs report
    /// `applied: false` and leave the state untouched.
    pub fn apply(&mut self, cmd: KvCommand) -> KvResult {
        // Session dedup: at-most-once per (client, seq). Reads are also
        // markers, so they participate in the same numbering.
        let last = self.sessions.entry(cmd.client).or_insert(0);
        if cmd.seq <= *last {
            return KvResult {
                client: cmd.client,
                seq: cmd.seq,
                value: None,
                applied: false,
            };
        }
        *last = cmd.seq;
        let (value, applied) = match cmd.op {
            KvOp::Put { key, value } => {
                self.state.insert(key, value);
                (Some(value), true)
            }
            KvOp::Delete { key } => {
                self.state.remove(&key);
                (None, true)
            }
            KvOp::Add { key, delta } => {
                let v = self.state.entry(key).or_insert(0);
                *v += delta;
                (Some(*v), true)
            }
            KvOp::Transfer { from, to, amount } => {
                let balance = self.state.get(&from).copied().unwrap_or(0);
                if balance >= amount {
                    *self.state.entry(from).or_insert(0) -= amount;
                    *self.state.entry(to).or_insert(0) += amount;
                    (Some(amount), true)
                } else {
                    (None, false)
                }
            }
            KvOp::Read { key } => (self.state.get(&key).copied(), true),
        };
        KvResult {
            client: cmd.client,
            seq: cmd.seq,
            value,
            applied,
        }
    }
}

/// Snapshot wire format (deterministic: maps are emitted in sorted order,
/// so equal states produce byte-identical snapshots):
///
/// ```text
/// [n_state: u64] ([klen: u32][key bytes][value: i64])*   sorted by key
/// [n_sessions: u64] ([client: u64][seq: u64])*           sorted by client
/// ```
impl Snapshottable for KvStateMachine {
    fn snapshot(&self) -> SnapshotData {
        let mut buf = Vec::new();
        let mut keys: Vec<&String> = self.state.keys().collect();
        keys.sort();
        buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        for k in keys {
            buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(&self.state[k].to_le_bytes());
        }
        let mut clients: Vec<u64> = self.sessions.keys().copied().collect();
        clients.sort_unstable();
        buf.extend_from_slice(&(clients.len() as u64).to_le_bytes());
        for c in clients {
            buf.extend_from_slice(&c.to_le_bytes());
            buf.extend_from_slice(&self.sessions[&c].to_le_bytes());
        }
        buf.into()
    }

    fn restore(&mut self, data: &[u8]) {
        fn take<const N: usize>(data: &[u8], at: &mut usize) -> [u8; N] {
            let out: [u8; N] = data[*at..*at + N].try_into().expect("truncated snapshot");
            *at += N;
            out
        }
        let mut at = 0usize;
        let mut state = HashMap::new();
        let n_state = u64::from_le_bytes(take(data, &mut at));
        for _ in 0..n_state {
            let klen = u32::from_le_bytes(take(data, &mut at)) as usize;
            let key = String::from_utf8(data[at..at + klen].to_vec()).expect("utf8 key");
            at += klen;
            let value = i64::from_le_bytes(take(data, &mut at));
            state.insert(key, value);
        }
        let mut sessions = HashMap::new();
        let n_sessions = u64::from_le_bytes(take(data, &mut at));
        for _ in 0..n_sessions {
            let client = u64::from_le_bytes(take(data, &mut at));
            let seq = u64::from_le_bytes(take(data, &mut at));
            sessions.insert(client, seq);
        }
        self.state = state;
        self.sessions = sessions;
    }
}

/// Ticks between re-issuing an unanswered read-index request (the request
/// and its response are best-effort messages; a leader change or drop is
/// repaired by retrying under the same token).
const READ_RETRY_TICKS: u64 = 50;
/// Ticks before an unanswered read-index request gives up and reports
/// `applied: false` to the client (who retries end to end).
const READ_DEADLINE_TICKS: u64 = 400;

/// What a pending log-free read is waiting for.
#[derive(Debug)]
enum ReadWait {
    /// Barrier captured; waiting for the local apply cursor to reach it.
    Apply { wait_idx: u64 },
    /// Waiting for the leader to grant a read index for `token`.
    Grant {
        token: u64,
        next_retry: u64,
        deadline: u64,
    },
}

/// One in-flight log-free read (lease or read-index mode).
#[derive(Debug)]
struct PendingRead {
    client: u64,
    seq: u64,
    key: String,
    wait: ReadWait,
}

/// Bookkeeping for log-free reads: a local tick counter (deadlines), the
/// token allocator, and the pending queue.
#[derive(Debug, Default)]
struct ReadTracker {
    ticks: u64,
    next_token: u64,
    pending: Vec<PendingRead>,
}

/// One key-value server: an Omni-Paxos replica plus the applied state.
/// Generic over the replication storage (default: in-memory); a sharded
/// deployment gives each shard its own `KvNode` with its own storage
/// namespace (see `crate::shard`).
pub struct KvNode<S: Storage<KvCommand> = MemoryStorage<KvCommand>> {
    server: OmniPaxosServer<KvCommand, S>,
    sm: KvStateMachine,
    results: Vec<KvResult>,
    reads: ReadTracker,
}

impl KvNode {
    /// A server of the initial configuration `nodes`.
    pub fn new(pid: NodeId, nodes: Vec<NodeId>) -> Self {
        Self::with_config(ServerConfig::with(pid), nodes)
    }

    /// A server of the initial configuration with an explicit service
    /// config (ballot priority, timeouts — the sharding layer uses the
    /// priority knob to spread per-shard leaders across the cluster).
    pub fn with_config(config: ServerConfig, nodes: Vec<NodeId>) -> Self {
        KvNode {
            server: OmniPaxosServer::new(config, nodes),
            sm: KvStateMachine::default(),
            results: Vec::new(),
            reads: ReadTracker::default(),
        }
    }

    /// A server outside every configuration, waiting to be added by a
    /// reconfiguration (it activates when a `StartConfig` notification
    /// arrives; see the service layer).
    pub fn joiner(pid: NodeId) -> Self {
        Self::joiner_with_config(ServerConfig::with(pid))
    }

    /// A joiner with an explicit service config.
    pub fn joiner_with_config(config: ServerConfig) -> Self {
        KvNode {
            server: OmniPaxosServer::new_joiner(config),
            sm: KvStateMachine::default(),
            results: Vec::new(),
            reads: ReadTracker::default(),
        }
    }
}

impl<S: Storage<KvCommand>> KvNode<S> {
    /// Wrap a pre-built replication server (durable or fault-injected
    /// storage) into a kv node.
    pub fn from_server(server: OmniPaxosServer<KvCommand, S>) -> Self {
        KvNode {
            server,
            sm: KvStateMachine::default(),
            results: Vec::new(),
            reads: ReadTracker::default(),
        }
    }

    /// This server's id.
    pub fn pid(&self) -> NodeId {
        self.server.pid()
    }

    /// Is this server the current leader?
    pub fn is_leader(&self) -> bool {
        self.server.is_leader()
    }

    /// Submit a command for replication.
    pub fn submit(&mut self, cmd: KvCommand) -> Result<(), ProposeErr> {
        self.server.propose(cmd)
    }

    /// Submit a batch of commands as one contiguous append run: the next
    /// outgoing drain replicates all of them in a single `AcceptDecide`
    /// per follower and one storage flush. Returns how many were
    /// accepted; on error the remainder were not proposed.
    pub fn submit_batch(
        &mut self,
        cmds: impl IntoIterator<Item = KvCommand>,
    ) -> Result<usize, (usize, ProposeErr)> {
        self.server.propose_batch(cmds)
    }

    /// Eventually-consistent local read (no log round-trip).
    pub fn read_local(&self, key: &str) -> Option<i64> {
        self.sm.state.get(key).copied()
    }

    /// Linearizable read: replicate a read marker; the result arrives via
    /// [`KvNode::take_results`] once the marker decides.
    pub fn read_linearizable(
        &mut self,
        client: u64,
        seq: u64,
        key: impl Into<String>,
    ) -> Result<(), ProposeErr> {
        self.submit(KvCommand {
            client,
            seq,
            op: KvOp::Read { key: key.into() },
        })
    }

    /// Linearizable read served per `mode` (see [`ReadMode`]). The result
    /// arrives via [`KvNode::take_results`]: log-free reads report
    /// `applied: true` with the value once served, or `applied: false` if
    /// the read-index deadline expires (the client retries end to end).
    /// Log-free reads do not consume a log slot and bypass the session
    /// table — they are idempotent, so dedup is unnecessary.
    pub fn read(
        &mut self,
        mode: ReadMode,
        client: u64,
        seq: u64,
        key: impl Into<String>,
    ) -> Result<(), ProposeErr> {
        let key = key.into();
        match mode {
            ReadMode::Log => self.read_linearizable(client, seq, key),
            ReadMode::Lease => {
                if self.server.lease_valid() {
                    if let Some(wait_idx) = self.server.read_barrier() {
                        // Capture-time lease validity linearizes the read;
                        // it serves as soon as the local apply cursor
                        // reaches the barrier (often immediately).
                        self.reads.pending.push(PendingRead {
                            client,
                            seq,
                            key,
                            wait: ReadWait::Apply { wait_idx },
                        });
                        self.serve_ready_reads();
                        return Ok(());
                    }
                }
                // No valid lease here: fall through to the always-correct
                // log path rather than fail the read.
                self.read_linearizable(client, seq, key)
            }
            ReadMode::ReadIndex => {
                let token = self.reads.next_token;
                self.reads.next_token += 1;
                // A lost or refused request (no leader yet, reconfiguring)
                // is repaired by the retry/deadline machinery below.
                let _ = self.server.request_read_index(token);
                self.reads.pending.push(PendingRead {
                    client,
                    seq,
                    key,
                    wait: ReadWait::Grant {
                        token,
                        next_retry: self.reads.ticks + READ_RETRY_TICKS,
                        deadline: self.reads.ticks + READ_DEADLINE_TICKS,
                    },
                });
                Ok(())
            }
        }
    }

    /// Can this server currently serve lease reads locally? (Leader with a
    /// quorum of unexpired lease grants, not reconfiguring.)
    pub fn lease_valid(&self) -> bool {
        self.server.lease_valid()
    }

    /// Number of log-free reads still waiting to be served.
    pub fn pending_reads(&self) -> usize {
        self.reads.pending.len()
    }

    /// Advance timers, apply newly decided commands.
    pub fn tick(&mut self) {
        self.reads.ticks += 1;
        self.server.tick();
        self.pump();
        self.tick_reads();
    }

    /// Feed one incoming message.
    pub fn handle(&mut self, from: NodeId, msg: ServiceMsg<KvCommand>) {
        self.server.handle(from, msg);
        self.pump();
    }

    /// Restore a snapshot adopted from a peer (snapshot-first catch-up),
    /// then apply the decided tail above it.
    fn pump(&mut self) {
        if let Some((_, data)) = self.server.take_snapshot_event() {
            self.sm.restore(&data);
        }
        for cmd in self.server.poll_applied() {
            let result = self.sm.apply(cmd);
            self.results.push(result);
        }
        // Resolve read-index grants into apply barriers, then serve every
        // log-free read whose barrier the apply cursor has reached.
        for (token, idx) in self.server.take_read_grants() {
            for p in self.reads.pending.iter_mut() {
                match p.wait {
                    ReadWait::Grant { token: t, .. } if t == token => {
                        p.wait = ReadWait::Apply { wait_idx: idx };
                        break;
                    }
                    _ => {}
                }
            }
        }
        self.serve_ready_reads();
    }

    /// Serve pending log-free reads whose barrier is applied locally.
    fn serve_ready_reads(&mut self) {
        let cursor = self.server.applied_cursor();
        let mut i = 0;
        while i < self.reads.pending.len() {
            let ready = matches!(
                self.reads.pending[i].wait,
                ReadWait::Apply { wait_idx } if wait_idx <= cursor
            );
            if !ready {
                i += 1;
                continue;
            }
            let p = self.reads.pending.remove(i);
            self.results.push(KvResult {
                client: p.client,
                seq: p.seq,
                value: self.sm.state.get(&p.key).copied(),
                applied: true,
            });
        }
    }

    /// Expire and re-issue stalled read-index requests.
    fn tick_reads(&mut self) {
        let now = self.reads.ticks;
        let mut expired = Vec::new();
        let mut retries = Vec::new();
        self.reads.pending.retain_mut(|p| {
            if let ReadWait::Grant {
                token,
                next_retry,
                deadline,
            } = &mut p.wait
            {
                if *deadline <= now {
                    expired.push((p.client, p.seq));
                    return false;
                }
                if *next_retry <= now {
                    *next_retry = now + READ_RETRY_TICKS;
                    retries.push(*token);
                }
            }
            true
        });
        for (client, seq) in expired {
            self.results.push(KvResult {
                client,
                seq,
                value: None,
                applied: false,
            });
        }
        for token in retries {
            let _ = self.server.request_read_index(token);
        }
    }

    /// Compact this server's log: snapshot the state machine at everything
    /// applied so far, drop the superseded log prefix, and checkpoint the
    /// replication instance. Returns the compaction index. Errors (e.g.
    /// nothing new to compact) surface instead of being swallowed.
    pub fn compact(&mut self) -> Result<u64, TrimError> {
        self.pump(); // the snapshot must cover everything decided
        let upto = self.server.decided_len();
        let data = self.sm.snapshot();
        self.server.provide_snapshot(upto, data)?;
        Ok(upto)
    }

    /// Drain outgoing messages.
    pub fn outgoing(&mut self) -> Vec<(NodeId, ServiceMsg<KvCommand>)> {
        self.server.outgoing()
    }

    /// Results of commands applied since the last call.
    pub fn take_results(&mut self) -> Vec<KvResult> {
        std::mem::take(&mut self.results)
    }

    /// The applied state (for inspection and tests).
    pub fn state(&self) -> &HashMap<String, i64> {
        &self.sm.state
    }

    /// The full state machine, sessions included (for convergence checks).
    pub fn state_machine(&self) -> &KvStateMachine {
        &self.sm
    }

    /// Access the underlying replication server (partitions, recovery).
    pub fn server(&mut self) -> &mut OmniPaxosServer<KvCommand, S> {
        &mut self.server
    }

    /// Shared access to the replication server (invariant observation).
    pub fn server_ref(&self) -> &OmniPaxosServer<KvCommand, S> {
        &self.server
    }
}

impl<S: Storage<KvCommand>> std::fmt::Debug for KvNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvNode")
            .field("server", &self.server)
            .field("keys", &self.sm.state.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a fully connected in-memory cluster until quiescent.
    fn run(nodes: &mut [KvNode], steps: usize) {
        run_cut(nodes, steps, &[]);
    }

    /// Like [`run`], but messages to or from the nodes in `cut` are
    /// dropped (a network partition).
    fn run_cut(nodes: &mut [KvNode], steps: usize, cut: &[NodeId]) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing() {
                    if cut.contains(&from) || cut.contains(&to) {
                        continue;
                    }
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    fn cluster(n: usize) -> Vec<KvNode> {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        ids.iter().map(|&p| KvNode::new(p, ids.clone())).collect()
    }

    /// A cluster with leader leases enabled (20-tick lease, 2-tick skew
    /// bound — the same parameters as the core lease tests).
    fn lease_cluster(n: usize) -> Vec<KvNode> {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        ids.iter()
            .map(|&p| {
                let mut cfg = ServerConfig::with(p);
                cfg.lease_ticks = 20;
                cfg.lease_epsilon_ticks = 2;
                KvNode::with_config(cfg, ids.clone())
            })
            .collect()
    }

    fn leader_idx(nodes: &[KvNode]) -> usize {
        nodes.iter().position(|n| n.is_leader()).expect("leader")
    }

    #[test]
    fn puts_replicate_to_all_servers() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 7,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("x"), Some(7));
        }
    }

    #[test]
    fn adds_are_linearized_not_lost() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        for seq in 1..=10 {
            nodes[li]
                .submit(KvCommand {
                    client: 1,
                    seq,
                    op: KvOp::Add {
                        key: "ctr".into(),
                        delta: 1,
                    },
                })
                .unwrap();
        }
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("ctr"), Some(10));
        }
    }

    #[test]
    fn duplicate_retries_apply_once() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let cmd = KvCommand {
            client: 9,
            seq: 1,
            op: KvOp::Add {
                key: "k".into(),
                delta: 5,
            },
        };
        nodes[li].submit(cmd.clone()).unwrap();
        nodes[li].submit(cmd.clone()).unwrap(); // client retry
        run(&mut nodes, 100);
        for n in &nodes {
            assert_eq!(n.read_local("k"), Some(5), "retry must not double-apply");
        }
    }

    #[test]
    fn transfer_rejected_on_insufficient_funds() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "alice".into(),
                    value: 30,
                },
            })
            .unwrap();
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 2,
                op: KvOp::Transfer {
                    from: "alice".into(),
                    to: "bob".into(),
                    amount: 50,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let results = nodes[li].take_results();
        let xfer = results.iter().find(|r| r.seq == 2).unwrap();
        assert!(!xfer.applied);
        for n in &nodes {
            assert_eq!(n.read_local("alice"), Some(30));
            assert_eq!(n.read_local("bob"), None);
        }
    }

    #[test]
    fn linearizable_read_returns_value_through_log() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 42,
                },
            })
            .unwrap();
        nodes[li].read_linearizable(1, 2, "x").unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let results = nodes[li].take_results();
        let read = results.iter().find(|r| r.seq == 2).unwrap();
        assert_eq!(read.value, Some(42));
    }

    #[test]
    fn follower_submissions_are_forwarded() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let fi = (li + 1) % 3;
        nodes[fi]
            .submit(KvCommand {
                client: 2,
                seq: 1,
                op: KvOp::Put {
                    key: "f".into(),
                    value: 1,
                },
            })
            .unwrap();
        run(&mut nodes, 200);
        for n in &nodes {
            assert_eq!(n.read_local("f"), Some(1));
        }
    }

    fn mixed_op(seq: u64) -> KvOp {
        match seq % 4 {
            0 => KvOp::Put {
                key: format!("k{}", seq % 7),
                value: seq as i64,
            },
            1 => KvOp::Add {
                key: format!("k{}", seq % 5),
                delta: 2,
            },
            2 => KvOp::Delete {
                key: format!("k{}", seq % 3),
            },
            _ => KvOp::Transfer {
                from: format!("k{}", seq % 5),
                to: format!("k{}", seq % 7),
                amount: 1,
            },
        }
    }

    #[test]
    fn state_machines_converge_identically() {
        let mut nodes = cluster(5);
        run(&mut nodes, 150);
        let li = leader_idx(&nodes);
        for seq in 1..=50u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run(&mut nodes, 200);
        // Mid-stream compaction on every server must not disturb
        // convergence: the log prefix is superseded by the snapshot.
        for n in nodes.iter_mut() {
            n.compact().expect("compact");
        }
        let li = leader_idx(&nodes);
        for seq in 51..=80u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run(&mut nodes, 200);
        let reference = nodes[0].state_machine().clone();
        for n in &nodes[1..] {
            assert_eq!(
                n.state_machine(),
                &reference,
                "replicas must converge (sessions included)"
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_reproduces_the_state_machine() {
        use omnipaxos::snapshot::Snapshottable;
        let mut sm = KvStateMachine::default();
        for seq in 1..=40u64 {
            sm.apply(KvCommand {
                client: seq % 3,
                seq,
                op: mixed_op(seq),
            });
        }
        let snap = sm.snapshot();
        let mut restored = KvStateMachine::default();
        restored.restore(&snap);
        assert_eq!(restored, sm);
        // Deterministic: equal states encode to identical bytes.
        assert_eq!(restored.snapshot()[..], snap[..]);
        // The session table is part of the snapshot: a retried command is
        // still deduplicated after restore.
        let dup = restored.apply(KvCommand {
            client: 1,
            seq: 1,
            op: KvOp::Add {
                key: "k1".into(),
                delta: 100,
            },
        });
        assert!(!dup.applied, "retry after restore must not re-apply");
    }

    #[test]
    fn lease_read_serves_locally_without_log_growth() {
        let mut nodes = cluster(3); // leases off: never valid
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        assert!(!nodes[li].lease_valid(), "leases disabled by default");

        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        assert!(nodes[li].lease_valid(), "steady-state leader holds a lease");
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 7,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li].take_results();
        let log_before = nodes[li].server_ref().decided_len();
        nodes[li].read(ReadMode::Lease, 1, 2, "x").unwrap();
        // Served immediately from local state: no round, no log slot.
        let results = nodes[li].take_results();
        let read = results.iter().find(|r| r.seq == 2).expect("served");
        assert_eq!(read.value, Some(7));
        assert!(read.applied);
        run(&mut nodes, 50);
        let li = leader_idx(&nodes);
        assert_eq!(
            nodes[li].server_ref().decided_len(),
            log_before,
            "lease reads must not consume log slots"
        );
    }

    #[test]
    fn lease_read_falls_through_to_log_at_followers() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 9,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let fi = (leader_idx(&nodes) + 1) % 3;
        assert!(!nodes[fi].lease_valid());
        nodes[fi].take_results();
        nodes[fi].read(ReadMode::Lease, 1, 2, "x").unwrap();
        // Not served locally — forwarded as a log marker.
        assert!(nodes[fi].take_results().is_empty());
        run(&mut nodes, 200);
        let results = nodes[fi].take_results();
        let read = results.iter().find(|r| r.seq == 2).expect("via log");
        assert_eq!(read.value, Some(9));
    }

    #[test]
    fn read_index_serves_at_follower_without_log_growth() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        nodes[li]
            .submit(KvCommand {
                client: 1,
                seq: 1,
                op: KvOp::Put {
                    key: "x".into(),
                    value: 42,
                },
            })
            .unwrap();
        run(&mut nodes, 100);
        let fi = (leader_idx(&nodes) + 1) % 3;
        let log_before = nodes[fi].server_ref().decided_len();
        nodes[fi].take_results();
        nodes[fi].read(ReadMode::ReadIndex, 1, 2, "x").unwrap();
        run(&mut nodes, 100);
        let results = nodes[fi].take_results();
        let read = results.iter().find(|r| r.seq == 2).expect("granted");
        assert_eq!(read.value, Some(42));
        assert!(read.applied);
        assert_eq!(nodes[fi].pending_reads(), 0);
        assert_eq!(
            nodes[fi].server_ref().decided_len(),
            log_before,
            "read-index reads must not consume log slots"
        );
    }

    #[test]
    fn read_index_expires_when_cut_off_from_the_leader() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let fi = (leader_idx(&nodes) + 1) % 3;
        let cut_pid = nodes[fi].pid();
        run_cut(&mut nodes, 30, &[cut_pid]); // lease grant from fi lapses
        nodes[fi].take_results();
        nodes[fi].read(ReadMode::ReadIndex, 1, 1, "x").unwrap();
        run_cut(&mut nodes, READ_DEADLINE_TICKS as usize + 50, &[cut_pid]);
        let results = nodes[fi].take_results();
        let read = results.iter().find(|r| r.seq == 1).expect("expired");
        assert!(!read.applied, "unreachable leader must expire, not hang");
        assert_eq!(nodes[fi].pending_reads(), 0);
    }

    /// Satellite (e): a lease never spans a reconfiguration. Once the
    /// stop-sign is decided the old configuration's leader must refuse
    /// local reads and fall through to the (refused) log path.
    #[test]
    fn lease_reads_refused_once_stopsign_decides() {
        let mut nodes = lease_cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        assert!(nodes[li].lease_valid());
        nodes[li].server().reconfigure(vec![1, 2, 3, 4]).unwrap();
        // Enough steps to decide the stop-sign and hand over, but far too
        // few for the successor configuration to assemble lease grants
        // (which takes election rounds plus a heartbeat round).
        run(&mut nodes, 10);
        assert!(
            !nodes[li].lease_valid(),
            "lease must die with the configuration"
        );
        nodes[li].take_results();
        let _ = nodes[li].read(ReadMode::Lease, 8, 1, "x");
        assert!(
            nodes[li].take_results().is_empty(),
            "must not serve locally across a config change"
        );
        // The successor configuration (majority 3 of 4; node 4 is absent)
        // eventually earns its own lease — a fresh one, not a carry-over.
        run(&mut nodes, 400);
        assert!(nodes.iter().any(|n| n.lease_valid()));
    }

    /// The satellite scenario: a follower is partitioned long enough for
    /// the rest of the cluster to compact past its log; on heal it must
    /// recover via snapshot transfer (the prefix no longer exists as log
    /// entries) and converge to the identical state machine.
    #[test]
    fn partitioned_follower_recovers_via_snapshot_after_compaction() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = leader_idx(&nodes);
        let cut_pid = nodes[(li + 1) % 3].pid();
        for seq in 1..=30u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run_cut(&mut nodes, 150, &[cut_pid]);
        // The connected majority compacts everything it decided: the
        // partitioned follower's missing prefix is gone from every log.
        let mut compacted_at = 0;
        for n in nodes.iter_mut() {
            if n.pid() != cut_pid {
                compacted_at = n.compact().expect("compact");
            }
        }
        assert_eq!(compacted_at, 30);
        run_cut(&mut nodes, 50, &[cut_pid]);
        // Heal: the follower re-syncs via chunked snapshot transfer, then
        // fresh traffic replicates to everyone.
        run(&mut nodes, 300);
        let li = leader_idx(&nodes);
        for seq in 31..=35u64 {
            let op = mixed_op(seq);
            nodes[li].submit(KvCommand { client: 3, seq, op }).unwrap();
        }
        run(&mut nodes, 300);
        let reference = nodes[0].state_machine().clone();
        for n in nodes.iter_mut() {
            assert_eq!(n.state_machine(), &reference, "identical state machines");
            assert!(
                n.server().log_start() >= 30,
                "prefix was never re-migrated as entries (pid {})",
                n.pid()
            );
        }
    }
}
