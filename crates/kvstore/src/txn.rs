//! Cross-shard transactions: two-phase commit over per-shard Omni-Paxos
//! logs (DESIGN.md §15).
//!
//! The participant state of textbook 2PC — "prepared" votes, the
//! commit/abort decision, staged writes — lives *inside* the shards'
//! replicated logs as ordinary [`KvOp`] records, so it inherits the
//! durability and failover story of the store itself: a prepare survives
//! any minority of crashes because it is a decided log entry, and
//! coordinator recovery is log replay plus the stale-prepare scanner
//! below, not a separate write-ahead protocol.
//!
//! The protocol, per transaction (identified by the issuing client's
//! `(client, seq)` pair — globally unique, and the dedup key across every
//! coordinator that ever drives it):
//!
//! 1. **Prepare.** The coordinator partitions the [`TxnSpec`]'s guards
//!    and writes by key ownership and proposes a [`KvOp::TxnPrepare`]
//!    into each participant shard's log. Applying it votes: *yes* iff
//!    every guard holds and no touched key is locked by another
//!    transaction (staging the writes and locking the keys), *no*
//!    otherwise — voting no instead of waiting on a lock is what keeps
//!    the protocol deadlock-free.
//! 2. **Decide.** All yes → the coordinator proposes
//!    `TxnDecide { commit: true }`; any no (or the prepare deadline
//!    lapsing — presumed abort) → `commit: false`. The decision is
//!    proposed into the *coordinator shard's* log (the smallest
//!    participant shard id — deterministic, so independent recoveries
//!    agree on where to look). The first decision record for a
//!    transaction wins and is immutable; later conflicting proposals
//!    are no-ops that report the recorded decision. That single rule
//!    serializes a racing recovery abort against the original commit.
//! 3. **Resolve.** The winning decision is pushed to every participant
//!    as `TxnCommit`/`TxnAbort`, which applies or discards the staged
//!    writes and releases the locks. Resolution records are idempotent;
//!    retries are free.
//!
//! **Recovery.** Any replica can finish anyone's transaction: the
//! scanner in [`TxnCoordinator::tick`] watches its node's local shards
//! for prepared transactions that no local run owns. After a grace
//! period it consults the coordinator shard's (local) decision map —
//! a recorded decision is pushed to the stuck participant; no decision
//! earns a proposed abort into the coordinator shard, where first-wins
//! arbitration settles the race with any coordinator still alive.
//! A transaction in doubt is thus always driven to resolution once its
//! shards regain quorum: no orphaned prepare locks survive a heal.

use crate::shard::{shard_of_key, ShardedKvNode};
use crate::store::{KvCommand, KvOp, KvResult, TxnGuard, TxnId, TxnSpec, WriteOp};
use omnipaxos::storage::Storage;
use omnipaxos::NodeId;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Marks a coordinator-issued proposal's client id (alongside the read
/// flag used by `net`'s pipelined client): coordinator results are
/// filtered out of the client-reply path by this bit.
pub const TXN_CLIENT_FLAG: u64 = 1 << 62;

/// Ticks between re-proposing an unanswered record (proposals are lost on
/// leader changes; the records themselves are idempotent).
const RETRY_TICKS: u64 = 50;
/// Ticks a transaction may sit in the prepare phase before the
/// coordinator presumes abort and proposes `TxnDecide { commit: false }`.
const PREPARE_TIMEOUT_TICKS: u64 = 400;
/// Ticks between stale-prepare scans of the local shards.
const SCAN_EVERY_TICKS: u64 = 100;
/// Ticks after which a coordinator abandons a run it cannot finish —
/// e.g. its node was migrated out of a participant shard's membership
/// and can no longer propose into (or observe) that shard. The
/// transaction is not left in doubt: any prepares it staged are on
/// *member* replicas, whose scanners drive them to a decision; the
/// client learns the fate via a status query or a retried request.
const ABANDON_AFTER_TICKS: u64 = 4_000;
/// Grace period before the scanner considers a prepared transaction
/// orphaned — long enough for a live coordinator to finish on its own.
const RECOVER_AFTER_TICKS: u64 = 500;

/// The resolved fate of a transaction, reported once per
/// [`TxnCoordinator::begin`] that reached a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOutcome {
    pub txn: TxnId,
    pub committed: bool,
}

/// What an in-flight coordinator proposal was for, keyed by its seq.
enum Pending {
    Prepare { txn: TxnId, shard: u32 },
    Decide { txn: TxnId },
    Resolve { txn: TxnId, shard: u32 },
}

/// Where a driven transaction stands.
enum Phase {
    /// Waiting for every participant's vote.
    Preparing { yes: HashSet<u32> },
    /// Votes in (or presumed abort); waiting for the decision record.
    Deciding { commit: bool },
    /// Decision recorded; pushing commit/abort to the participants.
    Resolving { commit: bool, done: HashSet<u32> },
}

/// One transaction this coordinator is driving.
struct Run {
    /// Participant shard → its slice of the spec.
    parts: BTreeMap<u32, (Vec<TxnGuard>, Vec<WriteOp>)>,
    /// The shard whose log arbitrates the decision.
    coord_shard: u32,
    phase: Phase,
    /// Presumed-abort deadline (prepare phase only).
    deadline: u64,
    next_retry: u64,
    /// When this run started (the abandon clock).
    born: u64,
}

/// Drives cross-shard transactions over a node's [`ShardedKvNode`]. One
/// coordinator per gateway; any node can coordinate any transaction
/// (proposals forward to shard leaders), and crashed coordinators are
/// covered by every other node's stale-prepare scanner.
pub struct TxnCoordinator {
    /// This coordinator's result identity:
    /// `TXN_CLIENT_FLAG | nonce << 32 | pid` — unique per incarnation.
    client: u64,
    next_seq: u64,
    ticks: u64,
    runs: HashMap<TxnId, Run>,
    pending: HashMap<u64, Pending>,
    outcomes: Vec<TxnOutcome>,
    next_scan: u64,
    /// When the scanner first saw a prepared transaction on a shard (the
    /// grace clock for orphan recovery).
    first_seen: HashMap<(u32, TxnId), u64>,
}

impl TxnCoordinator {
    pub fn new(pid: NodeId) -> Self {
        Self::with_nonce(pid, 0)
    }

    /// A coordinator whose identity is distinguished from earlier
    /// incarnations at the same node. A restarted gateway MUST NOT
    /// reuse its predecessor's `(client, seq)` space: proposals the old
    /// incarnation left in flight still apply (harmlessly — the records
    /// are idempotent), but their *results* would collide with the new
    /// incarnation's pending seqs and be misattributed to whatever
    /// transactions it is driving now — e.g. a stale result read as a
    /// yes-vote for a transaction whose guard actually failed. Any value
    /// that differs across restarts works as the nonce: a restart
    /// counter, or the low bits of the boot time.
    pub fn with_nonce(pid: NodeId, nonce: u32) -> Self {
        TxnCoordinator {
            client: TXN_CLIENT_FLAG | ((nonce as u64 & 0x3FFF_FFFF) << 32) | (pid & 0xFFFF_FFFF),
            next_seq: 1,
            ticks: 0,
            runs: HashMap::new(),
            pending: HashMap::new(),
            outcomes: Vec::new(),
            next_scan: SCAN_EVERY_TICKS,
            first_seen: HashMap::new(),
        }
    }

    /// The client id under which this coordinator proposes; results
    /// carrying it belong to the coordinator, not to any client
    /// connection.
    pub fn client_id(&self) -> u64 {
        self.client
    }

    /// Transactions currently being driven.
    pub fn in_flight(&self) -> usize {
        self.runs.len()
    }

    /// Start (or idempotently re-join) transaction `txn` for `spec`.
    /// Returns `Some(committed)` when the outcome is already recorded in
    /// the local coordinator-shard state — the retransmit fast path — and
    /// `None` when the transaction is now (or already was) being driven;
    /// its [`TxnOutcome`] arrives via [`TxnCoordinator::take_outcomes`].
    pub fn begin<S: Storage<KvCommand>>(
        &mut self,
        node: &mut ShardedKvNode<S>,
        txn: TxnId,
        spec: &TxnSpec,
    ) -> Option<bool> {
        if spec.is_empty() {
            return Some(true); // nothing to check, nothing to write
        }
        let n = node.n_shards();
        let mut parts: BTreeMap<u32, (Vec<TxnGuard>, Vec<WriteOp>)> = BTreeMap::new();
        for g in &spec.guards {
            let s = shard_of_key(g.key(), n);
            parts.entry(s).or_default().0.push(g.clone());
        }
        for w in &spec.writes {
            let s = shard_of_key(w.key(), n);
            parts.entry(s).or_default().1.push(w.clone());
        }
        let coord_shard = *parts.keys().next().expect("non-empty spec");
        if let Some(&d) = node
            .shard(coord_shard)
            .state_machine()
            .decisions()
            .get(&txn)
        {
            // Already decided (this gateway or any predecessor drove it to
            // a decision that replicated here): replay the verdict.
            // Resolution to the participants is the scanner's job if the
            // original driver died mid-push.
            return Some(d);
        }
        if self.runs.contains_key(&txn) {
            return None; // duplicate request for an in-flight transaction
        }
        let participants: Vec<u32> = parts.keys().copied().collect();
        for (&shard, (guards, writes)) in &parts {
            let op = KvOp::TxnPrepare {
                txn,
                coord_shard,
                participants: participants.clone(),
                guards: guards.clone(),
                writes: writes.clone(),
            };
            self.propose(node, shard, op, Pending::Prepare { txn, shard });
        }
        self.runs.insert(
            txn,
            Run {
                parts,
                coord_shard,
                phase: Phase::Preparing {
                    yes: HashSet::new(),
                },
                deadline: self.ticks + PREPARE_TIMEOUT_TICKS,
                next_retry: self.ticks + RETRY_TICKS,
                born: self.ticks,
            },
        );
        None
    }

    fn propose<S: Storage<KvCommand>>(
        &mut self,
        node: &mut ShardedKvNode<S>,
        shard: u32,
        op: KvOp,
        what: Pending,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let cmd = KvCommand {
            client: self.client,
            seq,
            op,
        };
        if node.shard_mut(shard).submit(cmd).is_ok() {
            self.pending.insert(seq, what);
        }
        // A refused proposal (mid-reconfiguration, no leader) is simply
        // re-proposed by the retry timer.
    }

    /// Fire-and-forget proposal (the scanner's tool: re-scans re-drive).
    fn propose_anon<S: Storage<KvCommand>>(
        &mut self,
        node: &mut ShardedKvNode<S>,
        shard: u32,
        op: KvOp,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let _ = node.shard_mut(shard).submit(KvCommand {
            client: self.client,
            seq,
            op,
        });
    }

    /// Feed shard-tagged results back to the coordinator (the gateway
    /// passes everything from `ShardedKvNode::take_results`; results not
    /// addressed to this coordinator are ignored).
    pub fn observe<S: Storage<KvCommand>>(
        &mut self,
        node: &mut ShardedKvNode<S>,
        results: &[(u32, KvResult)],
    ) {
        let me = self.client;
        for (_, r) in results.iter().filter(|(_, r)| r.client == me) {
            let Some(what) = self.pending.remove(&r.seq) else {
                continue; // a scanner proposal, or a superseded retry
            };
            match what {
                Pending::Prepare { txn, shard } => self.on_vote(node, txn, shard, r.applied),
                Pending::Decide { txn } => {
                    // The value always carries the *winning* decision,
                    // whether or not this proposal recorded it first.
                    let commit = r.value == Some(1);
                    self.on_decided(node, txn, commit);
                }
                Pending::Resolve { txn, shard } => {
                    if let Some(run) = self.runs.get_mut(&txn) {
                        if let Phase::Resolving { done, .. } = &mut run.phase {
                            done.insert(shard);
                            if done.len() == run.parts.len() {
                                self.runs.remove(&txn);
                            }
                        }
                    }
                }
            }
        }
    }

    fn on_vote<S: Storage<KvCommand>>(
        &mut self,
        node: &mut ShardedKvNode<S>,
        txn: TxnId,
        shard: u32,
        vote_yes: bool,
    ) {
        let Some(run) = self.runs.get_mut(&txn) else {
            return;
        };
        let Phase::Preparing { yes } = &mut run.phase else {
            return; // stale vote after the phase moved on
        };
        let commit = if vote_yes {
            yes.insert(shard);
            if yes.len() < run.parts.len() {
                return; // still waiting on other participants
            }
            true
        } else {
            false
        };
        run.phase = Phase::Deciding { commit };
        let coord_shard = run.coord_shard;
        self.propose(
            node,
            coord_shard,
            KvOp::TxnDecide { txn, commit },
            Pending::Decide { txn },
        );
    }

    fn on_decided<S: Storage<KvCommand>>(
        &mut self,
        node: &mut ShardedKvNode<S>,
        txn: TxnId,
        commit: bool,
    ) {
        let Some(run) = self.runs.get_mut(&txn) else {
            return;
        };
        if matches!(run.phase, Phase::Resolving { .. }) {
            return; // duplicate decide result
        }
        run.phase = Phase::Resolving {
            commit,
            done: HashSet::new(),
        };
        self.outcomes.push(TxnOutcome {
            txn,
            committed: commit,
        });
        let shards: Vec<u32> = self.runs[&txn].parts.keys().copied().collect();
        for shard in shards {
            let op = if commit {
                KvOp::TxnCommit { txn }
            } else {
                KvOp::TxnAbort { txn }
            };
            self.propose(node, shard, op, Pending::Resolve { txn, shard });
        }
    }

    /// Resolved outcomes since the last call.
    pub fn take_outcomes(&mut self) -> Vec<TxnOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Advance timers: re-propose unanswered records, presume abort on
    /// prepare timeouts, and scan for orphaned prepares.
    pub fn tick<S: Storage<KvCommand>>(&mut self, node: &mut ShardedKvNode<S>) {
        self.ticks += 1;
        let now = self.ticks;

        // Abandon runs this coordinator can evidently not finish (its
        // proposals into some participant shard keep vanishing — e.g.
        // the node left that shard's membership). The member replicas'
        // scanners own whatever state the run left behind.
        self.runs
            .retain(|_, run| now.saturating_sub(run.born) < ABANDON_AFTER_TICKS);

        // Presumed abort: prepares that outlived their deadline.
        let expired: Vec<TxnId> = self
            .runs
            .iter()
            .filter(|(_, run)| matches!(run.phase, Phase::Preparing { .. }) && run.deadline <= now)
            .map(|(&txn, _)| txn)
            .collect();
        for txn in expired {
            let run = self.runs.get_mut(&txn).expect("just listed");
            run.phase = Phase::Deciding { commit: false };
            let coord_shard = run.coord_shard;
            self.propose(
                node,
                coord_shard,
                KvOp::TxnDecide { txn, commit: false },
                Pending::Decide { txn },
            );
        }

        // Retries: re-propose whatever the current phase still waits on.
        let due: Vec<TxnId> = self
            .runs
            .iter()
            .filter(|(_, run)| run.next_retry <= now)
            .map(|(&txn, _)| txn)
            .collect();
        for txn in due {
            let run = self.runs.get_mut(&txn).expect("just listed");
            run.next_retry = now + RETRY_TICKS;
            let coord_shard = run.coord_shard;
            let participants: Vec<u32> = run.parts.keys().copied().collect();
            // Collect the re-proposals first (the run borrow must end
            // before `propose` takes `&mut self` again).
            let mut todo: Vec<(u32, KvOp, Pending)> = Vec::new();
            match &run.phase {
                Phase::Preparing { yes } => {
                    for (&shard, (guards, writes)) in &run.parts {
                        if yes.contains(&shard) {
                            continue;
                        }
                        todo.push((
                            shard,
                            KvOp::TxnPrepare {
                                txn,
                                coord_shard,
                                participants: participants.clone(),
                                guards: guards.clone(),
                                writes: writes.clone(),
                            },
                            Pending::Prepare { txn, shard },
                        ));
                    }
                }
                Phase::Deciding { commit } => {
                    todo.push((
                        coord_shard,
                        KvOp::TxnDecide {
                            txn,
                            commit: *commit,
                        },
                        Pending::Decide { txn },
                    ));
                }
                Phase::Resolving { commit, done } => {
                    for &shard in participants.iter().filter(|s| !done.contains(s)) {
                        let op = if *commit {
                            KvOp::TxnCommit { txn }
                        } else {
                            KvOp::TxnAbort { txn }
                        };
                        todo.push((shard, op, Pending::Resolve { txn, shard }));
                    }
                }
            }
            for (shard, op, what) in todo {
                self.propose(node, shard, op, what);
            }
        }

        // Drop pending entries whose run is gone (their results, if any
        // still arrive, are ignored as unknown seqs).
        self.pending.retain(|_, p| {
            let txn = match p {
                Pending::Prepare { txn, .. }
                | Pending::Decide { txn }
                | Pending::Resolve { txn, .. } => txn,
            };
            self.runs.contains_key(txn)
        });

        if self.next_scan <= now {
            self.next_scan = now + SCAN_EVERY_TICKS;
            self.scan(node);
        }
    }

    /// The stale-prepare scanner: finish transactions whose coordinator
    /// died. Only ever acts on *observed* local state — a recorded
    /// decision is pushed to the prepared shard; a missing decision earns
    /// a proposed abort into the coordinator shard, where the first-wins
    /// record arbitrates against any coordinator still alive.
    fn scan<S: Storage<KvCommand>>(&mut self, node: &mut ShardedKvNode<S>) {
        let now = self.ticks;
        let mut live: HashSet<(u32, TxnId)> = HashSet::new();
        let mut actions: Vec<(u32, KvOp)> = Vec::new();
        for s in 0..node.n_shards() as u32 {
            for (&txn, p) in node.shard(s).state_machine().prepared() {
                live.insert((s, txn));
                if self.runs.contains_key(&txn) {
                    continue; // actively driven by this coordinator
                }
                let born = *self.first_seen.entry((s, txn)).or_insert(now);
                if now.saturating_sub(born) < RECOVER_AFTER_TICKS {
                    continue; // grace: someone may still be driving it
                }
                match node
                    .shard(p.coord_shard)
                    .state_machine()
                    .decisions()
                    .get(&txn)
                {
                    Some(true) => actions.push((s, KvOp::TxnCommit { txn })),
                    Some(false) => actions.push((s, KvOp::TxnAbort { txn })),
                    // No decision visible here: presume abort through the
                    // coordinator shard's log (first decision wins).
                    None => actions.push((p.coord_shard, KvOp::TxnDecide { txn, commit: false })),
                }
            }
        }
        self.first_seen.retain(|k, _| live.contains(k));
        for (shard, op) in actions {
            self.propose_anon(node, shard, op);
        }
    }
}

impl std::fmt::Debug for TxnCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnCoordinator")
            .field("client", &self.client)
            .field("in_flight", &self.runs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TxnGuard;

    const SHARDS: usize = 4;

    /// A 3-node, 4-shard cluster with one coordinator per node.
    struct Sim {
        nodes: Vec<ShardedKvNode>,
        coords: Vec<TxnCoordinator>,
    }

    impl Sim {
        fn new() -> Self {
            let ids: Vec<NodeId> = vec![1, 2, 3];
            Sim {
                nodes: ids
                    .iter()
                    .map(|&p| ShardedKvNode::new(p, ids.clone(), SHARDS))
                    .collect(),
                coords: ids.iter().map(|&p| TxnCoordinator::new(p)).collect(),
            }
        }

        /// One simulated tick with full connectivity (coordinators on the
        /// nodes in `dead` are not driven — a crashed gateway).
        fn step(&mut self, dead: &[usize]) -> Vec<TxnOutcome> {
            let mut out = Vec::new();
            for i in 0..self.nodes.len() {
                self.nodes[i].tick();
                let results = self.nodes[i].take_results();
                if !dead.contains(&i) {
                    self.coords[i].observe(&mut self.nodes[i], &results);
                    self.coords[i].tick(&mut self.nodes[i]);
                    out.extend(self.coords[i].take_outcomes());
                }
            }
            let mut inbox = Vec::new();
            for n in self.nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = self.nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
            out
        }

        fn run(&mut self, steps: usize, dead: &[usize]) -> Vec<TxnOutcome> {
            let mut out = Vec::new();
            for _ in 0..steps {
                out.extend(self.step(dead));
            }
            out
        }

        fn fund(&mut self, key: &str, amount: i64, seq: u64) {
            let s = shard_of_key(key, SHARDS);
            let li = self.nodes.iter().position(|n| n.is_leader(s)).unwrap();
            self.nodes[li]
                .shard_mut(s)
                .submit(KvCommand {
                    client: 1,
                    seq,
                    op: KvOp::Put {
                        key: key.into(),
                        value: amount,
                    },
                })
                .unwrap();
        }

        fn value(&self, node: usize, key: &str) -> Option<i64> {
            self.nodes[node].read_local(key)
        }

        fn assert_no_locks(&self) {
            for (i, n) in self.nodes.iter().enumerate() {
                for s in 0..SHARDS as u32 {
                    assert!(
                        n.shard(s).state_machine().locks().is_empty(),
                        "node {i} shard {s} holds orphaned locks"
                    );
                    assert!(
                        n.shard(s).state_machine().prepared().is_empty(),
                        "node {i} shard {s} holds orphaned prepares"
                    );
                }
            }
        }
    }

    /// Two keys on different shards.
    fn cross_shard_pair() -> (String, String) {
        let a = "acct0".to_string();
        let sa = shard_of_key(&a, SHARDS);
        for i in 1.. {
            let b = format!("acct{i}");
            if shard_of_key(&b, SHARDS) != sa {
                return (a, b);
            }
        }
        unreachable!()
    }

    #[test]
    fn cross_shard_transfer_commits_and_converges() {
        let mut sim = Sim::new();
        sim.run(150, &[]);
        let (a, b) = cross_shard_pair();
        sim.fund(&a, 100, 1);
        sim.run(100, &[]);
        let spec = TxnSpec::transfer(&a, &b, 40);
        assert_eq!(sim.coords[0].begin(&mut sim.nodes[0], (9, 1), &spec), None);
        let outcomes = sim.run(300, &[]);
        assert_eq!(
            outcomes,
            vec![TxnOutcome {
                txn: (9, 1),
                committed: true
            }]
        );
        sim.run(200, &[]); // let resolution replicate everywhere
        for i in 0..3 {
            assert_eq!(sim.value(i, &a), Some(60), "node {i}");
            assert_eq!(sim.value(i, &b), Some(40), "node {i}");
        }
        sim.assert_no_locks();
        assert_eq!(sim.coords[0].in_flight(), 0, "run retired");
    }

    #[test]
    fn insufficient_funds_aborts_without_side_effects() {
        let mut sim = Sim::new();
        sim.run(150, &[]);
        let (a, b) = cross_shard_pair();
        sim.fund(&a, 10, 1);
        sim.run(100, &[]);
        let spec = TxnSpec::transfer(&a, &b, 40);
        assert_eq!(sim.coords[1].begin(&mut sim.nodes[1], (9, 2), &spec), None);
        let outcomes = sim.run(300, &[]);
        assert_eq!(
            outcomes,
            vec![TxnOutcome {
                txn: (9, 2),
                committed: false
            }]
        );
        sim.run(200, &[]);
        for i in 0..3 {
            assert_eq!(sim.value(i, &a), Some(10), "node {i}: untouched");
            assert_eq!(sim.value(i, &b), None, "node {i}: untouched");
        }
        sim.assert_no_locks();
    }

    #[test]
    fn duplicate_begin_replays_the_recorded_decision() {
        let mut sim = Sim::new();
        sim.run(150, &[]);
        let (a, b) = cross_shard_pair();
        sim.fund(&a, 100, 1);
        sim.run(100, &[]);
        let spec = TxnSpec::transfer(&a, &b, 40);
        sim.coords[0].begin(&mut sim.nodes[0], (9, 3), &spec);
        sim.run(300, &[]);
        sim.run(200, &[]);
        // A retransmitted request — even at a different gateway — sees the
        // recorded decision instead of re-running the transfer.
        assert_eq!(
            sim.coords[2].begin(&mut sim.nodes[2], (9, 3), &spec),
            Some(true)
        );
        assert_eq!(
            sim.coords[0].begin(&mut sim.nodes[0], (9, 3), &spec),
            Some(true)
        );
        for i in 0..3 {
            assert_eq!(sim.value(i, &a), Some(60), "applied exactly once");
        }
    }

    #[test]
    fn guard_equals_makes_cross_shard_cas() {
        let mut sim = Sim::new();
        sim.run(150, &[]);
        let (a, b) = cross_shard_pair();
        sim.fund(&a, 5, 1);
        sim.run(100, &[]);
        // expect a==5 then write both keys — a cross-shard conditional.
        let spec = TxnSpec {
            guards: vec![TxnGuard::Equals {
                key: a.clone(),
                expect: Some(5),
            }],
            writes: vec![
                WriteOp::Put {
                    key: a.clone(),
                    value: 6,
                },
                WriteOp::Put {
                    key: b.clone(),
                    value: 60,
                },
            ],
        };
        sim.coords[0].begin(&mut sim.nodes[0], (9, 4), &spec);
        let outcomes = sim.run(300, &[]);
        assert!(outcomes.iter().any(|o| o.committed));
        sim.run(200, &[]);
        for i in 0..3 {
            assert_eq!(sim.value(i, &a), Some(6));
            assert_eq!(sim.value(i, &b), Some(60));
        }
        // The same guard now fails: aborted, nothing changes.
        sim.coords[0].begin(&mut sim.nodes[0], (9, 5), &spec);
        let outcomes = sim.run(300, &[]);
        assert!(outcomes.iter().any(|o| !o.committed));
        sim.run(200, &[]);
        for i in 0..3 {
            assert_eq!(sim.value(i, &a), Some(6), "failed guard: untouched");
        }
        sim.assert_no_locks();
    }

    #[test]
    fn scanner_resolves_a_prepare_orphaned_by_a_dead_coordinator() {
        let mut sim = Sim::new();
        sim.run(150, &[]);
        let (a, b) = cross_shard_pair();
        sim.fund(&a, 100, 1);
        sim.run(100, &[]);
        let spec = TxnSpec::transfer(&a, &b, 40);
        sim.coords[0].begin(&mut sim.nodes[0], (9, 6), &spec);
        // The coordinator dies immediately after proposing its prepares:
        // they decide and stage locks with nobody left to decide/resolve.
        sim.run(60, &[0]);
        let locked_somewhere = sim
            .nodes
            .iter()
            .any(|n| (0..SHARDS as u32).any(|s| !n.shard(s).state_machine().prepared().is_empty()));
        assert!(locked_somewhere, "prepares staged before the crash");
        // Node 0's gateway is dead from here on; the survivors' scanners
        // must drive the transaction to resolution (presumed abort or —
        // if the decide already landed — commit), releasing every lock.
        sim.run(
            (PREPARE_TIMEOUT_TICKS + RECOVER_AFTER_TICKS + 600) as usize,
            &[0],
        );
        sim.assert_no_locks();
        // Conservation: whatever was decided, no money was created.
        let total = sim.value(1, &a).unwrap_or(0) + sim.value(1, &b).unwrap_or(0);
        assert_eq!(total, 100, "balance conserved across recovery");
        for i in 1..3 {
            assert_eq!(
                sim.value(i, &a).unwrap_or(0) + sim.value(i, &b).unwrap_or(0),
                100
            );
        }
    }

    #[test]
    fn conflicting_transactions_serialize_via_locks() {
        let mut sim = Sim::new();
        sim.run(150, &[]);
        let (a, b) = cross_shard_pair();
        sim.fund(&a, 100, 1);
        sim.fund(&b, 100, 2);
        sim.run(100, &[]);
        // Two opposing transfers over the same pair, begun on different
        // gateways in the same tick: locks force one to vote no; both
        // resolve, money is conserved.
        sim.coords[0].begin(&mut sim.nodes[0], (8, 1), &TxnSpec::transfer(&a, &b, 30));
        sim.coords[1].begin(&mut sim.nodes[1], (8, 2), &TxnSpec::transfer(&b, &a, 70));
        let outcomes = sim.run(1200, &[]);
        assert_eq!(outcomes.len(), 2, "both transactions resolved");
        sim.run(200, &[]);
        sim.assert_no_locks();
        for i in 0..3 {
            let total = sim.value(i, &a).unwrap() + sim.value(i, &b).unwrap();
            assert_eq!(total, 200, "node {i}: conserved");
        }
        // Every replica agrees on both balances.
        for i in 1..3 {
            assert_eq!(sim.value(i, &a), sim.value(0, &a));
            assert_eq!(sim.value(i, &b), sim.value(0, &b));
        }
    }
}
