//! Per-shard WAL isolation: every shard of a [`ShardedKvNode`] owns its
//! own write-ahead log file, so a crash-and-restart recovers each shard
//! from *its own* durable point — and destroying one shard's log cannot
//! touch another's. The durable-point oracle follows `wal_torture`: the
//! on-disk WAL is reopened raw and its recorded decided index is the
//! ground truth a restarted node must honor.

use kvstore::shard::shard_config;
use kvstore::{shard_of_key, KvCommand, KvNode, KvOp, NodeId, ShardedKvNode};
use omnipaxos::service::{OmniPaxosServer, ServerConfig};
use omnipaxos::storage::Storage;
use omnipaxos::wal::WalStorage;
use std::path::PathBuf;

const SHARDS: usize = 2;

/// WAL path for one (node, shard, configuration) — the storage namespace
/// a durable sharded deployment must keep disjoint.
fn wal_path(tag: &str, pid: NodeId, shard: u32, config_id: u32) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "omnipaxos-shardwal-{tag}-{}-n{pid}-s{shard}-c{config_id}.wal",
        std::process::id()
    ));
    p
}

fn clean(tag: &str, pids: &[NodeId]) {
    for &pid in pids {
        for s in 0..SHARDS as u32 {
            for c in 1..=3 {
                let _ = std::fs::remove_file(wal_path(tag, pid, s, c));
            }
        }
    }
}

/// A durable sharded node: one namespaced WAL per shard, plus a factory
/// so post-reconfiguration storage opens a fresh per-config file.
fn durable_node(
    tag: &str,
    pid: NodeId,
    nodes: Vec<NodeId>,
) -> ShardedKvNode<WalStorage<KvCommand>> {
    let tag = tag.to_string();
    let shards = (0..SHARDS as u32)
        .map(|s| {
            let storage = WalStorage::open(wal_path(&tag, pid, s, 1)).expect("open shard wal");
            let tag = tag.clone();
            let server = OmniPaxosServer::with_storage_factory(
                shard_config(&ServerConfig::with(pid), s, &nodes),
                nodes.clone(),
                storage,
                move |c| WalStorage::open(wal_path(&tag, pid, s, c)).expect("open config wal"),
            );
            KvNode::from_server(server)
        })
        .collect();
    ShardedKvNode::from_shards(shards)
}

/// Deliver everything between the live nodes for `steps` rounds.
fn run(nodes: &mut [ShardedKvNode<WalStorage<KvCommand>>], steps: usize) {
    for _ in 0..steps {
        for n in nodes.iter_mut() {
            n.tick();
        }
        let mut inbox = Vec::new();
        for n in nodes.iter_mut() {
            let from = n.pid();
            for (to, m) in n.outgoing() {
                inbox.push((from, to, m));
            }
        }
        for (from, to, m) in inbox {
            if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                n.handle(from, m);
            }
        }
    }
}

fn put(seq: u64, key: &str, value: i64) -> KvCommand {
    KvCommand {
        client: 1,
        seq,
        op: KvOp::Put {
            key: key.into(),
            value,
        },
    }
}

/// Long, distinctive keys so the raw-bytes bleed scan below cannot false
/// positive on binary noise; returns `count` keys owned by `shard`.
fn keys_for(shard: u32, count: usize) -> Vec<String> {
    (0..)
        .map(|i| format!("isolation-key-{i:05}"))
        .filter(|k| shard_of_key(k, SHARDS) == shard)
        .take(count)
        .collect()
}

fn submit_to_leader(
    nodes: &mut [ShardedKvNode<WalStorage<KvCommand>>],
    shard: u32,
    cmd: KvCommand,
) {
    let li = nodes
        .iter()
        .position(|n| n.is_leader(shard))
        .expect("shard has a leader");
    nodes[li].submit_batch(shard, [cmd]).expect("submit");
}

/// Kill a replica mid-traffic, read each of its shard WALs back raw as
/// the durable-point oracle, destroy one shard's file entirely, and
/// restart: the surviving shard recovers its own durable point from disk
/// while the destroyed shard re-syncs from peers — independent recovery,
/// no cross-shard coupling, and no key from one shard in the other's log.
#[test]
fn shards_recover_their_own_durable_points_independently() {
    let tag = "independent";
    let ids: Vec<NodeId> = vec![1, 2, 3];
    clean(tag, &ids);
    let mut nodes: Vec<_> = ids
        .iter()
        .map(|&p| durable_node(tag, p, ids.clone()))
        .collect();
    run(&mut nodes, 200);

    // Unbalanced decided traffic: shard 0 gets 20 writes, shard 1 gets 8,
    // so the two durable points are visibly distinct.
    let k0 = keys_for(0, 20);
    let k1 = keys_for(1, 8);
    let mut seqs = [0u64; SHARDS];
    for (i, k) in k0.iter().enumerate() {
        seqs[0] += 1;
        submit_to_leader(&mut nodes, 0, put(seqs[0], k, i as i64));
    }
    for (i, k) in k1.iter().enumerate() {
        seqs[1] += 1;
        submit_to_leader(&mut nodes, 1, put(seqs[1], k, 100 + i as i64));
    }
    run(&mut nodes, 250);
    for n in &nodes {
        for (i, k) in k0.iter().enumerate() {
            assert_eq!(n.read_local(k), Some(i as i64), "{k} on node {}", n.pid());
        }
        for (i, k) in k1.iter().enumerate() {
            assert_eq!(n.read_local(k), Some(100 + i as i64));
        }
    }

    // Mid-traffic crash: two more writes per shard are in flight when the
    // victim disappears — only a couple of delivery rounds, no quiescence.
    let extra0 = keys_for(0, 22).split_off(20);
    let extra1 = keys_for(1, 10).split_off(8);
    for k in &extra0 {
        seqs[0] += 1;
        submit_to_leader(&mut nodes, 0, put(seqs[0], k, -1));
    }
    for k in &extra1 {
        seqs[1] += 1;
        submit_to_leader(&mut nodes, 1, put(seqs[1], k, -1));
    }
    run(&mut nodes, 2);
    let victim: NodeId = 3;
    let pos = nodes.iter().position(|n| n.pid() == victim).unwrap();
    drop(nodes.remove(pos)); // process gone; only the WAL files remain

    // Durable-point oracle: reopen the victim's WALs raw. Each shard's
    // file holds at least the quiesced decided prefix, and the two points
    // differ — per-shard logs, per-shard durability.
    let (d0, d1) = {
        let w0: WalStorage<KvCommand> =
            WalStorage::open(wal_path(tag, victim, 0, 1)).expect("reopen shard 0 wal");
        let w1: WalStorage<KvCommand> =
            WalStorage::open(wal_path(tag, victim, 1, 1)).expect("reopen shard 1 wal");
        (w0.get_decided_idx(), w1.get_decided_idx())
    };
    assert!(d0 >= 20, "shard 0 durable point {d0} below quiesced prefix");
    assert!(d1 >= 8, "shard 1 durable point {d1} below quiesced prefix");
    assert!(
        d0 > d1,
        "durable points must track per-shard traffic: {d0} vs {d1}"
    );

    // Destroy shard 1's log on the victim. Shard 0's file must be
    // untouched by that — its durable point re-reads identically.
    std::fs::remove_file(wal_path(tag, victim, 1, 1)).expect("destroy shard 1 wal");
    {
        let w0: WalStorage<KvCommand> =
            WalStorage::open(wal_path(tag, victim, 0, 1)).expect("shard 0 wal survives");
        assert_eq!(w0.get_decided_idx(), d0, "shard 0 durable point intact");
    }

    // Restart: shard 0 recovers from its own disk, shard 1 starts empty
    // and must re-sync from the survivors (§3 fail-recovery per group).
    // A few solo ticks drain the storage's decided prefix into the
    // service log — no peer message is delivered, so everything the node
    // knows at this point came from its own WALs.
    let mut reborn = durable_node(tag, victim, ids.clone());
    for _ in 0..5 {
        reborn.tick();
        let _ = reborn.outgoing();
    }
    assert_eq!(
        reborn.shard(0).server_ref().decided_len(),
        d0,
        "restarted shard 0 honors its own durable point"
    );
    assert_eq!(
        reborn.shard(1).server_ref().decided_len(),
        0,
        "restarted shard 1 has nothing local to recover"
    );
    reborn.fail_recovery();
    nodes.push(reborn);
    run(&mut nodes, 500);

    // Convergence after recovery: every write (including the mid-crash
    // in-flight ones, retransmitted implicitly by the decided prefix the
    // survivors hold) is readable on every node, shard by shard.
    let all0: Vec<String> = keys_for(0, 22);
    let all1: Vec<String> = keys_for(1, 10);
    for n in &nodes {
        for k in all0.iter().chain(all1.iter()) {
            assert!(
                n.read_local(k).is_some(),
                "{k} missing on node {} after recovery",
                n.pid()
            );
        }
    }

    // No cross-shard bleed: a shard's WAL never contains another shard's
    // keys. Scan the raw bytes for the (long, distinctive) key strings.
    for &pid in &ids {
        let bytes0 = std::fs::read(wal_path(tag, pid, 0, 1)).expect("shard 0 wal bytes");
        let bytes1 = std::fs::read(wal_path(tag, pid, 1, 1)).expect("shard 1 wal bytes");
        for k in &all1 {
            assert!(
                !contains(&bytes0, k.as_bytes()),
                "shard 1 key {k} bled into node {pid}'s shard 0 wal"
            );
        }
        for k in &all0 {
            assert!(
                !contains(&bytes1, k.as_bytes()),
                "shard 0 key {k} bled into node {pid}'s shard 1 wal"
            );
        }
        // And the logs are not vacuously empty: own keys do appear.
        assert!(k0.iter().any(|k| contains(&bytes0, k.as_bytes())));
        assert!(k1.iter().any(|k| contains(&bytes1, k.as_bytes())));
    }
    clean(tag, &ids);
}

/// Whole-cluster power failure: every node restarts from its per-shard
/// WALs alone and the full decided state of both shards is back before
/// any new replication happens.
#[test]
fn whole_cluster_restart_recovers_every_shard_from_disk() {
    let tag = "fullstop";
    let ids: Vec<NodeId> = vec![1, 2, 3];
    clean(tag, &ids);
    let k0 = keys_for(0, 6);
    let k1 = keys_for(1, 6);
    {
        let mut nodes: Vec<_> = ids
            .iter()
            .map(|&p| durable_node(tag, p, ids.clone()))
            .collect();
        run(&mut nodes, 200);
        let mut seqs = [0u64; SHARDS];
        for (i, k) in k0.iter().enumerate() {
            seqs[0] += 1;
            submit_to_leader(&mut nodes, 0, put(seqs[0], k, i as i64));
        }
        for (i, k) in k1.iter().enumerate() {
            seqs[1] += 1;
            submit_to_leader(&mut nodes, 1, put(seqs[1], k, 50 + i as i64));
        }
        run(&mut nodes, 250);
        for n in &nodes {
            for k in k0.iter().chain(k1.iter()) {
                assert!(n.read_local(k).is_some());
            }
        }
    } // power failure: all processes gone at once

    let mut nodes: Vec<_> = ids
        .iter()
        .map(|&p| {
            let mut n = durable_node(tag, p, ids.clone());
            n.fail_recovery();
            // Solo ticks (outgoing dropped): the decided prefix each node
            // reports next came from its own disk, not from a peer.
            for _ in 0..5 {
                n.tick();
                let _ = n.outgoing();
            }
            n
        })
        .collect();
    for n in &nodes {
        for s in 0..SHARDS as u32 {
            assert!(
                n.shard(s).server_ref().decided_len() >= 6,
                "node {} shard {s} lost its durable prefix",
                n.pid()
            );
        }
    }
    // After elections resume, the recovered state machines serve reads.
    run(&mut nodes, 300);
    for n in &nodes {
        for (i, k) in k0.iter().enumerate() {
            assert_eq!(n.read_local(k), Some(i as i64), "{k} after full restart");
        }
        for (i, k) in k1.iter().enumerate() {
            assert_eq!(n.read_local(k), Some(50 + i as i64));
        }
    }
    clean(tag, &ids);
}

/// Tiny substring scan (the WAL files here are a few KiB).
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}
