//! Property-based tests of the network simulator: the transport guarantees
//! the protocols rely on (§3 of the paper) must hold for arbitrary traffic.

use proptest::prelude::*;
use simulator::{Network, NetworkConfig, NodeId, SimTime};

#[derive(Debug, Clone)]
enum NetOp {
    Send { src: u8, dst: u8, bytes: u16 },
    Advance { by: u16 },
    Cut { a: u8, b: u8 },
    Heal { a: u8, b: u8 },
}

fn net_op() -> impl Strategy<Value = NetOp> {
    prop_oneof![
        (0u8..4, 0u8..4, 1u16..2048).prop_map(|(src, dst, bytes)| NetOp::Send { src, dst, bytes }),
        (1u16..500).prop_map(|by| NetOp::Advance { by }),
        (0u8..4, 0u8..4).prop_map(|(a, b)| NetOp::Cut { a, b }),
        (0u8..4, 0u8..4).prop_map(|(a, b)| NetOp::Heal { a, b }),
    ]
}

fn build(seed: u64, jitter: SimTime, nic: Option<u64>) -> Network<u64> {
    Network::new(NetworkConfig {
        nodes: (1..=4).collect(),
        default_latency_us: 150,
        jitter_us: jitter,
        nic_bytes_per_sec: nic,
        priority_bytes: 256,
        seed,
    })
}

/// Execute ops, collecting every delivery as `(src, dst, id, at)` in
/// delivery order (including a final drain of in-flight messages).
fn run(
    ops: &[NetOp],
    seed: u64,
    jitter: SimTime,
    nic: Option<u64>,
) -> Vec<(NodeId, NodeId, u64, SimTime)> {
    let mut net = build(seed, jitter, nic);
    let mut next_id = 0u64;
    let mut out = Vec::new();
    let collect = |net: &mut Network<u64>, upto: SimTime, out: &mut Vec<_>| {
        while let Some(d) = net.pop_next_before(upto) {
            out.push((d.src, d.dst, d.msg, d.at));
        }
    };
    for op in ops {
        match op {
            NetOp::Send { src, dst, bytes } => {
                net.send(
                    *src as NodeId + 1,
                    *dst as NodeId + 1,
                    *bytes as usize,
                    next_id,
                );
                next_id += 1;
            }
            NetOp::Advance { by } => {
                let t = net.now() + *by as SimTime;
                collect(&mut net, t, &mut out);
                net.advance_to(t);
            }
            NetOp::Cut { a, b } => {
                net.links_mut()
                    .set_link(*a as NodeId + 1, *b as NodeId + 1, false);
            }
            NetOp::Heal { a, b } => {
                net.links_mut()
                    .set_link(*a as NodeId + 1, *b as NodeId + 1, true);
            }
        }
    }
    collect(&mut net, SimTime::MAX, &mut out);
    out
}

proptest! {
    /// Per-link FIFO: on every directed link, message ids are delivered in
    /// send order regardless of jitter, NIC queuing and partitions.
    #[test]
    fn per_link_fifo_holds(
        ops in prop::collection::vec(net_op(), 1..80),
        seed in 1u64..1000,
    ) {
        let deliveries = run(&ops, seed, 300, Some(1_000_000));
        let mut last_id: std::collections::HashMap<(NodeId, NodeId), u64> =
            std::collections::HashMap::new();
        for (src, dst, id, _) in deliveries {
            if let Some(prev) = last_id.insert((src, dst), id) {
                prop_assert!(
                    id > prev,
                    "link {src}->{dst} delivered {id} after {prev}"
                );
            }
        }
    }

    /// Delivery timestamps are globally non-decreasing (the event queue is
    /// a proper discrete-event scheduler).
    #[test]
    fn delivery_times_are_monotone(
        ops in prop::collection::vec(net_op(), 1..80),
        seed in 1u64..1000,
    ) {
        let deliveries = run(&ops, seed, 300, None);
        let mut last = 0;
        for (_, _, _, at) in deliveries {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// Determinism: identical seeds and op sequences produce identical
    /// delivery schedules; different seeds may differ (with jitter).
    #[test]
    fn same_seed_same_schedule(
        ops in prop::collection::vec(net_op(), 1..60),
        seed in 1u64..1000,
    ) {
        let a = run(&ops, seed, 500, Some(2_000_000));
        let b = run(&ops, seed, 500, Some(2_000_000));
        prop_assert_eq!(a, b);
    }

    /// Conservation: every sent message is either delivered exactly once or
    /// dropped (counted), never duplicated or invented.
    #[test]
    fn messages_conserved(
        ops in prop::collection::vec(net_op(), 1..80),
        seed in 1u64..1000,
    ) {
        let deliveries = run(&ops, seed, 0, None);
        let sent = ops
            .iter()
            .filter(|o| matches!(o, NetOp::Send { .. }))
            .count() as u64;
        let mut seen = std::collections::HashSet::new();
        for (_, _, id, _) in &deliveries {
            prop_assert!(seen.insert(*id), "duplicate delivery of {id}");
            prop_assert!(*id < sent, "invented message {id}");
        }
    }
}
