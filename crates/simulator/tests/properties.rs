//! Randomized property tests of the network simulator: the transport
//! guarantees the protocols rely on (§3 of the paper) must hold for
//! arbitrary traffic. Schedules are generated from fixed seeds with the
//! in-tree PRNG, so failures reproduce deterministically.

use simulator::{Network, NetworkConfig, NodeId, Rng, SimTime};

#[derive(Debug, Clone)]
enum NetOp {
    Send { src: u8, dst: u8, bytes: u16 },
    Advance { by: u16 },
    Cut { a: u8, b: u8 },
    Heal { a: u8, b: u8 },
}

fn gen_op(rng: &mut Rng) -> NetOp {
    match rng.below(4) {
        0 => NetOp::Send {
            src: rng.below(4) as u8,
            dst: rng.below(4) as u8,
            bytes: rng.range_inclusive(1, 2047) as u16,
        },
        1 => NetOp::Advance {
            by: rng.range_inclusive(1, 499) as u16,
        },
        2 => NetOp::Cut {
            a: rng.below(4) as u8,
            b: rng.below(4) as u8,
        },
        _ => NetOp::Heal {
            a: rng.below(4) as u8,
            b: rng.below(4) as u8,
        },
    }
}

fn gen_ops(seed: u64, max_len: u64) -> (Vec<NetOp>, u64) {
    let mut rng = Rng::seed_from_u64(seed);
    let len = rng.range_inclusive(1, max_len);
    let ops = (0..len).map(|_| gen_op(&mut rng)).collect();
    // A derived seed for the network under test.
    (ops, rng.range_inclusive(1, 999))
}

fn build(seed: u64, jitter: SimTime, nic: Option<u64>) -> Network<u64> {
    Network::new(NetworkConfig {
        nodes: (1..=4).collect(),
        default_latency_us: 150,
        jitter_us: jitter,
        nic_bytes_per_sec: nic,
        priority_bytes: 256,
        seed,
    })
}

/// Execute ops, collecting every delivery as `(src, dst, id, at)` in
/// delivery order (including a final drain of in-flight messages).
fn run(
    ops: &[NetOp],
    seed: u64,
    jitter: SimTime,
    nic: Option<u64>,
) -> Vec<(NodeId, NodeId, u64, SimTime)> {
    let mut net = build(seed, jitter, nic);
    let mut next_id = 0u64;
    let mut out = Vec::new();
    let collect = |net: &mut Network<u64>, upto: SimTime, out: &mut Vec<_>| {
        while let Some(d) = net.pop_next_before(upto) {
            out.push((d.src, d.dst, d.msg, d.at));
        }
    };
    for op in ops {
        match op {
            NetOp::Send { src, dst, bytes } => {
                net.send(
                    *src as NodeId + 1,
                    *dst as NodeId + 1,
                    *bytes as usize,
                    next_id,
                );
                next_id += 1;
            }
            NetOp::Advance { by } => {
                let t = net.now() + *by as SimTime;
                collect(&mut net, t, &mut out);
                net.advance_to(t);
            }
            NetOp::Cut { a, b } => {
                net.links_mut()
                    .set_link(*a as NodeId + 1, *b as NodeId + 1, false);
            }
            NetOp::Heal { a, b } => {
                net.links_mut()
                    .set_link(*a as NodeId + 1, *b as NodeId + 1, true);
            }
        }
    }
    collect(&mut net, SimTime::MAX, &mut out);
    out
}

/// Per-link FIFO: on every directed link, message ids are delivered in
/// send order regardless of jitter, NIC queuing and partitions.
#[test]
fn per_link_fifo_holds() {
    for case in 0..96u64 {
        let (ops, seed) = gen_ops(0xF1F0 + case, 80);
        let deliveries = run(&ops, seed, 300, Some(1_000_000));
        let mut last_id: std::collections::HashMap<(NodeId, NodeId), u64> =
            std::collections::HashMap::new();
        for (src, dst, id, _) in deliveries {
            if let Some(prev) = last_id.insert((src, dst), id) {
                assert!(id > prev, "link {src}->{dst} delivered {id} after {prev}");
            }
        }
    }
}

/// Delivery timestamps are globally non-decreasing (the event queue is
/// a proper discrete-event scheduler).
#[test]
fn delivery_times_are_monotone() {
    for case in 0..96u64 {
        let (ops, seed) = gen_ops(0x2041 + case, 80);
        let deliveries = run(&ops, seed, 300, None);
        let mut last = 0;
        for (_, _, _, at) in deliveries {
            assert!(at >= last);
            last = at;
        }
    }
}

/// Determinism: identical seeds and op sequences produce identical
/// delivery schedules; different seeds may differ (with jitter).
#[test]
fn same_seed_same_schedule() {
    for case in 0..64u64 {
        let (ops, seed) = gen_ops(0xDE7 + case, 60);
        let a = run(&ops, seed, 500, Some(2_000_000));
        let b = run(&ops, seed, 500, Some(2_000_000));
        assert_eq!(a, b);
    }
}

/// Conservation: every sent message is either delivered exactly once or
/// dropped (counted), never duplicated or invented.
#[test]
fn messages_conserved() {
    for case in 0..96u64 {
        let (ops, seed) = gen_ops(0xC045 + case, 80);
        let deliveries = run(&ops, seed, 0, None);
        let sent = ops
            .iter()
            .filter(|o| matches!(o, NetOp::Send { .. }))
            .count() as u64;
        let mut seen = std::collections::HashSet::new();
        for (_, _, id, _) in &deliveries {
            assert!(seen.insert(*id), "duplicate delivery of {id}");
            assert!(*id < sent, "invented message {id}");
        }
    }
}
