//! Transfer statistics and small statistical helpers for reporting.
//!
//! The paper reports throughput means with 95% confidence intervals using
//! the *t*-distribution (Figs. 7–9) and per-node outgoing IO over 5-second
//! windows (§7.3). [`NetStats`] provides the raw byte accounting;
//! [`WindowSeries`] buckets a counter into fixed windows; [`mean_and_ci95`]
//! computes the interval.

use crate::{NodeId, SimTime};
use std::collections::HashMap;

/// Byte and message accounting for a [`crate::Network`].
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    sent_bytes: HashMap<NodeId, u64>,
    sent_msgs: HashMap<NodeId, u64>,
    delivered_msgs: u64,
    dropped_msgs: u64,
    /// (node, window-aligned timestamps) -> bytes, filled lazily by callers
    /// sampling `sent_bytes`; kept here so windows survive network reuse.
    io_series: HashMap<NodeId, WindowSeries>,
    io_window: SimTime,
}

impl NetStats {
    pub(crate) fn record_send(&mut self, src: NodeId, _dst: NodeId, bytes: usize, now: SimTime) {
        *self.sent_bytes.entry(src).or_insert(0) += bytes as u64;
        *self.sent_msgs.entry(src).or_insert(0) += 1;
        if self.io_window > 0 {
            self.io_series
                .entry(src)
                .or_insert_with(|| WindowSeries::new(self.io_window))
                .add(now, bytes as u64);
        }
    }

    pub(crate) fn record_deliver(&mut self, _src: NodeId, _dst: NodeId, _bytes: usize) {
        self.delivered_msgs += 1;
    }

    pub(crate) fn record_drop(&mut self, _src: NodeId, _dst: NodeId) {
        self.dropped_msgs += 1;
    }

    /// Enable per-node outgoing-IO windowing with the given window length.
    /// Must be called before traffic of interest is sent.
    pub fn enable_io_windows(&mut self, window: SimTime) {
        self.io_window = window;
    }

    /// Total bytes sent by `node` since simulation start.
    pub fn bytes_sent(&self, node: NodeId) -> u64 {
        self.sent_bytes.get(&node).copied().unwrap_or(0)
    }

    /// Total messages sent by `node`.
    pub fn msgs_sent(&self, node: NodeId) -> u64 {
        self.sent_msgs.get(&node).copied().unwrap_or(0)
    }

    /// Total messages delivered across all links.
    pub fn delivered(&self) -> u64 {
        self.delivered_msgs
    }

    /// Total messages dropped (down links, loss, crashes).
    pub fn dropped(&self) -> u64 {
        self.dropped_msgs
    }

    /// Peak outgoing bytes of `node` over any single IO window (Fig. 9's
    /// "peak IO over a 5 s window"). Zero when windowing is disabled.
    pub fn peak_window_bytes(&self, node: NodeId) -> u64 {
        self.io_series
            .get(&node)
            .map(|s| s.values().iter().copied().max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// The full windowed IO series of `node`.
    pub fn io_series(&self, node: NodeId) -> Option<&WindowSeries> {
        self.io_series.get(&node)
    }
}

/// A counter bucketed into fixed-length windows of simulated time.
#[derive(Debug, Clone)]
pub struct WindowSeries {
    window: SimTime,
    values: Vec<u64>,
}

impl WindowSeries {
    /// Create a series with the given window length (must be non-zero).
    pub fn new(window: SimTime) -> Self {
        assert!(window > 0, "window must be non-zero");
        WindowSeries {
            window,
            values: Vec::new(),
        }
    }

    /// Add `amount` at time `t`.
    pub fn add(&mut self, t: SimTime, amount: u64) {
        let idx = (t / self.window) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0);
        }
        self.values[idx] += amount;
    }

    /// Window length.
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// The per-window totals, ordered by time. Trailing windows with no
    /// samples are absent.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Value of the window containing `t` (0 if never written).
    pub fn at(&self, t: SimTime) -> u64 {
        self.values
            .get((t / self.window) as usize)
            .copied()
            .unwrap_or(0)
    }
}

/// Mean plus half-width of a 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub ci95: f64,
    pub n: usize,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.ci95)
    }
}

/// Two-sided 97.5% quantiles of Student's t-distribution for n-1 degrees of
/// freedom, n = 2..=30. The paper repeats each experiment 10 times; we index
/// by sample count.
const T_975: [f64; 29] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045,
];

/// Mean and 95% confidence half-width of `samples` using the
/// *t*-distribution (as the paper's error bars do). With fewer than two
/// samples the interval is zero.
pub fn mean_and_ci95(samples: &[f64]) -> Summary {
    let n = samples.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            ci95: 0.0,
            n,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return Summary { mean, ci95: 0.0, n };
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    let se = (var / n as f64).sqrt();
    let t = if n - 2 < T_975.len() {
        T_975[n - 2]
    } else {
        1.96 // normal approximation for large n
    };
    Summary {
        mean,
        ci95: t * se,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_series_buckets_by_time() {
        let mut s = WindowSeries::new(5_000_000); // 5 s windows
        s.add(1_000_000, 10);
        s.add(4_999_999, 5);
        s.add(5_000_000, 7);
        assert_eq!(s.values(), &[15, 7]);
        assert_eq!(s.at(2_000_000), 15);
        assert_eq!(s.at(9_000_000), 7);
        assert_eq!(s.at(50_000_000), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn window_series_rejects_zero_window() {
        let _ = WindowSeries::new(0);
    }

    #[test]
    fn ci_of_constant_samples_is_zero() {
        let s = mean_and_ci95(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn ci_matches_hand_computed_value() {
        // samples 1..=10: mean 5.5, sd ~3.0277, se ~0.9574, t(9)=2.262
        let samples: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let s = mean_and_ci95(&samples);
        assert!((s.mean - 5.5).abs() < 1e-9);
        assert!((s.ci95 - 2.262 * 0.957_427).abs() < 1e-3, "got {}", s.ci95);
    }

    #[test]
    fn ci_degenerate_inputs() {
        assert_eq!(mean_and_ci95(&[]).mean, 0.0);
        let one = mean_and_ci95(&[3.0]);
        assert_eq!(one.mean, 3.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn large_n_uses_normal_approximation() {
        let samples: Vec<f64> = (0..100).map(|x| (x % 10) as f64).collect();
        let s = mean_and_ci95(&samples);
        assert_eq!(s.n, 100);
        assert!(s.ci95 > 0.0);
    }
}
