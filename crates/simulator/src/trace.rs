//! Lightweight, allocation-bounded event tracing.
//!
//! Experiments over simulated minutes generate millions of events; a trace
//! that stores everything would dominate memory. [`Trace`] keeps a bounded
//! ring of the most recent entries, which is what you want when a test
//! assertion fails: the tail of history leading up to the failure.

use crate::SimTime;
use std::collections::VecDeque;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    pub at: SimTime,
    pub what: String,
}

/// A bounded ring buffer of trace entries.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    total: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` recent entries.
    pub fn new(capacity: usize) -> Self {
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            total: 0,
        }
    }

    /// A disabled trace: `record` becomes a no-op. Useful as a default.
    pub fn disabled() -> Self {
        let mut t = Trace::new(0);
        t.enabled = false;
        t
    }

    /// Record an event. The closure is only evaluated when tracing is
    /// enabled, so callers can format lazily.
    pub fn record(&mut self, at: SimTime, what: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { at, what: what() });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Total number of events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Render the retained tail as a multi-line string for test failures.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("[{:>12}us] {}\n", e.at, e.what));
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_only_the_tail() {
        let mut t = Trace::new(3);
        for i in 0..10u64 {
            t.record(i, || format!("e{i}"));
        }
        let got: Vec<_> = t.entries().map(|e| e.what.clone()).collect();
        assert_eq!(got, vec!["e7", "e8", "e9"]);
        assert_eq!(t.total_recorded(), 10);
    }

    #[test]
    fn disabled_trace_skips_formatting() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.record(0, || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert_eq!(t.total_recorded(), 0);
    }

    #[test]
    fn dump_is_ordered_and_timestamped() {
        let mut t = Trace::new(8);
        t.record(5, || "first".into());
        t.record(9, || "second".into());
        let d = t.dump();
        let first = d.find("first").unwrap();
        let second = d.find("second").unwrap();
        assert!(first < second);
        assert!(d.contains("5us]"));
    }
}
