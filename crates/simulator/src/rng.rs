//! Small, seedable, dependency-free PRNG for deterministic simulation.
//!
//! The simulator (and the Raft baseline's randomized election timers) need
//! reproducible pseudo-randomness: same seed, same run. This module provides
//! a xoshiro256++ generator seeded through SplitMix64 — the construction
//! recommended by the xoshiro authors for expanding a 64-bit seed into a
//! full 256-bit state. Both algorithms are public domain.
//!
//! This replaces the external `rand` crate so the workspace builds with no
//! network access. It is a *statistical* PRNG, not a cryptographic one,
//! which is exactly what a discrete-event simulator wants: fast, tiny, and
//! deterministic across platforms and toolchain versions (unlike `StdRng`,
//! whose algorithm is explicitly unstable across `rand` versions).

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used both as the seeding function for [`Rng`] and as a standalone cheap
/// mixer when a single derived value is needed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound = 0` returns 0.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform (no modulo bias) and cheap for the common case.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform `usize` in `[0, bound)`; `bound = 0` returns 0.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && (p >= 1.0 || self.next_f64() < p)
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below_usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut s = 1234567u64;
        let first = splitmix64(&mut s);
        let second = splitmix64(&mut s);
        assert_ne!(first, second);
        // Self-consistency: re-seeding reproduces the stream.
        let mut s2 = 1234567u64;
        assert_eq!(splitmix64(&mut s2), first);
        assert_eq!(splitmix64(&mut s2), second);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn below_respects_bound_and_hits_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..100 {
            let v = rng.range_inclusive(5, 7);
            assert!((5..=7).contains(&v));
        }
        assert_eq!(rng.range_inclusive(3, 3), 3);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
    }

    #[test]
    fn rough_uniformity_of_f64() {
        let mut rng = Rng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
