//! Deterministic discrete-event network simulator.
//!
//! This crate is the testbed substrate for the Omni-Paxos reproduction. The
//! paper evaluated the protocols on Google Cloud VMs connected over TCP; we
//! substitute a simulated network that models the properties the protocols
//! and experiments actually depend on:
//!
//! * **Session-based FIFO perfect links** (§3 of the paper): messages on a
//!   live link are delivered in order and are not duplicated or invented.
//! * **Partial network partitions**: every *directed* link can be cut and
//!   healed independently, which is exactly the failure model of §2
//!   (quorum-loss, constrained-election and chained scenarios).
//! * **Latency**: a per-link one-way delay, so both the LAN (RTT 0.2 ms) and
//!   WAN (RTT 105/145 ms) settings of §7.1 can be configured.
//! * **NIC bandwidth**: outgoing bytes are serialized through a per-node
//!   rate-limited NIC. This is what makes the leader a bottleneck during
//!   Raft's leader-driven log migration in the §7.3 reconfiguration
//!   experiments.
//!
//! The simulator is single-threaded and fully deterministic: given the same
//! seed and the same sequence of API calls it produces the same event
//! ordering, which makes every experiment reproducible and every test stable.
//!
//! # Example
//!
//! ```
//! use simulator::{Network, NetworkConfig};
//!
//! let mut net: Network<&'static str> = Network::new(NetworkConfig {
//!     nodes: vec![1, 2],
//!     default_latency_us: 100,
//!     ..Default::default()
//! });
//! net.send(1, 2, 8, "hello");
//! let delivery = net.pop_next_before(1_000_000).expect("delivered");
//! assert_eq!(delivery.dst, 2);
//! assert_eq!(delivery.msg, "hello");
//! ```

pub mod link;
pub mod network;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use link::{LinkConfig, LinkTable};
pub use network::{Delivery, Network, NetworkConfig};
pub use rng::Rng;
pub use stats::{mean_and_ci95, Summary, WindowSeries};
pub use time::{ms, sec, us, SimTime};

/// Identifier of a simulated node (server or client).
pub type NodeId = u64;
