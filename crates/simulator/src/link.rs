//! Directed link state: connectivity, latency and loss.
//!
//! Partial network partitions (§2 of the paper) are link-level failures:
//! two servers lose their mutual link while both remain reachable through a
//! third. The [`LinkTable`] therefore tracks every *directed* pair
//! independently, so experiments can express full-duplex cuts (both
//! directions), half-duplex cuts (§8 discussion), node isolation and
//! arbitrary partition shapes such as the chained scenario.

use crate::{NodeId, SimTime};
use std::collections::{HashMap, HashSet};

/// Static configuration of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay in microseconds.
    pub latency_us: SimTime,
    /// Probability in `[0, 1]` that a message on a *live* link is dropped.
    /// The paper assumes perfect links during stable periods; loss is only
    /// used by fault-injection tests.
    pub loss: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_us: 100, // 0.2 ms RTT: the paper's LAN setting
            loss: 0.0,
        }
    }
}

/// Tracks connectivity, latency and session epochs for every directed link.
///
/// Links start *up*. Cutting and healing a link bumps its *session epoch*,
/// which models a TCP session drop: the harness uses epoch changes to tell
/// protocols to run their reconnect logic (`PrepareReq` in Sequence Paxos,
/// §4.1.3).
#[derive(Debug, Default, Clone)]
pub struct LinkTable {
    default: LinkConfig,
    overrides: HashMap<(NodeId, NodeId), LinkConfig>,
    /// Directed links that are currently cut.
    down: HashSet<(NodeId, NodeId)>,
    /// Incremented every time a directed link transitions down -> up.
    epochs: HashMap<(NodeId, NodeId), u64>,
}

impl LinkTable {
    /// Create a table where every link uses `default`.
    pub fn new(default: LinkConfig) -> Self {
        LinkTable {
            default,
            ..Default::default()
        }
    }

    /// Effective configuration of the directed link `src -> dst`.
    pub fn config(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default)
    }

    /// Override the configuration of the directed link `src -> dst`.
    pub fn set_config(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        self.overrides.insert((src, dst), cfg);
    }

    /// Override both directions between `a` and `b` (symmetric latency).
    pub fn set_config_sym(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.set_config(a, b, cfg);
        self.set_config(b, a, cfg);
    }

    /// Is the directed link `src -> dst` currently up? A node can always
    /// talk to itself.
    pub fn is_up(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || !self.down.contains(&(src, dst))
    }

    /// Cut or heal the *directed* link `src -> dst`. Healing a previously
    /// cut link bumps its session epoch. Returns `true` if the state changed.
    pub fn set_directed(&mut self, src: NodeId, dst: NodeId, up: bool) -> bool {
        if up {
            let changed = self.down.remove(&(src, dst));
            if changed {
                *self.epochs.entry((src, dst)).or_insert(0) += 1;
            }
            changed
        } else {
            self.down.insert((src, dst))
        }
    }

    /// Cut or heal both directions between `a` and `b`.
    /// Returns `true` if either direction changed state.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, up: bool) -> bool {
        let c1 = self.set_directed(a, b, up);
        let c2 = self.set_directed(b, a, up);
        c1 || c2
    }

    /// Cut every link of `node` except those to the nodes in `keep`
    /// (bidirectionally). Used to build the partial-partition scenarios.
    pub fn isolate_except(&mut self, node: NodeId, all: &[NodeId], keep: &[NodeId]) {
        for &other in all {
            if other == node {
                continue;
            }
            let up = keep.contains(&other);
            self.set_link(node, other, up);
        }
    }

    /// Heal every link among `all` nodes.
    pub fn heal_all(&mut self, all: &[NodeId]) {
        for &a in all {
            for &b in all {
                if a != b {
                    self.set_directed(a, b, true);
                }
            }
        }
    }

    /// The current session epoch of `src -> dst`. Starts at 0; bumps on every
    /// heal.
    pub fn epoch(&self, src: NodeId, dst: NodeId) -> u64 {
        self.epochs.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Number of directed links currently down.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_start_up_and_self_link_is_always_up() {
        let t = LinkTable::default();
        assert!(t.is_up(1, 2));
        assert!(t.is_up(7, 7));
    }

    #[test]
    fn directed_cut_is_one_way() {
        let mut t = LinkTable::default();
        t.set_directed(1, 2, false);
        assert!(!t.is_up(1, 2));
        assert!(t.is_up(2, 1));
    }

    #[test]
    fn symmetric_cut_and_heal() {
        let mut t = LinkTable::default();
        assert!(t.set_link(1, 2, false));
        assert!(!t.is_up(1, 2));
        assert!(!t.is_up(2, 1));
        assert!(t.set_link(1, 2, true));
        assert!(t.is_up(1, 2) && t.is_up(2, 1));
    }

    #[test]
    fn heal_bumps_session_epoch_once_per_transition() {
        let mut t = LinkTable::default();
        assert_eq!(t.epoch(1, 2), 0);
        t.set_link(1, 2, false);
        t.set_link(1, 2, true);
        assert_eq!(t.epoch(1, 2), 1);
        // Healing an already-up link is a no-op.
        t.set_link(1, 2, true);
        assert_eq!(t.epoch(1, 2), 1);
        t.set_link(1, 2, false);
        t.set_link(1, 2, true);
        assert_eq!(t.epoch(1, 2), 2);
    }

    #[test]
    fn isolate_except_builds_quorum_loss_shape() {
        // Five servers; after the cut, everyone is connected to 1 only:
        // the quorum-loss scenario of Fig. 1a with A = 1.
        let all = [1, 2, 3, 4, 5];
        let mut t = LinkTable::default();
        for &n in &all[1..] {
            t.isolate_except(n, &all, &[1]);
        }
        for &n in &all[1..] {
            assert!(t.is_up(1, n) && t.is_up(n, 1), "hub link to {n} must stay");
            for &m in &all[1..] {
                if m != n {
                    assert!(!t.is_up(n, m), "{n}->{m} must be cut");
                }
            }
        }
    }

    #[test]
    fn heal_all_restores_full_connectivity() {
        let all = [1, 2, 3];
        let mut t = LinkTable::default();
        t.set_link(1, 2, false);
        t.set_link(2, 3, false);
        t.heal_all(&all);
        for &a in &all {
            for &b in &all {
                assert!(t.is_up(a, b));
            }
        }
    }

    #[test]
    fn per_link_config_overrides_default() {
        let mut t = LinkTable::new(LinkConfig {
            latency_us: 100,
            loss: 0.0,
        });
        t.set_config_sym(
            1,
            2,
            LinkConfig {
                latency_us: 52_500, // 105 ms RTT: the paper's WAN eu-west1 setting
                loss: 0.0,
            },
        );
        assert_eq!(t.config(1, 2).latency_us, 52_500);
        assert_eq!(t.config(2, 1).latency_us, 52_500);
        assert_eq!(t.config(1, 3).latency_us, 100);
    }
}
