//! The discrete-event message transport.
//!
//! [`Network`] owns an event queue of in-flight messages. Senders call
//! [`Network::send`]; the harness repeatedly pops deliveries in timestamp
//! order with [`Network::pop_next_before`], interleaving protocol timer ticks
//! at fixed intervals. Determinism is guaranteed by (time, sequence-number)
//! ordering: ties in delivery time are broken by send order.
//!
//! Two transport properties matter for fidelity to the paper:
//!
//! * **Per-link FIFO** (§3: session-based FIFO perfect links). Delivery
//!   times are forced to be strictly monotonic per directed link, so a later
//!   message can never overtake an earlier one even with jitter.
//! * **NIC serialization** (§7.3). Every node drains its outgoing bytes
//!   through a rate-limited NIC; a 120 MB log migration from a single leader
//!   therefore takes real (simulated) time and delays that leader's protocol
//!   messages — the mechanism behind Raft's reconfiguration throughput
//!   collapse in Fig. 9.

use crate::link::{LinkConfig, LinkTable};
use crate::rng::Rng;
use crate::stats::NetStats;
use crate::{NodeId, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration for a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// All node ids that may send or receive (servers and clients).
    pub nodes: Vec<NodeId>,
    /// Default one-way latency for every link, in microseconds.
    pub default_latency_us: SimTime,
    /// Uniform jitter added to each delivery, in microseconds (0 = none).
    /// Jitter never violates per-link FIFO ordering.
    pub jitter_us: SimTime,
    /// Outgoing NIC bandwidth per node in bytes per second. `None` models an
    /// unconstrained NIC (appropriate for small-message protocol traffic).
    pub nic_bytes_per_sec: Option<u64>,
    /// Messages of at most this many bytes bypass the NIC queue (their
    /// serialization time is negligible). Real NICs transmit packet by
    /// packet, so a heartbeat never waits behind a whole 10 MB bulk
    /// transfer — it interleaves after at most one MTU. Without this,
    /// control traffic starves behind log-migration bursts in ways TCP
    /// would not allow.
    pub priority_bytes: usize,
    /// RNG seed; two networks with equal seeds and call sequences behave
    /// identically.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: Vec::new(),
            default_latency_us: 100,
            jitter_us: 0,
            nic_bytes_per_sec: None,
            priority_bytes: 256,
            seed: 0xC0FFEE,
        }
    }
}

/// A message handed back to the harness for delivery to `dst`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<M> {
    pub at: SimTime,
    pub src: NodeId,
    pub dst: NodeId,
    pub msg: M,
    pub bytes: usize,
}

#[derive(Debug)]
struct Queued<M> {
    at: SimTime,
    seq: u64,
    src: NodeId,
    dst: NodeId,
    msg: M,
    bytes: usize,
}

// Order by (time, seq) only; seq is unique so this is a total order and we
// never need to compare `M`.
impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic simulated network. See the [module docs](self).
#[derive(Debug)]
pub struct Network<M> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Queued<M>>>,
    seq: u64,
    links: LinkTable,
    jitter_us: SimTime,
    nic_rate: Option<u64>,
    priority_bytes: usize,
    nic_busy_until: HashMap<NodeId, SimTime>,
    last_arrival: HashMap<(NodeId, NodeId), SimTime>,
    rng: Rng,
    stats: NetStats,
}

impl<M> Network<M> {
    /// Create a network; all links between `config.nodes` start up.
    pub fn new(config: NetworkConfig) -> Self {
        let links = LinkTable::new(LinkConfig {
            latency_us: config.default_latency_us,
            loss: 0.0,
        });
        Network {
            now: 0,
            queue: BinaryHeap::new(),
            seq: 0,
            links,
            jitter_us: config.jitter_us,
            nic_rate: config.nic_bytes_per_sec,
            priority_bytes: config.priority_bytes,
            nic_busy_until: HashMap::new(),
            last_arrival: HashMap::new(),
            rng: Rng::seed_from_u64(config.seed),
            stats: NetStats::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock without delivering anything. Panics if `t` would
    /// move time backwards — that indicates a harness bug.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "time must be monotonic: {t} < {}", self.now);
        self.now = t;
    }

    /// Mutable access to the link table, for partition scheduling.
    pub fn links_mut(&mut self) -> &mut LinkTable {
        &mut self.links
    }

    /// Shared access to the link table.
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// Transfer statistics (bytes/messages sent per node, drops).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics access (e.g. to enable IO windowing before the
    /// traffic of interest).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Enqueue `msg` of `bytes` on the directed link `src -> dst`.
    ///
    /// If the link is down the message is silently dropped (and counted),
    /// which models the systematic loss during a partition (§3). Bytes are
    /// charged to `src` *before* the link check — a partitioned sender still
    /// burns its NIC budget, like a real TCP stack retransmitting into a
    /// black hole, and more importantly the IO accounting of Fig. 9 counts
    /// attempted leader output.
    pub fn send(&mut self, src: NodeId, dst: NodeId, bytes: usize, msg: M) {
        if !self.links.is_up(src, dst) {
            self.stats.record_send(src, dst, bytes, self.now);
            self.stats.record_drop(src, dst);
            return;
        }
        let cfg = self.links.config(src, dst);
        if cfg.loss > 0.0 && self.rng.next_f64() < cfg.loss {
            self.stats.record_send(src, dst, bytes, self.now);
            self.stats.record_drop(src, dst);
            return;
        }
        // NIC serialization: outgoing bytes queue behind earlier sends.
        // Small control messages (heartbeats, votes, acks) interleave at
        // packet granularity and effectively bypass the queue.
        let depart = match self.nic_rate {
            Some(rate) if rate > 0 && bytes > self.priority_bytes => {
                let busy = self.nic_busy_until.entry(src).or_insert(0);
                let start = (*busy).max(self.now);
                let ser_us = (bytes as u128 * 1_000_000 / rate as u128) as SimTime;
                *busy = start + ser_us;
                *busy
            }
            _ => self.now,
        };
        // IO accounting happens at *departure*: peak-IO windows (§7.3)
        // measure what actually left the NIC in a window, not what was
        // enqueued in a burst.
        self.stats.record_send(src, dst, bytes, depart);
        let mut arrival = depart + cfg.latency_us;
        if self.jitter_us > 0 {
            arrival += self.rng.range_inclusive(0, self.jitter_us);
        }
        // Enforce per-link FIFO: never deliver before an earlier message on
        // the same directed link.
        let last = self.last_arrival.entry((src, dst)).or_insert(0);
        arrival = arrival.max(*last + 1);
        *last = arrival;
        self.seq += 1;
        self.queue.push(Reverse(Queued {
            at: arrival,
            seq: self.seq,
            src,
            dst,
            msg,
            bytes,
        }));
    }

    /// Timestamp of the earliest queued delivery, if any.
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(q)| q.at)
    }

    /// Pop the earliest delivery with timestamp `<= deadline`, advancing the
    /// clock to its timestamp. Returns `None` when nothing is due, leaving
    /// the clock unchanged.
    ///
    /// A message whose link was cut *after* it was sent is still delivered:
    /// it was already "on the wire". Cut-in-flight semantics can matter for
    /// TCP realism but none of the paper's scenarios depend on dropping
    /// in-flight traffic, and keeping it makes the model simpler to reason
    /// about.
    pub fn pop_next_before(&mut self, deadline: SimTime) -> Option<Delivery<M>> {
        match self.queue.peek() {
            Some(Reverse(q)) if q.at <= deadline => {
                let Reverse(q) = self.queue.pop().expect("peeked");
                self.now = self.now.max(q.at);
                self.stats.record_deliver(q.src, q.dst, q.bytes);
                Some(Delivery {
                    at: q.at,
                    src: q.src,
                    dst: q.dst,
                    msg: q.msg,
                    bytes: q.bytes,
                })
            }
            _ => None,
        }
    }

    /// Number of in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Drop every queued message destined to *or* originating from `node`.
    /// Models a crash: the process's sockets vanish along with it.
    pub fn drop_in_flight_for(&mut self, node: NodeId) {
        let drained = std::mem::take(&mut self.queue);
        for Reverse(q) in drained {
            if q.src == node || q.dst == node {
                self.stats.record_drop(q.src, q.dst);
            } else {
                self.queue.push(Reverse(q));
            }
        }
    }

    /// Drop every queued message between `a` and `b`, in both directions.
    /// Models a TCP session teardown on link failure: bytes on the wire of
    /// the broken connection are lost, not delivered after the heal. The
    /// chaos harness pairs this with a link cut for session-drop faults.
    pub fn drop_in_flight_between(&mut self, a: NodeId, b: NodeId) {
        let drained = std::mem::take(&mut self.queue);
        for Reverse(q) in drained {
            if (q.src == a && q.dst == b) || (q.src == b && q.dst == a) {
                self.stats.record_drop(q.src, q.dst);
            } else {
                self.queue.push(Reverse(q));
            }
        }
    }

    /// Change the uniform delivery jitter. Per-link FIFO stays enforced, so
    /// raising jitter mid-run reorders messages across links but never
    /// within one (the paper's session-based FIFO perfect link model, §3).
    pub fn set_jitter_us(&mut self, jitter_us: SimTime) {
        self.jitter_us = jitter_us;
    }

    /// Current uniform delivery jitter in microseconds.
    pub fn jitter_us(&self) -> SimTime {
        self.jitter_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(latency: SimTime) -> Network<u32> {
        Network::new(NetworkConfig {
            nodes: vec![1, 2, 3],
            default_latency_us: latency,
            ..Default::default()
        })
    }

    #[test]
    fn delivers_in_timestamp_order() {
        let mut n = net(100);
        n.send(1, 2, 8, 10);
        n.advance_to(50);
        n.send(1, 3, 8, 20);
        let d1 = n.pop_next_before(u64::MAX).unwrap();
        let d2 = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!((d1.msg, d1.at), (10, 100));
        assert_eq!((d2.msg, d2.at), (20, 150));
        assert!(n.pop_next_before(u64::MAX).is_none());
    }

    #[test]
    fn respects_deadline() {
        let mut n = net(100);
        n.send(1, 2, 8, 1);
        assert!(n.pop_next_before(99).is_none());
        assert!(n.pop_next_before(100).is_some());
    }

    #[test]
    fn per_link_fifo_is_preserved_under_jitter() {
        let mut n: Network<u32> = Network::new(NetworkConfig {
            nodes: vec![1, 2],
            default_latency_us: 100,
            jitter_us: 1_000,
            seed: 7,
            ..Default::default()
        });
        for i in 0..100 {
            n.send(1, 2, 8, i);
        }
        let mut prev = None;
        while let Some(d) = n.pop_next_before(u64::MAX) {
            if let Some(p) = prev {
                assert!(d.msg > p, "FIFO violated: {} after {}", d.msg, p);
            }
            prev = Some(d.msg);
        }
        assert_eq!(prev, Some(99));
    }

    #[test]
    fn cut_link_drops_messages() {
        let mut n = net(100);
        n.links_mut().set_link(1, 2, false);
        n.send(1, 2, 8, 1);
        assert!(n.pop_next_before(u64::MAX).is_none());
        assert_eq!(n.stats().dropped(), 1);
        // Directed: 2 -> 1 also cut by set_link.
        n.send(2, 1, 8, 2);
        assert!(n.pop_next_before(u64::MAX).is_none());
    }

    #[test]
    fn directed_cut_only_affects_one_direction() {
        let mut n = net(100);
        n.links_mut().set_directed(1, 2, false);
        n.send(1, 2, 8, 1);
        n.send(2, 1, 8, 2);
        let d = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!(d.msg, 2);
        assert!(n.pop_next_before(u64::MAX).is_none());
    }

    #[test]
    fn nic_bandwidth_serializes_large_transfers() {
        // 1 MB/s NIC: a 1 MB message takes 1 simulated second to serialize.
        // A small control message to a *different* destination bypasses the
        // bulk queue (packet-level interleaving; see `priority_bytes`),
        // while a second bulk message queues behind the first.
        let mut n: Network<u32> = Network::new(NetworkConfig {
            nodes: vec![1, 2, 3],
            default_latency_us: 100,
            nic_bytes_per_sec: Some(1_000_000),
            ..Default::default()
        });
        n.send(1, 2, 1_000_000, 1);
        n.send(1, 3, 8, 2); // control: bypasses
        n.send(1, 3, 500_000, 3); // bulk: queues behind message 1
        let d = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!((d.msg, d.at), (2, 100), "control bypasses the bulk queue");
        let d1 = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!((d1.msg, d1.at), (1, 1_000_000 + 100));
        let d3 = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!(d3.msg, 3);
        assert_eq!(d3.at, 1_500_000 + 100, "bulk serialized after bulk");
    }

    #[test]
    fn priority_bypass_respects_per_link_fifo() {
        // On the SAME link, a later control message must still not overtake
        // earlier bulk (session FIFO).
        let mut n: Network<u32> = Network::new(NetworkConfig {
            nodes: vec![1, 2],
            default_latency_us: 100,
            nic_bytes_per_sec: Some(1_000_000),
            ..Default::default()
        });
        n.send(1, 2, 1_000_000, 1);
        n.send(1, 2, 8, 2);
        let d1 = n.pop_next_before(u64::MAX).unwrap();
        let d2 = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!(d1.msg, 1);
        assert_eq!(d2.msg, 2);
        assert!(d2.at > d1.at);
    }

    #[test]
    fn nic_budget_is_per_node() {
        let mut n: Network<u32> = Network::new(NetworkConfig {
            nodes: vec![1, 2, 3],
            default_latency_us: 100,
            nic_bytes_per_sec: Some(1_000_000),
            ..Default::default()
        });
        n.send(1, 3, 1_000_000, 1);
        n.send(2, 3, 8, 2); // different sender: not delayed
        let first = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!(first.msg, 2);
        assert!(first.at < 1_000);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut n: Network<u32> = Network::new(NetworkConfig {
                nodes: vec![1, 2],
                default_latency_us: 100,
                jitter_us: 500,
                seed,
                ..Default::default()
            });
            for i in 0..50 {
                n.send(1, 2, 8, i);
            }
            let mut times = Vec::new();
            while let Some(d) = n.pop_next_before(u64::MAX) {
                times.push(d.at);
            }
            times
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn drop_in_flight_for_crashed_node() {
        let mut n = net(100);
        n.send(1, 2, 8, 1);
        n.send(3, 2, 8, 2);
        n.send(2, 3, 8, 3);
        n.drop_in_flight_for(2);
        assert!(n.pop_next_before(u64::MAX).is_none());
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn drop_in_flight_between_is_pairwise_and_bidirectional() {
        let mut n = net(100);
        n.send(1, 2, 8, 1);
        n.send(2, 1, 8, 2);
        n.send(1, 3, 8, 3); // unrelated pair: survives
        n.drop_in_flight_between(1, 2);
        let d = n.pop_next_before(u64::MAX).unwrap();
        assert_eq!(d.msg, 3);
        assert!(n.pop_next_before(u64::MAX).is_none());
    }

    #[test]
    fn jitter_can_change_mid_run() {
        let mut n = net(100);
        n.set_jitter_us(1_000);
        assert_eq!(n.jitter_us(), 1_000);
        n.send(1, 2, 8, 1);
        let d = n.pop_next_before(u64::MAX).unwrap();
        assert!(d.at >= 100 && d.at <= 1_100);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn time_cannot_go_backwards() {
        let mut n = net(100);
        n.advance_to(1_000);
        n.advance_to(999);
    }
}
