//! Simulated-time representation and helpers.
//!
//! Time is a `u64` count of **microseconds** since the start of the
//! simulation. Microsecond resolution is fine enough to model sub-millisecond
//! LAN latencies (the paper's LAN RTT is 0.2 ms) while a `u64` still covers
//! ~584,000 years of simulated time, so overflow is not a practical concern.

/// A point in simulated time, in microseconds since simulation start.
pub type SimTime = u64;

/// Construct a [`SimTime`] duration from microseconds (identity, for symmetry).
#[inline]
pub const fn us(v: u64) -> SimTime {
    v
}

/// Construct a [`SimTime`] duration from milliseconds.
#[inline]
pub const fn ms(v: u64) -> SimTime {
    v * 1_000
}

/// Construct a [`SimTime`] duration from seconds.
#[inline]
pub const fn sec(v: u64) -> SimTime {
    v * 1_000_000
}

/// Convert a simulated time to whole milliseconds (truncating).
#[inline]
pub const fn as_ms(t: SimTime) -> u64 {
    t / 1_000
}

/// Convert a simulated time to seconds as a float (for reporting).
#[inline]
pub fn as_secs_f64(t: SimTime) -> f64 {
    t as f64 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_compose() {
        assert_eq!(us(250), 250);
        assert_eq!(ms(3), 3_000);
        assert_eq!(sec(2), 2_000_000);
        assert_eq!(ms(1) + us(500), 1_500);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(as_ms(ms(42)), 42);
        assert_eq!(as_ms(us(999)), 0);
        assert!((as_secs_f64(sec(5)) - 5.0).abs() < 1e-12);
    }
}
