//! # vr — Viewstamped Replication leader election for the reproduction
//!
//! The Omni-Paxos paper's VR comparator is "an implementation of VR's
//! leader election [Liskov & Cowling 2012] with Omni-Paxos' log
//! replication" (§7, *Protocols*). This crate does exactly that: the view
//! change protocol (`StartViewChange` / `DoViewChange` / `StartView`) with
//! round-robin view ownership drives a `omnipaxos::SequencePaxos` instance
//! by mapping view `v` to ballot `(n = v, pid = leader(v))`.
//!
//! The properties Table 1 attributes to VR are structural here:
//!
//! * **EQC** — a server only sends `DoViewChange` after it has received
//!   `StartViewChange` for the view from a majority, so the new leader must
//!   be elected by quorum-connected servers. This is what deadlocks VR in
//!   the quorum-loss and constrained-election scenarios (§7.2).
//! * **Leader-vote gossiping** — a server that learns of a higher view
//!   joins and re-broadcasts it, propagating the view change through
//!   intermediaries (the chained-scenario churn of §2c).
//! * **Pre-determined leader order** — `leader(v) = nodes[v mod n]`, which
//!   is why the chained scenario may need several view changes before the
//!   fully-connected middle server's turn comes up.

pub mod node;

pub use node::{VrConfig, VrMsg, VrNode, VrStatus};

pub use omnipaxos::NodeId;
