//! The VR node: view-change leader election driving Sequence Paxos.

use omnipaxos::ballot::Ballot;
use omnipaxos::messages::Message;
use omnipaxos::sequence_paxos::{SequencePaxos, SequencePaxosConfig};
use omnipaxos::storage::MemoryStorage;
use omnipaxos::util::{Entry, LogEntry};
use omnipaxos::NodeId;
use std::collections::HashSet;

/// View-change status (Liskov & Cowling 2012, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VrStatus {
    /// Following the leader of `view`.
    Normal,
    /// A view change towards `view` is in progress.
    ViewChange,
}

/// VR control messages plus the wrapped replication traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum VrMsg<T> {
    /// "I suspect the leader of the previous view; change to `view`."
    /// Re-broadcast by every receiver that joins (vote gossiping).
    StartViewChange { view: u64 },
    /// Vote sent to `leader(view)` once a majority of `StartViewChange`
    /// has been observed (the EQC requirement).
    DoViewChange { view: u64 },
    /// The new leader announces the view is operational.
    StartView { view: u64 },
    /// Leader liveness heartbeat.
    Ping { view: u64 },
    /// Sequence Paxos replication traffic.
    Paxos(Message<T>),
}

impl<T: Entry> VrMsg<T> {
    /// Approximate wire size in bytes (same model as the other crates).
    pub fn size_bytes(&self) -> usize {
        match self {
            VrMsg::Paxos(m) => m.size_bytes(),
            _ => 32,
        }
    }
}

/// Static configuration of a VR node.
#[derive(Debug, Clone)]
pub struct VrConfig {
    /// This server.
    pub pid: NodeId,
    /// All servers in a fixed, shared order — view ownership rotates over
    /// this list.
    pub nodes: Vec<NodeId>,
    /// Heartbeat period in ticks.
    pub ping_ticks: u64,
    /// Suspect the leader (or a stalled view change) after this many ticks.
    pub timeout_ticks: u64,
}

impl VrConfig {
    /// Defaults comparable to the other protocols' timing.
    pub fn with(pid: NodeId, nodes: Vec<NodeId>) -> Self {
        assert!(nodes.contains(&pid));
        VrConfig {
            pid,
            nodes,
            ping_ticks: 5,
            timeout_ticks: 20,
        }
    }
}

fn majority(n: usize) -> usize {
    n / 2 + 1
}

/// A VR replica: view-change election over Sequence Paxos replication.
pub struct VrNode<T: Entry> {
    config: VrConfig,
    view: u64,
    status: VrStatus,
    sp: SequencePaxos<T, MemoryStorage<T>>,
    /// Peers (incl. self) whose `StartViewChange{view}` we have seen.
    svc_acks: HashSet<NodeId>,
    /// `DoViewChange{view}` votes received (when we own `view`).
    dvc_votes: HashSet<NodeId>,
    sent_dvc: bool,
    ticks_since_leader: u64,
    ping_elapsed: u64,
    resend_elapsed: u64,
    /// Cursor for `poll_decided`.
    polled_idx: u64,
    outgoing: Vec<(NodeId, VrMsg<T>)>,
    view_changes: u64,
}

impl<T: Entry> VrNode<T> {
    pub fn new(config: VrConfig) -> Self {
        let sp_config = SequencePaxosConfig::with(1, config.pid, &config.nodes);
        let sp = SequencePaxos::new(sp_config, MemoryStorage::new());
        let mut node = VrNode {
            view: 0,
            status: VrStatus::ViewChange,
            sp,
            svc_acks: HashSet::new(),
            dvc_votes: HashSet::new(),
            sent_dvc: false,
            ticks_since_leader: 0,
            ping_elapsed: 0,
            resend_elapsed: 0,
            polled_idx: 0,
            outgoing: Vec::new(),
            view_changes: 0,
            config,
        };
        // Bootstrap: elect view 1 through the normal protocol.
        node.start_view_change(1);
        node
    }

    /// The pre-determined owner of `view` (round-robin).
    pub fn leader_of(&self, view: u64) -> NodeId {
        self.config.nodes[(view as usize) % self.config.nodes.len()]
    }

    pub fn pid(&self) -> NodeId {
        self.config.pid
    }

    pub fn view(&self) -> u64 {
        self.view
    }

    pub fn status(&self) -> VrStatus {
        self.status
    }

    /// Is this node the operational leader of the current view?
    pub fn is_leader(&self) -> bool {
        self.status == VrStatus::Normal && self.leader_of(self.view) == self.config.pid
    }

    /// Number of view changes this node has gone through.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    /// The full decided client-command log, in log order (stop-signs are
    /// skipped; VR never reconfigures here). External invariant checkers
    /// compare this against the history accumulated from
    /// [`VrNode::poll_decided`] to detect a silently rewritten prefix.
    pub fn decided_log(&self) -> Vec<T> {
        self.sp
            .read_decided(0)
            .into_iter()
            .filter_map(|e| match e {
                LogEntry::Normal(t) => Some(t),
                LogEntry::StopSign(_) => None,
            })
            .collect()
    }

    /// Newly decided client commands since the last call.
    pub fn poll_decided(&mut self) -> Vec<T> {
        let decided = self.sp.read_decided(self.polled_idx);
        self.polled_idx += decided.len() as u64;
        decided
            .into_iter()
            .filter_map(|e| match e {
                LogEntry::Normal(t) => Some(t),
                LogEntry::StopSign(_) => None,
            })
            .collect()
    }

    /// Propose a command (leader appends; followers forward via Sequence
    /// Paxos' built-in proposal forwarding).
    pub fn propose(&mut self, entry: T) -> bool {
        self.sp.append(entry).is_ok()
    }

    /// Advance logical time by one tick.
    pub fn tick(&mut self) {
        // Periodic retransmission sweep of the replication layer (lost
        // Prepare messages after link drops).
        self.resend_elapsed += 1;
        if self.resend_elapsed >= self.config.timeout_ticks * 2 {
            self.resend_elapsed = 0;
            self.sp.resend_timeout();
        }
        // Leader heartbeats.
        if self.is_leader() {
            self.ping_elapsed += 1;
            if self.ping_elapsed >= self.config.ping_ticks {
                self.ping_elapsed = 0;
                let view = self.view;
                for &peer in &self.config.nodes.clone() {
                    if peer != self.config.pid {
                        self.outgoing.push((peer, VrMsg::Ping { view }));
                    }
                }
            }
            return;
        }
        // Follower / view-change timeout.
        self.ticks_since_leader += 1;
        if self.ticks_since_leader >= self.config.timeout_ticks {
            self.start_view_change(self.view + 1);
        }
    }

    fn start_view_change(&mut self, view: u64) {
        self.view = view;
        self.status = VrStatus::ViewChange;
        self.view_changes += 1;
        self.svc_acks.clear();
        self.dvc_votes.clear();
        self.sent_dvc = false;
        self.ticks_since_leader = 0;
        self.svc_acks.insert(self.config.pid);
        for &peer in &self.config.nodes.clone() {
            if peer != self.config.pid {
                self.outgoing.push((peer, VrMsg::StartViewChange { view }));
            }
        }
        self.maybe_do_view_change();
    }

    /// EQC gate: only a server that saw a majority of `StartViewChange`
    /// may vote for the new leader.
    fn maybe_do_view_change(&mut self) {
        if self.sent_dvc
            || self.status != VrStatus::ViewChange
            || self.svc_acks.len() < majority(self.config.nodes.len())
        {
            return;
        }
        self.sent_dvc = true;
        let view = self.view;
        let leader = self.leader_of(view);
        if leader == self.config.pid {
            self.dvc_votes.insert(self.config.pid);
            self.maybe_become_leader();
        } else {
            self.outgoing.push((leader, VrMsg::DoViewChange { view }));
        }
    }

    fn maybe_become_leader(&mut self) {
        if self.status != VrStatus::ViewChange
            || self.leader_of(self.view) != self.config.pid
            || self.dvc_votes.len() < majority(self.config.nodes.len())
        {
            return;
        }
        self.status = VrStatus::Normal;
        self.ticks_since_leader = 0;
        let view = self.view;
        for &peer in &self.config.nodes.clone() {
            if peer != self.config.pid {
                self.outgoing.push((peer, VrMsg::StartView { view }));
            }
        }
        // Map the view onto a Sequence Paxos ballot and let its Prepare
        // phase synchronize the logs (the paper's construction).
        let ballot = Ballot::new(view, 0, self.config.pid);
        self.sp.handle_leader(ballot);
    }

    /// Feed one incoming message.
    pub fn handle(&mut self, from: NodeId, msg: VrMsg<T>) {
        match msg {
            VrMsg::StartViewChange { view } => {
                if view > self.view || (view == self.view && self.status == VrStatus::ViewChange) {
                    if view > self.view {
                        // Join and re-broadcast (gossip).
                        self.start_view_change(view);
                    }
                    self.svc_acks.insert(from);
                    self.maybe_do_view_change();
                }
            }
            VrMsg::DoViewChange { view } => {
                if view > self.view {
                    self.start_view_change(view);
                }
                if view == self.view && self.leader_of(view) == self.config.pid {
                    self.dvc_votes.insert(from);
                    // Our own vote counts once we pass the EQC gate.
                    self.maybe_do_view_change();
                    self.maybe_become_leader();
                }
            }
            VrMsg::StartView { view } => {
                if view >= self.view && from == self.leader_of(view) {
                    self.view = view;
                    self.status = VrStatus::Normal;
                    self.ticks_since_leader = 0;
                    // The leader's Sequence Paxos Prepare follows; electing
                    // the ballot locally lets forwarding target it.
                    self.sp.handle_leader(Ballot::new(view, 0, from));
                }
            }
            VrMsg::Ping { view } => {
                if view == self.view && from == self.leader_of(view) {
                    self.ticks_since_leader = 0;
                    if self.status == VrStatus::ViewChange {
                        // The leader of our view is operational (e.g. we
                        // rejoined after a partition).
                        self.status = VrStatus::Normal;
                    }
                } else if view > self.view {
                    // A later view is operational: adopt it.
                    self.view = view;
                    self.status = VrStatus::Normal;
                    self.ticks_since_leader = 0;
                    self.view_changes += 1;
                    self.sp.handle_leader(Ballot::new(view, 0, from));
                }
            }
            VrMsg::Paxos(m) => self.sp.handle_message(m),
        }
    }

    /// Drain all outgoing messages (election + replication).
    pub fn outgoing_messages(&mut self) -> Vec<(NodeId, VrMsg<T>)> {
        let mut out = std::mem::take(&mut self.outgoing);
        for m in self.sp.outgoing_messages() {
            out.push((m.to, VrMsg::Paxos(m)));
        }
        out
    }

    /// Notify that the link to `pid` was re-established after a session
    /// drop; the replication layer asks for the current state.
    pub fn reconnected(&mut self, pid: NodeId) {
        self.sp.reconnected(pid);
    }

    /// Direct access to the replication component (tests, invariants).
    pub fn sequence_paxos(&mut self) -> &mut SequencePaxos<T, MemoryStorage<T>> {
        &mut self.sp
    }
}

impl<T: Entry> std::fmt::Debug for VrNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VrNode")
            .field("pid", &self.config.pid)
            .field("view", &self.view)
            .field("status", &self.status)
            .field("sp", &self.sp)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(nodes: &mut [VrNode<u64>], steps: usize) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing_messages() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    fn cluster(n: usize) -> Vec<VrNode<u64>> {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        nodes
            .iter()
            .map(|&p| VrNode::new(VrConfig::with(p, nodes.clone())))
            .collect()
    }

    #[test]
    fn elects_the_round_robin_owner_of_view_one() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let leaders: Vec<NodeId> = nodes
            .iter()
            .filter(|n| n.is_leader())
            .map(|n| n.pid())
            .collect();
        assert_eq!(leaders.len(), 1);
        // view 1 of nodes [1,2,3] belongs to nodes[1 % 3] = 2.
        assert_eq!(leaders[0], 2);
    }

    #[test]
    fn replicates_through_sequence_paxos() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=10 {
            assert!(nodes[li].propose(v));
        }
        run(&mut nodes, 100);
        for n in nodes.iter_mut() {
            assert_eq!(n.poll_decided(), (1..=10).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn view_change_on_leader_silence() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        let before = nodes[li].view();
        // Remove the leader from the network entirely.
        let dead = nodes.remove(li);
        run(&mut nodes, 300);
        let new_leader = nodes.iter().find(|n| n.is_leader());
        assert!(
            new_leader.is_some(),
            "remaining majority elects the next view: {nodes:?}"
        );
        assert!(nodes[0].view() > before);
        drop(dead);
    }

    #[test]
    fn decided_entries_survive_view_change() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=5 {
            nodes[li].propose(v);
        }
        run(&mut nodes, 100);
        let dead = nodes.remove(li);
        run(&mut nodes, 300);
        let new_li = nodes
            .iter()
            .position(|n| n.is_leader())
            .expect("new leader");
        nodes[new_li].propose(6);
        run(&mut nodes, 100);
        for n in nodes.iter_mut() {
            let all = n.sequence_paxos().read_decided(0);
            let vals: Vec<u64> = all
                .into_iter()
                .filter_map(|e| e.as_normal().copied())
                .collect();
            assert_eq!(vals, vec![1, 2, 3, 4, 5, 6]);
        }
        drop(dead);
    }

    #[test]
    fn minority_cannot_complete_view_change() {
        // EQC in action: a single isolated node must never become leader.
        let nodes: Vec<NodeId> = vec![1, 2, 3];
        let mut lone: VrNode<u64> = VrNode::new(VrConfig::with(1, nodes));
        for _ in 0..500 {
            lone.tick();
            let _ = lone.outgoing_messages();
        }
        assert!(!lone.is_leader());
        assert_eq!(lone.status(), VrStatus::ViewChange);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn cluster(n: usize) -> Vec<VrNode<u64>> {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        nodes
            .iter()
            .map(|&p| VrNode::new(VrConfig::with(p, nodes.clone())))
            .collect()
    }

    fn run_filtered(nodes: &mut [VrNode<u64>], steps: usize, blocked: &[(NodeId, NodeId)]) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing_messages() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if blocked.contains(&(from, to)) || blocked.contains(&(to, from)) {
                    continue;
                }
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    #[test]
    fn eqc_blocks_view_change_with_single_qc_server() {
        // §2b at the unit level: only the hub is quorum-connected; no
        // server can collect a majority of StartViewChange except the hub,
        // and the round-robin leader usually is not the hub — deadlock.
        let mut nodes = cluster(5);
        run_filtered(&mut nodes, 200, &[]);
        let leader = nodes.iter().find(|n| n.is_leader()).unwrap().pid();
        let hub = (1..=5).find(|&p| p != leader).unwrap();
        // Full partition of the old leader; everyone else only sees the hub.
        let mut blocked = Vec::new();
        for a in 1..=5u64 {
            for b in (a + 1)..=5u64 {
                let keeps = (a == hub || b == hub) && a != leader && b != leader;
                if !keeps {
                    blocked.push((a, b));
                }
            }
        }
        run_filtered(&mut nodes, 2_000, &blocked);
        assert!(
            nodes.iter().all(|n| !n.is_leader() || n.pid() == leader),
            "no new leader can emerge under EQC with one QC server: {nodes:?}"
        );
        // Views keep churning fruitlessly at the hub.
        let hub_i = nodes.iter().position(|n| n.pid() == hub).unwrap();
        assert!(nodes[hub_i].view_changes() > 5);
    }

    #[test]
    fn round_robin_skips_unreachable_view_owners() {
        // 3 servers; kill the next-in-line view owner: the change must
        // roll over to the following view and succeed.
        let mut nodes = cluster(3);
        run_filtered(&mut nodes, 200, &[]);
        let leader = nodes.iter().find(|n| n.is_leader()).unwrap().pid();
        // Block the current leader entirely (it "fails").
        let blocked: Vec<(NodeId, NodeId)> = (1..=3)
            .filter(|&p| p != leader)
            .map(|p| (leader, p))
            .collect();
        run_filtered(&mut nodes, 2_000, &blocked);
        let new_leader = nodes
            .iter()
            .find(|n| n.is_leader() && n.pid() != leader)
            .map(|n| n.pid());
        assert!(
            new_leader.is_some(),
            "a later view with a reachable owner must succeed: {nodes:?}"
        );
    }
}
