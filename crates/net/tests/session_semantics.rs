//! Session semantics end to end: a dropped-and-reestablished session
//! must trigger PrepareReq-based re-sync (paper §4.1.3) — on **both**
//! backends, with the same observable protocol facts:
//!
//! 1. while the session is down, the disconnected follower misses
//!    decided writes;
//! 2. on re-establishment, the leader receives at least one `PrepareReq`
//!    it did not have before;
//! 3. the follower converges to the leader's state.
//!
//! The simulator variant is fully deterministic (fixed seed, fixed tick
//! schedule); the TCP variant runs the same `KvServer` driver over real
//! sockets with the transport killed and rebuilt. That the one driver
//! code path passes both is the point of the `NetworkLink` abstraction.

use kvstore::{KvCommand, KvNode, KvOp, NodeId};
use net::server::KvServer;
use net::tcp::{TcpConfig, TcpTransport};
use net::SimHub;
use omnipaxos::ServiceMsg;
use simulator::NetworkConfig;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn put(client: u64, seq: u64, key: &str, value: i64) -> KvCommand {
    KvCommand {
        client,
        seq,
        op: KvOp::Put {
            key: key.into(),
            value,
        },
    }
}

// ---------------------------------------------------------------------------
// simulator backend: deterministic

#[test]
fn sim_session_reestablish_triggers_prepare_req_resync() {
    let hub: SimHub<ServiceMsg<KvCommand>> = SimHub::new(NetworkConfig {
        nodes: vec![1, 2, 3],
        default_latency_us: 100,
        seed: 11,
        ..Default::default()
    });
    let mut servers: Vec<KvServer<_>> = (1..=3u64)
        .map(|pid| KvServer::new(KvNode::new(pid, vec![1, 2, 3]), hub.link(pid)))
        .collect();

    // Drive: 1 ms ticks; pump after every delivery phase.
    let mut now: u64 = 0;
    let step = |servers: &mut Vec<KvServer<_>>, now: &mut u64, ticks: u64| {
        for _ in 0..ticks {
            *now += 1_000;
            hub.drain_due(*now);
            for s in servers.iter_mut() {
                s.pump();
                s.tick();
            }
        }
    };

    // Elect a leader.
    step(&mut servers, &mut now, 50);
    let leader = servers
        .iter()
        .position(|s| s.node().is_leader(0))
        .expect("a leader after 50 ticks");
    let leader_pid = (leader + 1) as NodeId;
    // Pick a follower to disconnect.
    let follower = (0..3).find(|&i| i != leader).unwrap();
    let follower_pid = (follower + 1) as NodeId;

    // Baseline writes reach everyone.
    servers[leader]
        .node_mut()
        .shard_mut(0)
        .submit(put(1, 1, "a", 1))
        .unwrap();
    step(&mut servers, &mut now, 20);
    assert_eq!(servers[follower].node().read_local("a"), Some(1));

    // Fully isolate the follower (cutting only the leader link is not
    // enough: under partial connectivity the third node relays, which is
    // the paper's whole point). Both sessions drop, like a transport
    // teardown on the follower's box.
    let third_pid = (1..=3u64)
        .find(|&p| p != leader_pid && p != follower_pid)
        .unwrap();
    hub.cut(leader_pid, follower_pid);
    hub.cut(third_pid, follower_pid);
    hub.drop_in_flight_between(leader_pid, follower_pid);
    hub.drop_in_flight_between(third_pid, follower_pid);

    // Writes decided by the remaining majority while the session is down.
    servers[leader]
        .node_mut()
        .shard_mut(0)
        .submit(put(1, 2, "b", 2))
        .unwrap();
    servers[leader]
        .node_mut()
        .shard_mut(0)
        .submit(put(1, 3, "c", 3))
        .unwrap();
    step(&mut servers, &mut now, 50);
    assert_eq!(
        servers[follower].node().read_local("b"),
        None,
        "follower must miss writes while its session is down"
    );

    let reqs_before = servers[leader].prepare_reqs_received();

    // Re-establish: new sessions ⇒ both ends call reconnected() ⇒ the
    // follower asks the leader to re-sync it.
    hub.heal(leader_pid, follower_pid);
    hub.heal(third_pid, follower_pid);
    step(&mut servers, &mut now, 100);

    assert!(
        servers[leader].prepare_reqs_received() > reqs_before,
        "leader must receive a PrepareReq after the session reforms"
    );
    assert!(servers[follower].reconnects_seen() > 0);
    assert_eq!(servers[follower].node().read_local("b"), Some(2));
    assert_eq!(servers[follower].node().read_local("c"), Some(3));
    let leader_state = servers[leader]
        .node()
        .shard(0)
        .state_machine()
        .state()
        .clone();
    let follower_state = servers[follower]
        .node()
        .shard(0)
        .state_machine()
        .state()
        .clone();
    assert_eq!(leader_state, follower_state, "states must converge");
}

// ---------------------------------------------------------------------------
// TCP backend: same driver, real sockets

type Transport = TcpTransport<ServiceMsg<KvCommand>>;

fn tcp_cfg() -> TcpConfig {
    TcpConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_timeout: Duration::from_millis(250),
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(300),
        ..TcpConfig::default()
    }
}

/// Pump/tick all servers for `dur`, wall-clock.
fn drive(servers: &mut [KvServer<Transport>], dur: Duration) {
    let deadline = Instant::now() + dur;
    let mut last_tick = Instant::now();
    while Instant::now() < deadline {
        for s in servers.iter_mut() {
            s.pump();
        }
        if last_tick.elapsed() >= Duration::from_millis(3) {
            last_tick = Instant::now();
            for s in servers.iter_mut() {
                s.tick();
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn drive_until(
    servers: &mut [KvServer<Transport>],
    timeout: Duration,
    what: &str,
    mut done: impl FnMut(&[KvServer<Transport>]) -> bool,
) {
    let deadline = Instant::now() + timeout;
    while !done(servers) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        drive(servers, Duration::from_millis(20));
    }
}

#[test]
fn tcp_session_reestablish_triggers_prepare_req_resync() {
    let mut repl_addrs: HashMap<NodeId, SocketAddr> = HashMap::new();
    let mut listeners = HashMap::new();
    for pid in 1..=3u64 {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        repl_addrs.insert(pid, l.local_addr().unwrap());
        listeners.insert(pid, l);
    }
    let mut servers: Vec<KvServer<Transport>> = (1..=3u64)
        .map(|pid| {
            let t = Transport::with_listener(
                pid,
                listeners.remove(&pid).unwrap(),
                repl_addrs.clone(),
                tcp_cfg(),
            )
            .unwrap();
            KvServer::new(KvNode::new(pid, vec![1, 2, 3]), t)
        })
        .collect();

    drive_until(&mut servers, Duration::from_secs(10), "a leader", |s| {
        s.iter().any(|s| s.node().is_leader(0))
    });
    let leader = servers.iter().position(|s| s.node().is_leader(0)).unwrap();
    let follower = (0..3).find(|&i| i != leader).unwrap();
    let follower_pid = (follower + 1) as NodeId;

    servers[leader]
        .node_mut()
        .shard_mut(0)
        .submit(put(1, 1, "a", 1))
        .unwrap();
    drive_until(
        &mut servers,
        Duration::from_secs(5),
        "baseline write",
        |s| s[follower].node().read_local("a") == Some(1),
    );

    // Kill the follower's transport: sessions to it die for real.
    drop(servers[follower].kill_transport());
    servers[leader]
        .node_mut()
        .shard_mut(0)
        .submit(put(1, 2, "b", 2))
        .unwrap();
    servers[leader]
        .node_mut()
        .shard_mut(0)
        .submit(put(1, 3, "c", 3))
        .unwrap();
    drive_until(
        &mut servers,
        Duration::from_secs(5),
        "majority decide",
        |s| s[leader].node().read_local("c") == Some(3),
    );
    assert_eq!(
        servers[follower].node().read_local("b"),
        None,
        "follower must miss writes while its transport is dead"
    );
    let reqs_before = servers[leader].prepare_reqs_received();

    // Rebuild the transport on the same address: sessions re-form with
    // higher numbers, and the follower re-syncs.
    let t = Transport::bind(follower_pid, repl_addrs.clone(), tcp_cfg()).unwrap();
    servers[follower].set_transport(t);
    drive_until(
        &mut servers,
        Duration::from_secs(10),
        "follower resync",
        |s| {
            s[follower].node().read_local("b") == Some(2)
                && s[follower].node().read_local("c") == Some(3)
        },
    );

    assert!(
        servers[leader].prepare_reqs_received() > reqs_before,
        "leader must receive a PrepareReq after the session reforms"
    );
    assert!(servers[follower].reconnects_seen() > 0);
    let leader_state = servers[leader]
        .node()
        .shard(0)
        .state_machine()
        .state()
        .clone();
    let follower_state = servers[follower]
        .node()
        .shard(0)
        .state_machine()
        .state()
        .clone();
    assert_eq!(leader_state, follower_state, "states must converge");
}
