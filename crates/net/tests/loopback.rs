//! Loopback deployment harness: real kv clusters on 127.0.0.1.
//!
//! These are the ISSUE-level acceptance tests for the TCP transport: a
//! 3-node cluster boots over real sockets, serves client traffic, has
//! the leader's transport killed out from under it, recovers, and still
//! answers linearizable reads; a 4th node then joins a separate cluster
//! by live reconfiguration. Everything binds ephemeral ports, so the
//! tests are safe to run in parallel with anything.

use kvstore::{shard_config, KvCommand, KvNode, KvOp, NodeId, ReadMode, ShardedKvNode};
use net::client::READ_FLAG;
use net::server::{ClientGateway, KvServer};
use net::tcp::{TcpConfig, TcpTransport};
use net::{fetch_shards, KvClient, PipelinedKvClient, ShardedKvClient};
use omnipaxos::service::ServerConfig;
use omnipaxos::ServiceMsg;
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Transport = TcpTransport<ServiceMsg<KvCommand>>;
type Server = KvServer<Transport>;

/// Control messages the test sends into a node's drive loop.
enum Ctl {
    KillTransport,
    SetTransport(Box<Transport>),
    Reconfigure(Vec<NodeId>),
    /// Crash-recover the replica in place: protocol state is rebuilt
    /// from (simulated) persistent storage, as after a process restart.
    FailRecover,
}

/// Observable status a node publishes every loop iteration.
#[derive(Default)]
struct Status {
    is_leader: AtomicBool,
    /// Value of the "sentinel" key in the node's applied state (-1 if
    /// absent) — the convergence probe.
    sentinel: AtomicI64,
    config_id: AtomicI64,
    /// Whether shard 0's leader lease is currently valid at this node.
    lease: AtomicBool,
    /// Shard 0's decided log length — lets read tests assert log-free.
    decided: AtomicI64,
}

struct Node {
    pid: NodeId,
    ctl: Sender<Ctl>,
    status: Arc<Status>,
    handle: JoinHandle<Server>,
    client_addr: SocketAddr,
}

struct Cluster {
    nodes: Vec<Node>,
    stop: Arc<AtomicBool>,
    repl_addrs: HashMap<NodeId, SocketAddr>,
}

fn tcp_cfg() -> TcpConfig {
    TcpConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_timeout: Duration::from_millis(300),
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(500),
        ..TcpConfig::default()
    }
}

impl Cluster {
    /// Boot `members` as the initial configuration and `joiners` as
    /// idle servers; all replication and client ports are ephemeral.
    fn boot(members: &[NodeId], joiners: &[NodeId]) -> Cluster {
        Cluster::boot_with(members, joiners, None)
    }

    /// Like [`Cluster::boot`], with an optional per-server `max_pending`
    /// override (small values force overload shedding under pipelined
    /// load).
    fn boot_with(members: &[NodeId], joiners: &[NodeId], max_pending: Option<usize>) -> Cluster {
        Cluster::boot_opts(members, joiners, max_pending, 1, 0)
    }

    /// Boot a sharded cluster: every server runs `shards` Omni-Paxos
    /// groups over its one replication transport.
    fn boot_sharded(members: &[NodeId], shards: usize) -> Cluster {
        Cluster::boot_opts(members, &[], None, shards, 0)
    }

    /// Boot with leader leases enabled: `lease_ticks` is in units of the
    /// 3ms drive-loop tick, so 40 ticks ≈ 120ms of lease per heartbeat
    /// round — comfortably renewable at the 25ms heartbeat interval.
    fn boot_leased(members: &[NodeId], shards: usize, lease_ticks: u64) -> Cluster {
        Cluster::boot_opts(members, &[], None, shards, lease_ticks)
    }

    fn boot_opts(
        members: &[NodeId],
        joiners: &[NodeId],
        max_pending: Option<usize>,
        shards: usize,
        lease_ticks: u64,
    ) -> Cluster {
        let all: Vec<NodeId> = members.iter().chain(joiners).copied().collect();
        let mut listeners = HashMap::new();
        let mut repl_addrs = HashMap::new();
        for &pid in &all {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            repl_addrs.insert(pid, l.local_addr().unwrap());
            listeners.insert(pid, l);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut nodes = Vec::new();
        for &pid in &all {
            let node = if lease_ticks > 0 {
                // Lease-enabled boot mirrors the server binary: one base
                // config carries the cluster-wide lease contract, shard
                // configs spread leadership preferences across pids.
                let mut base = ServerConfig::with(pid);
                base.lease_ticks = lease_ticks;
                base.lease_epsilon_ticks = (lease_ticks / 10).max(1);
                if members.contains(&pid) {
                    ShardedKvNode::from_shards(
                        (0..shards as u32)
                            .map(|s| {
                                KvNode::with_config(
                                    shard_config(&base, s, members),
                                    members.to_vec(),
                                )
                            })
                            .collect(),
                    )
                } else {
                    ShardedKvNode::from_shards(
                        (0..shards)
                            .map(|_| KvNode::joiner_with_config(base.clone()))
                            .collect(),
                    )
                }
            } else if members.contains(&pid) {
                ShardedKvNode::new(pid, members.to_vec(), shards)
            } else {
                ShardedKvNode::joiner(pid, shards)
            };
            let transport = Transport::with_listener(
                pid,
                listeners.remove(&pid).unwrap(),
                repl_addrs.clone(),
                tcp_cfg(),
            )
            .unwrap();
            let gateway = ClientGateway::bind(TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
            let client_addr = gateway.local_addr();
            let mut server = KvServer::new_sharded(node, transport).with_gateway(gateway);
            if let Some(mp) = max_pending {
                server = server.with_max_pending(mp);
            }
            let (ctl_tx, ctl_rx) = mpsc::channel();
            let status = Arc::new(Status::default());
            let handle = {
                let stop = Arc::clone(&stop);
                let status = Arc::clone(&status);
                std::thread::Builder::new()
                    .name(format!("kv-node-{pid}"))
                    .spawn(move || {
                        let mut server = server;
                        let mut last_tick = Instant::now();
                        while !stop.load(Ordering::SeqCst) {
                            while let Ok(ctl) = ctl_rx.try_recv() {
                                match ctl {
                                    Ctl::KillTransport => drop(server.kill_transport()),
                                    Ctl::SetTransport(t) => server.set_transport(*t),
                                    Ctl::Reconfigure(nodes) => {
                                        let _ = server.node_mut().reconfigure(0, nodes);
                                    }
                                    Ctl::FailRecover => server.node_mut().fail_recovery(),
                                }
                            }
                            let work = server.pump();
                            if last_tick.elapsed() >= Duration::from_millis(3) {
                                last_tick = Instant::now();
                                server.tick();
                            }
                            status
                                .is_leader
                                .store(server.node().is_leader(0), Ordering::Relaxed);
                            status.sentinel.store(
                                server.node().read_local("sentinel").unwrap_or(-1),
                                Ordering::Relaxed,
                            );
                            status.config_id.store(
                                server.node().shard(0).server_ref().config_id() as i64,
                                Ordering::Relaxed,
                            );
                            status
                                .lease
                                .store(server.node().lease_valid(0), Ordering::Relaxed);
                            status.decided.store(
                                server.node().shard(0).server_ref().decided_len() as i64,
                                Ordering::Relaxed,
                            );
                            // Open-loop load turns around in microseconds;
                            // only an idle cycle may yield the scheduler
                            // quantum.
                            if work == 0 {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                        server
                    })
                    .unwrap()
            };
            nodes.push(Node {
                pid,
                ctl: ctl_tx,
                status,
                handle,
                client_addr,
            });
        }
        Cluster {
            nodes,
            stop,
            repl_addrs,
        }
    }

    fn client_addrs(&self) -> Vec<(NodeId, SocketAddr)> {
        self.nodes.iter().map(|n| (n.pid, n.client_addr)).collect()
    }

    fn wait_for_leader(&self) -> NodeId {
        wait(Duration::from_secs(10), "a leader", || {
            self.nodes
                .iter()
                .find(|n| n.status.is_leader.load(Ordering::Relaxed))
                .map(|n| n.pid)
        })
    }

    fn node(&self, pid: NodeId) -> &Node {
        self.nodes.iter().find(|n| n.pid == pid).unwrap()
    }

    fn shutdown(self) -> Vec<(NodeId, Server)> {
        self.stop.store(true, Ordering::SeqCst);
        self.nodes
            .into_iter()
            .map(|n| (n.pid, n.handle.join().expect("node thread")))
            .collect()
    }
}

/// Push `ops` puts through a pipelined client, keeping up to `window` in
/// flight, and assert every seq completes exactly once. Out-of-order
/// completion is fine; per-key order is still submission order because
/// the server admits each client's seqs contiguously.
fn pipelined_puts(
    pipe: &mut PipelinedKvClient,
    ops: u64,
    window: usize,
    mut key_of: impl FnMut(u64) -> String,
    mut val_of: impl FnMut(u64) -> i64,
) {
    let mut seqs = HashSet::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while completed < ops {
        assert!(
            Instant::now() < deadline,
            "pipelined workload stalled at {completed}/{ops}"
        );
        while submitted < ops && pipe.in_flight() < window {
            pipe.submit(KvOp::Put {
                key: key_of(submitted),
                value: val_of(submitted),
            });
            submitted += 1;
        }
        for r in pipe
            .wait(Duration::from_millis(100))
            .expect("pipelined put")
        {
            assert!(seqs.insert(r.seq), "seq {} completed twice", r.seq);
            completed += 1;
        }
    }
}

fn wait<T>(timeout: Duration, what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn three_node_cluster_survives_leader_transport_kill() {
    let cluster = Cluster::boot(&[1, 2, 3], &[]);
    let mut pipe = PipelinedKvClient::new(0xC11E47, cluster.client_addrs());
    let mut client = KvClient::new(0xC11E4A, cluster.client_addrs());

    // Phase 1: normal traffic, open loop — many puts in flight at once.
    let ops: u64 = if std::env::var("NET_SMOKE_OPS").is_ok() {
        std::env::var("NET_SMOKE_OPS").unwrap().parse().unwrap()
    } else {
        200
    };
    pipelined_puts(
        &mut pipe,
        ops,
        128,
        |i| format!("k{}", i % 50),
        |i| i as i64,
    );
    let leader = cluster.wait_for_leader();

    // Phase 2: kill the leader's transport. The replica stays up but
    // mute; the others detect the dead sessions and elect around it.
    cluster.node(leader).ctl.send(Ctl::KillTransport).unwrap();
    let new_leader = wait(Duration::from_secs(10), "a new leader", || {
        cluster
            .nodes
            .iter()
            .filter(|n| n.pid != leader)
            .find(|n| n.status.is_leader.load(Ordering::Relaxed))
            .map(|n| n.pid)
    });
    assert_ne!(new_leader, leader);

    // Traffic continues against the surviving majority — still
    // pipelined, so redirects and reconnects hit a full window.
    pipelined_puts(&mut pipe, 50, 32, |i| format!("k{i}"), |i| (ops + i) as i64);

    // Phase 3: restart the killed transport (same pid, same address —
    // AddrInUse is retried inside bind). Sessions come back with higher
    // numbers and the node re-syncs via PrepareReq.
    let t = Transport::bind(leader, cluster.repl_addrs.clone(), tcp_cfg()).unwrap();
    cluster
        .node(leader)
        .ctl
        .send(Ctl::SetTransport(Box::new(t)))
        .unwrap();

    // Phase 4: linearizable reads see the latest values.
    for i in 0..50u64 {
        let v = client.read(&format!("k{i}")).expect("linearizable read");
        assert_eq!(v, Some((ops + i) as i64), "k{i} after recovery");
    }

    // Convergence: a sentinel write must reach every replica's applied
    // state — including the one whose transport was killed.
    client.put("sentinel", 42).expect("sentinel");
    wait(
        Duration::from_secs(10),
        "all replicas to apply sentinel",
        || {
            cluster
                .nodes
                .iter()
                .all(|n| n.status.sentinel.load(Ordering::Relaxed) == 42)
                .then_some(())
        },
    );

    let servers = cluster.shutdown();
    let states: Vec<_> = servers
        .iter()
        .map(|(pid, s)| (*pid, s.node().shard(0).state_machine().state().clone()))
        .collect();
    for w in states.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "replica states diverged: {} vs {}",
            w[0].0, w[1].0
        );
    }
    // The restarted node observed new sessions and asked for re-sync.
    let killed = servers.iter().find(|(pid, _)| *pid == leader).unwrap();
    assert!(
        killed.1.reconnects_seen() > 0,
        "restarted node must see SessionEstablished events"
    );
}

/// Kill-and-restart nemesis: repeated rounds of taking down the current
/// leader — transport torn out AND the replica crash-recovered from its
/// persistent state, modeling a full process restart — while a client
/// keeps writing. Every round the restarted node must re-join via fresh
/// sessions (PrepareReq re-sync) and the cluster must converge before
/// the nemesis strikes again.
#[test]
fn kill_and_restart_nemesis_keeps_the_cluster_consistent() {
    let cluster = Cluster::boot(&[1, 2, 3], &[]);
    let mut pipe = PipelinedKvClient::new(0xC11E49, cluster.client_addrs());
    let mut client = KvClient::new(0xC11E4B, cluster.client_addrs());

    pipelined_puts(&mut pipe, 40, 16, |i| format!("n{}", i % 10), |i| i as i64);

    let rounds = 3u64;
    let mut last = [0i64; 10];
    for round in 1..=rounds {
        let victim = cluster.wait_for_leader();

        // Process restart: the transport dies with its sessions, and the
        // replica rebuilds volatile protocol state from storage.
        cluster.node(victim).ctl.send(Ctl::KillTransport).unwrap();
        cluster.node(victim).ctl.send(Ctl::FailRecover).unwrap();

        // The survivors elect around the dead node.
        wait(Duration::from_secs(10), "a new leader", || {
            cluster
                .nodes
                .iter()
                .filter(|n| n.pid != victim)
                .find(|n| n.status.is_leader.load(Ordering::Relaxed))
                .map(|n| n.pid)
        });

        // Traffic continues against the surviving majority, with a full
        // pipeline window in flight across the leader change.
        pipelined_puts(
            &mut pipe,
            30,
            16,
            |i| format!("n{}", i % 10),
            |i| (round * 1000 + i) as i64,
        );
        for i in 0..30u64 {
            last[(i % 10) as usize] = (round * 1000 + i) as i64;
        }

        // Restart the transport on the same address; sessions come back
        // with higher numbers and the node re-syncs via PrepareReq.
        let t = Transport::bind(victim, cluster.repl_addrs.clone(), tcp_cfg()).unwrap();
        cluster
            .node(victim)
            .ctl
            .send(Ctl::SetTransport(Box::new(t)))
            .unwrap();

        // Full convergence — including the restarted node — before the
        // nemesis picks its next victim.
        client.put("sentinel", round as i64).expect("sentinel");
        wait(
            Duration::from_secs(15),
            "all replicas to apply the round sentinel",
            || {
                cluster
                    .nodes
                    .iter()
                    .all(|n| n.status.sentinel.load(Ordering::Relaxed) == round as i64)
                    .then_some(())
            },
        );
    }

    // Linearizable reads see the last round's writes.
    for (i, &v) in last.iter().enumerate() {
        let got = client.read(&format!("n{i}")).expect("read after nemesis");
        assert_eq!(got, Some(v), "n{i} after {rounds} nemesis rounds");
    }

    let servers = cluster.shutdown();
    let states: Vec<_> = servers
        .iter()
        .map(|(pid, s)| (*pid, s.node().shard(0).state_machine().state().clone()))
        .collect();
    for w in states.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "replica states diverged: {} vs {}",
            w[0].0, w[1].0
        );
    }
    // Every round produced real session churn and re-syncs somewhere.
    let total_reconnects: u64 = servers.iter().map(|(_, s)| s.reconnects_seen()).sum();
    assert!(
        total_reconnects >= rounds,
        "nemesis rounds must churn sessions (saw {total_reconnects})"
    );
}

/// Overload: a pipelined client whose in-flight window dwarfs the
/// server's `max_pending` bound. Excess ops are shed with `Retry` (never
/// silently dropped, never reordered past an admitted sibling — the
/// contiguous-admission rule), every op eventually completes exactly
/// once, and per-key final values match submission order.
#[test]
fn pipelined_overload_sheds_excess_but_completes_everything() {
    let cluster = Cluster::boot_with(&[1, 2, 3], &[], Some(64));
    cluster.wait_for_leader();

    let mut pipe = PipelinedKvClient::new(0xC11E51, cluster.client_addrs());
    let total = 1500u64;
    let keys = 16u64;
    let mut expected: HashMap<String, i64> = HashMap::new();
    for i in 0..total {
        let key = format!("o{}", i % keys);
        pipe.submit(KvOp::Put {
            key: key.clone(),
            value: i as i64,
        });
        expected.insert(key, i as i64);
    }
    assert_eq!(pipe.in_flight() as u64, total);

    let mut seqs = HashSet::new();
    for r in pipe
        .drain(Duration::from_secs(60))
        .expect("drain under overload")
    {
        assert!(seqs.insert(r.seq), "seq {} completed twice", r.seq);
    }
    assert_eq!(seqs.len() as u64, total, "every op must complete");
    assert!(
        pipe.retries_seen() > 0,
        "a {total}-deep window over max_pending=64 must be shed with Retry"
    );

    // Per-key order held: the final value of each key is its last
    // submitted write, despite shedding and retransmission.
    let mut reader = KvClient::new(0xC11E52, cluster.client_addrs());
    for (k, v) in &expected {
        assert_eq!(
            reader.read(k).expect("read"),
            Some(*v),
            "final value of {k}"
        );
    }

    // Convergence barrier: once every replica applied the sentinel, the
    // whole log prefix (all ops and reads above) is applied everywhere,
    // so the state snapshots below are race-free.
    reader.put("sentinel", 7).expect("sentinel");
    wait(Duration::from_secs(10), "sentinel on all replicas", || {
        cluster
            .nodes
            .iter()
            .all(|n| n.status.sentinel.load(Ordering::Relaxed) == 7)
            .then_some(())
    });

    let servers = cluster.shutdown();
    let sheds: u64 = servers.iter().map(|(_, s)| s.shed_requests()).sum();
    assert!(sheds > 0, "servers must have shed requests");
    // Replicas agree on both the kv state and the session tables (the
    // dedup invariant under windowed seqs).
    let states: Vec<_> = servers
        .iter()
        .map(|(pid, s)| {
            (
                *pid,
                s.node().shard(0).state_machine().state().clone(),
                s.node().shard(0).state_machine().sessions().clone(),
            )
        })
        .collect();
    for w in states.windows(2) {
        assert_eq!(
            (&w[0].1, &w[0].2),
            (&w[1].1, &w[1].2),
            "replica state/sessions diverged: {} vs {}",
            w[0].0,
            w[1].0
        );
    }
    // The session table records exactly the client's highest seq.
    for (_, _, sessions) in &states {
        assert_eq!(
            sessions.get(&0xC11E51).map(|e| e.seq),
            Some(pipe.last_seq())
        );
    }
}

/// Regression (stall handling): a gateway that keeps *answering* — even
/// if every answer is `Retry` for a while — must not be abandoned by the
/// rotation timer. Rotating away from a live-but-shedding server drops
/// the connection and retransmits the whole window elsewhere, turning an
/// overload blip into a stampede. The stall timer must reset on any
/// inbound frame, not only on completions.
#[test]
fn slow_but_live_gateway_is_not_abandoned() {
    use net::frame::{self, kind};
    use omnipaxos::wire::Wire;

    // A fake gateway: decodes requests, answers `Retry` for the first
    // `shed_for`, then applies everything (echo replies). A second
    // listener that accepts but never answers plays the "mute server"
    // a rotation would land on.
    let live = TcpListener::bind("127.0.0.1:0").unwrap();
    let mute = TcpListener::bind("127.0.0.1:0").unwrap();
    let live_addr = live.local_addr().unwrap();
    let mute_addr = mute.local_addr().unwrap();
    let shed_for = Duration::from_millis(900);
    let t0 = Instant::now();
    std::thread::spawn(move || {
        for stream in live.incoming().flatten() {
            let t0 = t0;
            std::thread::spawn(move || {
                let mut r = &stream;
                while let Ok(f) = frame::read_frame(&mut r) {
                    if f.kind != kind::KV {
                        continue;
                    }
                    let Ok(kvstore::KvWire::Request(cmd)) = kvstore::KvWire::from_bytes(&f.payload)
                    else {
                        continue;
                    };
                    let reply = if t0.elapsed() < shed_for {
                        kvstore::KvWire::Retry { seq: cmd.seq }
                    } else {
                        kvstore::KvWire::Reply(kvstore::KvResult {
                            client: cmd.client,
                            seq: cmd.seq,
                            value: Some(1),
                            applied: true,
                        })
                    };
                    let mut w = &stream;
                    if frame::write_frame(&mut w, kind::KV, &reply.to_bytes()).is_err() {
                        break;
                    }
                }
            });
        }
    });
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in mute.incoming().flatten() {
            held.push(stream); // accept and go mute
        }
    });

    let mut pipe = PipelinedKvClient::new(0xC11E53, vec![(1, live_addr), (2, mute_addr)]);
    // Rotation threshold well inside the shed window: without the fix,
    // 300ms of Retry-only answers trip the stall timer and the client
    // rotates to the mute server mid-window.
    pipe.rotate_after = Duration::from_millis(300);
    pipe.retry_delay = Duration::from_millis(20);
    for i in 0..32u64 {
        pipe.submit(KvOp::Put {
            key: format!("s{i}"),
            value: i as i64,
        });
    }
    let done = pipe.drain(Duration::from_secs(20)).expect("drain");
    assert_eq!(done.len(), 32, "every op completes once shedding ends");
    assert!(
        pipe.retries_seen() > 0,
        "the shed window must actually have shed"
    );
    assert_eq!(
        pipe.rotations_seen(),
        0,
        "a live gateway answering Retry must not be abandoned"
    );
}

/// End-to-end sharded cluster: 4 Omni-Paxos groups over 3 replicas and
/// one transport each. The routing table converges (every shard gets a
/// leader), a sharded open-loop client completes everything exactly once
/// across shards, wrong-shard requests earn `ShardRedirect`, and every
/// replica converges per shard — session tables included, proving the
/// per-shard session isolation.
#[test]
fn sharded_cluster_routes_and_converges() {
    let shards = 4usize;
    let cluster = Cluster::boot_sharded(&[1, 2, 3], shards);

    // Routing converges: every shard elects and publishes a leader, and
    // leadership spreads over the replicas rather than funneling through
    // one node (priorities place shard s on node (s % 3) + 1; transient
    // single-owner tables right after boot are allowed to settle).
    wait(Duration::from_secs(20), "spread leaders per shard", || {
        let l = fetch_shards(&cluster.client_addrs(), Duration::from_millis(500)).ok()?;
        let distinct: HashSet<NodeId> = l.iter().copied().collect();
        (l.len() == shards && l.iter().all(|&p| p != 0) && distinct.len() >= 2).then_some(())
    });

    let mut sharded =
        ShardedKvClient::bootstrap(0xC11E54, cluster.client_addrs(), Duration::from_millis(500))
            .expect("bootstrap routing table");
    assert_eq!(sharded.n_shards(), shards);

    let total = 400u64;
    let mut expected: HashMap<String, i64> = HashMap::new();
    for i in 0..total {
        let key = format!("sk{}", i % 40);
        sharded.submit(KvOp::Put {
            key: key.clone(),
            value: i as i64,
        });
        expected.insert(key, i as i64);
    }
    let done = sharded
        .drain(Duration::from_secs(60))
        .expect("sharded drain");
    // Exactly-once per shard session: (shard, seq) never repeats.
    let mut seen: HashSet<(u32, u64)> = HashSet::new();
    for (s, r) in &done {
        assert!(seen.insert((*s, r.seq)), "shard {s} seq {} twice", r.seq);
    }
    assert_eq!(done.len() as u64, total, "every op completes");
    // The workload actually spanned several shards.
    let shards_hit: HashSet<u32> = done.iter().map(|(s, _)| *s).collect();
    assert!(
        shards_hit.len() >= 2,
        "40 keys over 4 shards must hit several shards"
    );

    // A routing-oblivious closed-loop client still works: wrong-shard
    // requests bounce via ShardRedirect until they land.
    let mut reader = KvClient::new(0xC11E55, cluster.client_addrs());
    for (k, v) in &expected {
        assert_eq!(
            reader.read(k).expect("read"),
            Some(*v),
            "final value of {k} via redirect-routing"
        );
    }

    // Convergence barrier, then per-shard replica agreement.
    reader.put("sentinel", 9).expect("sentinel");
    wait(Duration::from_secs(10), "sentinel on all replicas", || {
        cluster
            .nodes
            .iter()
            .all(|n| n.status.sentinel.load(Ordering::Relaxed) == 9)
            .then_some(())
    });
    let servers = cluster.shutdown();
    for s in 0..shards as u32 {
        let states: Vec<_> = servers
            .iter()
            .map(|(pid, srv)| {
                (
                    *pid,
                    srv.node().shard(s).state_machine().state().clone(),
                    srv.node().shard(s).state_machine().sessions().clone(),
                )
            })
            .collect();
        for w in states.windows(2) {
            assert_eq!(
                (&w[0].1, &w[0].2),
                (&w[1].1, &w[1].2),
                "shard {s} diverged between {} and {}",
                w[0].0,
                w[1].0
            );
        }
        // Per-shard sessions: the sharded client's session appears only
        // on shards it wrote to, with that shard's own last seq.
        let wrote: u64 = done.iter().filter(|(sh, _)| *sh == s).count() as u64;
        let session = states[0].2.get(&0xC11E54).map(|e| e.seq);
        if wrote > 0 {
            assert_eq!(
                session,
                Some(wrote),
                "shard {s} session table carries its own seq space"
            );
        } else {
            assert_eq!(session, None, "shard {s} never saw this client");
        }
    }
}

#[test]
fn reconfiguration_brings_a_fourth_node_in_over_tcp() {
    let cluster = Cluster::boot(&[1, 2, 3], &[4]);
    let mut client = KvClient::new(0xC11E48, cluster.client_addrs());

    for i in 0..60u64 {
        client.put(&format!("r{}", i % 20), i as i64).expect("put");
    }
    let leader = cluster.wait_for_leader();
    cluster
        .node(leader)
        .ctl
        .send(Ctl::Reconfigure(vec![1, 2, 3, 4]))
        .unwrap();

    // The new configuration (config_id 2) must activate everywhere,
    // including the joiner, which migrates the log over real sockets.
    wait(
        Duration::from_secs(15),
        "config 2 on all four nodes",
        || {
            cluster
                .nodes
                .iter()
                .all(|n| n.status.config_id.load(Ordering::Relaxed) >= 2)
                .then_some(())
        },
    );

    // Writes still apply in the new configuration, and the joiner
    // converges to the same state.
    client.put("sentinel", 42).expect("post-reconfig write");
    wait(
        Duration::from_secs(10),
        "all four to apply sentinel",
        || {
            cluster
                .nodes
                .iter()
                .all(|n| n.status.sentinel.load(Ordering::Relaxed) == 42)
                .then_some(())
        },
    );

    let servers = cluster.shutdown();
    let states: Vec<_> = servers
        .iter()
        .map(|(pid, s)| (*pid, s.node().shard(0).state_machine().state().clone()))
        .collect();
    for w in states.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "replica states diverged: {} vs {}",
            w[0].0, w[1].0
        );
    }
}

/// All three read modes answer correctly over real sockets: log reads
/// go through the log, leader-lease reads serve locally without log
/// growth, and read-index reads are answered by a follower out of its
/// own state machine (the pinned client is never given the leader's
/// address). Mixed open-loop traffic then interleaves pipelined lease
/// reads with puts and every submission completes exactly once.
#[test]
fn read_modes_answer_over_tcp() {
    let cluster = Cluster::boot_leased(&[1, 2, 3], 1, 40);
    let leader = cluster.wait_for_leader();
    let mut client = KvClient::new(901, cluster.client_addrs());
    client.put("sentinel", 7).expect("seed write");
    wait(
        Duration::from_secs(10),
        "replication of the seed write",
        || {
            cluster
                .nodes
                .iter()
                .all(|n| n.status.sentinel.load(Ordering::Relaxed) == 7)
                .then_some(())
        },
    );

    // Baseline: the read-through-log path.
    assert_eq!(
        client
            .read_with_mode("sentinel", ReadMode::Log)
            .expect("log read"),
        Some(7)
    );

    // Once the leader's lease assembles, lease reads serve locally. A
    // renewal race may downgrade the odd read to the log path, so allow
    // slack, but 16 reads must not have appended 16 read markers.
    wait(Duration::from_secs(10), "the leader's lease", || {
        cluster
            .node(leader)
            .status
            .lease
            .load(Ordering::Relaxed)
            .then_some(())
    });
    let log_before = cluster.node(leader).status.decided.load(Ordering::Relaxed);
    for _ in 0..16 {
        assert_eq!(
            client
                .read_with_mode("sentinel", ReadMode::Lease)
                .expect("lease read"),
            Some(7)
        );
    }
    let log_after = cluster.node(leader).status.decided.load(Ordering::Relaxed);
    assert!(
        log_after - log_before < 16,
        "lease reads grew the log: {log_before} -> {log_after}"
    );

    // Read-index serves at the follower itself — no redirect exists in
    // that path, so a client that only knows one follower still reads.
    let follower = cluster
        .nodes
        .iter()
        .map(|n| n.pid)
        .find(|&p| p != leader)
        .unwrap();
    let mut pinned = KvClient::new(902, vec![(follower, cluster.node(follower).client_addr)]);
    assert_eq!(
        pinned
            .read_with_mode("sentinel", ReadMode::ReadIndex)
            .expect("follower read-index"),
        Some(7)
    );

    // Pipelined lease reads interleaved with puts: reads live in their
    // own (READ_FLAG-tagged) identity space, so they must not disturb
    // the write session's contiguous admission. Seed the key through
    // the closed-loop client first — open-loop reads are concurrent
    // with the in-flight puts and may serve before any of them commit,
    // but a read must never run before a write that COMPLETED earlier.
    client.put("mixed", -1).expect("seed mixed key");
    let mut pipe = PipelinedKvClient::new(903, cluster.client_addrs());
    pipe.read_mode = ReadMode::Lease;
    let mut reads = HashSet::new();
    for i in 0..40i64 {
        pipe.submit(KvOp::Put {
            key: "mixed".into(),
            value: i,
        });
        reads.insert(pipe.submit_read("mixed"));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut writes_done = 0u64;
    while (!reads.is_empty() || writes_done < 40) && Instant::now() < deadline {
        for r in pipe
            .wait(Duration::from_millis(50))
            .expect("pipelined wait")
        {
            if r.seq & READ_FLAG != 0 {
                assert!(reads.remove(&r.seq), "duplicate or unknown read completion");
                assert!(r.applied, "read completions are always applied");
                assert!(r.value.is_some(), "mixed key was written before the read");
            } else {
                writes_done += 1;
            }
        }
    }
    assert!(
        reads.is_empty() && writes_done == 40,
        "mixed traffic incomplete: {} reads pending, {writes_done}/40 writes",
        reads.len()
    );

    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Transactions: CAS exactly-once, spanning-op rejection, cross-shard 2PC

/// A raw framed connection to a gateway — lets tests retransmit the
/// *same* `(client, seq)` byte-for-byte, on the same connection and on a
/// fresh one, which no well-behaved client wrapper would do voluntarily.
/// A leadership move mid-test redirects like any client would see; the
/// connection then follows it (the retransmit invariants under test are
/// connection-independent, so this only loses the same-socket flavor in
/// the rare run where an election lands mid-exchange).
struct RawConn {
    addrs: Vec<(NodeId, SocketAddr)>,
    current: usize,
    stream: std::net::TcpStream,
}

impl RawConn {
    fn connect(addrs: Vec<(NodeId, SocketAddr)>, at: NodeId) -> RawConn {
        let current = addrs.iter().position(|(p, _)| *p == at).unwrap_or(0);
        let stream = Self::dial(addrs[current].1);
        RawConn {
            addrs,
            current,
            stream,
        }
    }

    fn dial(addr: SocketAddr) -> std::net::TcpStream {
        let stream = std::net::TcpStream::connect(addr).expect("connect gateway");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
    }

    /// Send `msg` and read frames until a `Reply` for `seq` arrives,
    /// following redirects (reconnect + resend) if leadership moved.
    fn ask(&mut self, msg: &kvstore::KvWire, seq: u64) -> kvstore::KvResult {
        use omnipaxos::wire::Wire;
        let deadline = Instant::now() + Duration::from_secs(20);
        'resend: while Instant::now() < deadline {
            let mut w = &self.stream;
            net::frame::write_frame(&mut w, net::frame::kind::KV, &msg.to_bytes())
                .expect("send frame");
            let mut r = &self.stream;
            loop {
                if Instant::now() >= deadline {
                    break;
                }
                let f = net::frame::read_frame(&mut r).expect("read frame");
                if f.kind != net::frame::kind::KV {
                    continue;
                }
                match kvstore::KvWire::from_bytes(&f.payload) {
                    Ok(kvstore::KvWire::Reply(res)) if res.seq == seq => return res,
                    Ok(kvstore::KvWire::Redirect { leader })
                    | Ok(kvstore::KvWire::ShardRedirect { leader, .. }) => {
                        if let Some(i) = self.addrs.iter().position(|(p, _)| *p == leader) {
                            self.current = i;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                        self.stream = Self::dial(self.addrs[self.current].1);
                        continue 'resend;
                    }
                    Ok(kvstore::KvWire::Retry { .. }) => {
                        std::thread::sleep(Duration::from_millis(50));
                        continue 'resend;
                    }
                    Ok(_) | Err(_) => continue,
                }
            }
        }
        panic!("no reply for seq {seq} within 20s");
    }
}

/// The session table must pin a CAS verdict: a duplicate retransmission
/// of the latest seq — through the gateway's duplicate-exemption path on
/// the same connection AND from a brand-new connection — replays the
/// original verdict verbatim without re-executing anything.
#[test]
fn retried_cas_replays_original_verdict_through_the_gateway() {
    let cluster = Cluster::boot(&[1, 2, 3], &[]);
    let leader = cluster.wait_for_leader();

    // Seed the key under a different client so the CAS client's seq
    // space starts clean.
    let mut seeder = KvClient::new(0xC11E60, cluster.client_addrs());
    seeder.put("cas-key", 5).expect("seed put");

    let client = 0xC11E61u64;
    let cas_fail = kvstore::KvWire::Request(KvCommand {
        client,
        seq: 1,
        op: KvOp::Cas {
            key: "cas-key".into(),
            expect: Some(999), // mismatch: actual is 5
            set: Some(777),
        },
    });
    let mut conn = RawConn::connect(cluster.client_addrs(), leader);
    let first = conn.ask(&cas_fail, 1);
    assert!(!first.applied, "mismatched CAS must fail");
    assert_eq!(first.value, Some(5), "failed CAS reports the actual value");

    // Same connection: the gateway's duplicate exemption admits the
    // retransmit of an already-admitted seq, and the session table
    // replays the cached verdict.
    let replay = conn.ask(&cas_fail, 1);
    assert_eq!((replay.value, replay.applied), (first.value, first.applied));

    // Fresh connection (client crashed and came back): same verdict.
    let mut conn2 = RawConn::connect(cluster.client_addrs(), leader);
    let replay2 = conn2.ask(&cas_fail, 1);
    assert_eq!(
        (replay2.value, replay2.applied),
        (first.value, first.applied)
    );

    // A successful *effectful* op replays applied=true without
    // re-executing: Add is not idempotent, so a re-execution would be
    // visible in the value.
    let add = kvstore::KvWire::Request(KvCommand {
        client,
        seq: 2,
        op: KvOp::Add {
            key: "cas-key".into(),
            delta: 7,
        },
    });
    let added = conn2.ask(&add, 2);
    assert!(added.applied);
    assert_eq!(added.value, Some(12));
    let added_replay = conn2.ask(&add, 2);
    assert!(added_replay.applied, "latest-seq duplicate replays applied");
    assert_eq!(added_replay.value, Some(12), "replay must not re-execute");
    let mut conn3 = RawConn::connect(cluster.client_addrs(), leader);
    let added_replay2 = conn3.ask(&add, 2);
    assert_eq!(added_replay2.value, Some(12), "replay must not re-execute");

    assert_eq!(seeder.read("cas-key").expect("read"), Some(12));
    cluster.shutdown();
}

/// Two keys guaranteed to live on different shards (panics if the key
/// space is too small to produce one, which it never is for 4 shards).
fn cross_shard_keys(n_shards: usize) -> (String, String) {
    let a = "acct0".to_string();
    let sa = kvstore::shard_of_key(&a, n_shards);
    for i in 1..64 {
        let b = format!("acct{i}");
        if kvstore::shard_of_key(&b, n_shards) != sa {
            return (a, b);
        }
    }
    panic!("no cross-shard key pair found");
}

/// Regression for the PR 7 routing hazard: a plain multi-key op whose
/// keys span shards must be rejected with a typed error — not silently
/// routed by its first key — and must leave BOTH shards untouched.
#[test]
fn spanning_transfer_is_rejected_and_touches_neither_shard() {
    let shards = 4usize;
    let cluster = Cluster::boot_sharded(&[1, 2, 3], shards);
    wait(Duration::from_secs(20), "leaders per shard", || {
        let l = fetch_shards(&cluster.client_addrs(), Duration::from_millis(500)).ok()?;
        (l.len() == shards && l.iter().all(|&p| p != 0)).then_some(())
    });
    let (from, to) = cross_shard_keys(shards);

    let mut sharded =
        ShardedKvClient::bootstrap(0xC11E62, cluster.client_addrs(), Duration::from_millis(500))
            .expect("bootstrap");
    sharded.submit(KvOp::Put {
        key: from.clone(),
        value: 100,
    });
    sharded.submit(KvOp::Put {
        key: to.clone(),
        value: 50,
    });
    sharded.drain(Duration::from_secs(30)).expect("fund");

    // Submit the spanning op raw, bypassing the client-side routing that
    // would have turned it into a transaction.
    let (_, token) = sharded.submit(KvOp::Transfer {
        from: from.clone(),
        to: to.clone(),
        amount: 30,
    });
    let rejected = wait(Duration::from_secs(10), "a CrossShard rejection", || {
        sharded.pump().expect("pump");
        let r = sharded.take_cross_shard_rejections();
        (!r.is_empty()).then_some(r)
    });
    assert_eq!(rejected.len(), 1);
    assert_eq!(rejected[0].1, token, "the rejected token is the transfer");
    assert_eq!(sharded.in_flight(), 0, "rejection removes the op");

    // Both shards untouched: balances exactly as funded. Seqs are
    // per-shard, so completions match on the (shard, seq) pair.
    let rf = sharded.submit_read(&from);
    let rt = sharded.submit_read(&to);
    let reads = sharded.drain(Duration::from_secs(30)).expect("read back");
    for (sh, r) in &reads {
        if (*sh, r.seq) == rf {
            assert_eq!(r.value, Some(100), "`from` must be untouched");
        }
        if (*sh, r.seq) == rt {
            assert_eq!(r.value, Some(50), "`to` must be untouched");
        }
    }

    // The synchronous client surfaces the same rejection as a hard error.
    let mut sync = KvClient::new(0xC11E63, cluster.client_addrs());
    let err = sync
        .op(KvOp::Transfer {
            from: from.clone(),
            to: to.clone(),
            amount: 10,
        })
        .expect_err("spanning transfer must error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    cluster.shutdown();
}

/// End-to-end cross-shard 2PC: transfers between accounts on different
/// shards commit when funded and abort when not, conserving the total
/// balance either way; `TxnStatus` answers `Committed` for the decided
/// transaction from any gateway.
#[test]
fn cross_shard_transactions_commit_abort_and_conserve_balance() {
    let shards = 4usize;
    let cluster = Cluster::boot_sharded(&[1, 2, 3], shards);
    wait(Duration::from_secs(20), "leaders per shard", || {
        let l = fetch_shards(&cluster.client_addrs(), Duration::from_millis(500)).ok()?;
        (l.len() == shards && l.iter().all(|&p| p != 0)).then_some(())
    });
    let (a, b) = cross_shard_keys(shards);

    let client_id = 0xC11E64u64;
    let mut sharded = ShardedKvClient::bootstrap(
        client_id,
        cluster.client_addrs(),
        Duration::from_millis(500),
    )
    .expect("bootstrap");
    sharded.submit(KvOp::Put {
        key: a.clone(),
        value: 100,
    });
    sharded.submit(KvOp::Put {
        key: b.clone(),
        value: 50,
    });
    sharded.drain(Duration::from_secs(30)).expect("fund");

    // Funded cross-shard transfer: commits.
    let (_, token) = sharded.transfer(&a, &b, 30);
    assert!(token & net::client::TXN_FLAG != 0, "cross-shard ⇒ txn");
    let done = sharded.drain(Duration::from_secs(30)).expect("transfer");
    let res = done
        .iter()
        .map(|(_, r)| r)
        .find(|r| r.seq == token)
        .expect("transfer completion");
    assert!(res.applied, "funded transfer must commit");
    assert_eq!(res.value, Some(1));

    // Overdraft: aborts, and the verdict is a normal completion.
    let (_, token2) = sharded.transfer(&a, &b, 1_000_000);
    let done = sharded.drain(Duration::from_secs(30)).expect("overdraft");
    let res2 = done
        .iter()
        .map(|(_, r)| r)
        .find(|r| r.seq == token2)
        .expect("overdraft completion");
    assert!(!res2.applied, "overdraft must abort");
    assert_eq!(res2.value, Some(0));

    // Balances moved exactly once, total conserved. Seqs are per-shard,
    // so completions match on the (shard, seq) pair.
    let ra = sharded.submit_read(&a);
    let rb = sharded.submit_read(&b);
    let reads = sharded.drain(Duration::from_secs(30)).expect("read back");
    let read_of = |tok: (u32, u64)| {
        reads
            .iter()
            .find(|(sh, r)| (*sh, r.seq) == tok)
            .and_then(|(_, r)| r.value)
    };
    assert_eq!(read_of(ra), Some(70), "a: 100 - 30");
    assert_eq!(read_of(rb), Some(80), "b: 50 + 30");

    // Every gateway that hosts a participant shard reports Committed.
    let mut sync = KvClient::new(0xC11E65, cluster.client_addrs());
    assert_eq!(
        sync.txn_status(client_id, token).expect("status"),
        kvstore::TxnState::Committed
    );

    // The synchronous txn path works end to end too.
    let spec = kvstore::TxnSpec::transfer(&a, &b, 10);
    let res3 = sync.txn(spec).expect("sync txn");
    assert!(res3.applied, "funded sync transfer commits");

    // The client learns the verdict when the decision is recorded; the
    // commit records to the participant shards propagate asynchronously.
    // Wait for the locks to release: a plain write to a locked key
    // reports applied=false, so a zero-delta Add succeeding on both
    // keys proves both shards are unlocked.
    wait(Duration::from_secs(15), "prepare locks released", || {
        let ta = sharded.submit(KvOp::Add {
            key: a.clone(),
            delta: 0,
        });
        let tb = sharded.submit(KvOp::Add {
            key: b.clone(),
            delta: 0,
        });
        let done = sharded.drain(Duration::from_secs(10)).ok()?;
        let ok = |tok: (u32, u64)| {
            done.iter()
                .find(|(sh, r)| (*sh, r.seq) == tok)
                .is_some_and(|(_, r)| r.applied)
        };
        (ok(ta) && ok(tb)).then_some(())
    });
    // The leaders answered; give the followers a few heartbeats to
    // apply the same commit records before inspecting them directly.
    std::thread::sleep(Duration::from_millis(500));

    // No orphaned locks anywhere once everything is decided.
    let servers = cluster.shutdown();
    for (pid, s) in &servers {
        for sh in 0..shards as u32 {
            let sm = s.node().shard(sh).state_machine();
            assert!(
                sm.locks().is_empty(),
                "node {pid} shard {sh} left locks: {:?}",
                sm.locks()
            );
            assert!(
                sm.prepared().is_empty(),
                "node {pid} shard {sh} left prepares"
            );
        }
    }
}
