//! Codec property tests plus a committed byte corpus.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Round-trip**: every message variant the transport can carry
//!    (`ServiceMsg<KvCommand>` with all `PaxosMsg`/`BleMsg` variants
//!    inside, plus the `KvWire` client protocol) survives frame encode →
//!    frame decode → payload decode unchanged.
//! 2. **Malice and damage**: truncation at *every* byte boundary and a
//!    bit flip at *every* bit position produce a typed error — never a
//!    panic, never a silently wrong decode.
//! 3. **Stability**: the committed corpus files under `tests/corpus/`
//!    byte-match freshly encoded frames, so an accidental wire-format
//!    change fails CI instead of silently breaking cross-version
//!    clusters. Regenerate deliberately with:
//!    `CORPUS_WRITE=1 cargo test -p net --test codec_corpus`.

use kvstore::{KvCommand, KvOp, KvResult, KvWire, ReadMode, TxnGuard, TxnSpec, TxnState, WriteOp};
use net::client::{READ_FLAG, TXN_FLAG};
use net::frame::{self, kind, FrameError};
use omnipaxos::messages::*;
use omnipaxos::wire::{checksum_parts, Wire, WireError};
use omnipaxos::{Ballot, LogEntry, OmniMessage, ServiceMsg, StopSign};
use std::path::PathBuf;

fn cmd(client: u64, seq: u64, op: KvOp) -> KvCommand {
    KvCommand { client, seq, op }
}

fn entry(seq: u64) -> LogEntry<KvCommand> {
    LogEntry::Normal(cmd(
        7,
        seq,
        KvOp::Put {
            key: format!("k{seq}"),
            value: seq as i64,
        },
    ))
}

/// Every `PaxosMsg` variant, wrapped the way the transport ships them.
fn paxos_samples() -> Vec<(String, ServiceMsg<KvCommand>)> {
    let b = Ballot::new(3, 1, 2);
    let msgs: Vec<(&str, PaxosMsg<KvCommand>)> = vec![
        ("prepare_req", PaxosMsg::PrepareReq),
        (
            "prepare",
            PaxosMsg::Prepare(Prepare {
                n: b,
                decided_idx: 7,
                accepted_rnd: Ballot::bottom(),
                log_idx: 9,
            }),
        ),
        (
            "promise",
            PaxosMsg::Promise(Promise {
                n: b,
                accepted_rnd: b,
                log_idx: 5,
                decided_idx: 3,
                suffix_start: 3,
                suffix: vec![entry(1), LogEntry::stopsign(StopSign::new(2, vec![1, 2]))],
                snapshot: Some((3, vec![1u8, 2, 3].into())),
            }),
        ),
        (
            "accept_sync",
            PaxosMsg::AcceptSync(AcceptSync {
                n: b,
                sync_idx: 2,
                decided_idx: 1,
                suffix: vec![entry(10), entry(11)].into(),
            }),
        ),
        (
            "accept_decide",
            PaxosMsg::AcceptDecide(AcceptDecide {
                n: b,
                start_idx: 4,
                decided_idx: 4,
                entries: vec![entry(42)].into(),
            }),
        ),
        (
            "accepted",
            PaxosMsg::Accepted(Accepted { n: b, log_idx: 5 }),
        ),
        (
            "decide",
            PaxosMsg::Decide(Decide {
                n: b,
                decided_idx: 5,
            }),
        ),
        (
            "snapshot_meta",
            PaxosMsg::SnapshotMeta(SnapshotMeta {
                n: b,
                snapshot_idx: 100,
                total_bytes: 4096,
            }),
        ),
        (
            "snapshot_chunk",
            PaxosMsg::SnapshotChunk(SnapshotChunk {
                n: b,
                snapshot_idx: 100,
                offset: 512,
                total_bytes: 4096,
                data: vec![9u8; 64].into(),
            }),
        ),
        (
            "snapshot_ack",
            PaxosMsg::SnapshotAck(SnapshotAck {
                n: b,
                snapshot_idx: 100,
                received: 576,
            }),
        ),
        (
            "proposal_forward",
            PaxosMsg::ProposalForward(vec![entry(1), entry(2)]),
        ),
        (
            "read_index_req",
            PaxosMsg::ReadIndexReq(ReadIndexReq { token: 77 }),
        ),
        (
            "read_index_resp",
            PaxosMsg::ReadIndexResp(ReadIndexResp { token: 77, idx: 41 }),
        ),
        (
            "read_check",
            PaxosMsg::ReadCheck(ReadCheck { n: b, seq: 6 }),
        ),
        (
            "read_check_ack",
            PaxosMsg::ReadCheckAck(ReadCheckAck { n: b, seq: 6 }),
        ),
    ];
    msgs.into_iter()
        .map(|(name, m)| {
            (
                format!("paxos_{name}"),
                ServiceMsg::Omni {
                    config_id: 1,
                    msg: OmniMessage::Paxos(Message::with(1, 2, m)),
                },
            )
        })
        .collect()
}

fn service_samples() -> Vec<(String, ServiceMsg<KvCommand>)> {
    let b = Ballot::new(2, 0, 1);
    let mut out: Vec<(String, ServiceMsg<KvCommand>)> = vec![
        (
            "ble_heartbeat_request".into(),
            ServiceMsg::Omni {
                config_id: 1,
                msg: OmniMessage::Ble(BleMessage {
                    from: 1,
                    to: 2,
                    msg: BleMsg::HeartbeatRequest { round: 4 },
                }),
            },
        ),
        (
            "ble_heartbeat_reply".into(),
            ServiceMsg::Omni {
                config_id: 1,
                msg: OmniMessage::Ble(BleMessage {
                    from: 2,
                    to: 1,
                    msg: BleMsg::HeartbeatReply {
                        round: 4,
                        ballot: b,
                        quorum_connected: true,
                    },
                }),
            },
        ),
        (
            "ble_heartbeat_reply_lease".into(),
            ServiceMsg::Omni {
                config_id: 1,
                msg: OmniMessage::Ble(BleMessage {
                    from: 2,
                    to: 1,
                    msg: BleMsg::HeartbeatReplyLease {
                        round: 4,
                        ballot: b,
                        quorum_connected: true,
                        lease: true,
                    },
                }),
            },
        ),
        (
            "svc_start_config".into(),
            ServiceMsg::StartConfig {
                ss: StopSign::new(2, vec![1, 2, 4]),
                old_nodes: vec![1, 2, 3],
                log_len: 100,
                snap_idx: 40,
            },
        ),
        (
            "svc_config_started".into(),
            ServiceMsg::ConfigStarted { config_id: 2 },
        ),
        (
            "svc_segment_req".into(),
            ServiceMsg::SegmentReq { from: 0, to: 50 },
        ),
        (
            "svc_segment_resp".into(),
            ServiceMsg::SegmentResp {
                start: 0,
                entries: vec![
                    cmd(1, 1, KvOp::Delete { key: "a".into() }),
                    cmd(
                        1,
                        2,
                        KvOp::Transfer {
                            from: "a".into(),
                            to: "b".into(),
                            amount: 10,
                        },
                    ),
                ]
                .into(),
                served_to: 2,
                requested_to: 50,
            },
        ),
        ("svc_snap_req".into(), ServiceMsg::SnapReq { offset: 128 }),
        (
            "svc_snap_resp".into(),
            ServiceMsg::SnapResp {
                idx: 40,
                offset: 128,
                chunk: vec![5u8; 32].into(),
                total: 4096,
            },
        ),
        // Multi-group envelope: a non-zero group wrapping replication
        // traffic. Bare messages above double as group 0, so the
        // pre-envelope corpus files pin backward compatibility.
        (
            "svc_group_omni".into(),
            ServiceMsg::Group {
                group: 3,
                msg: Box::new(ServiceMsg::Omni {
                    config_id: 2,
                    msg: OmniMessage::Paxos(Message::with(
                        1,
                        2,
                        PaxosMsg::AcceptDecide(AcceptDecide {
                            n: b,
                            start_idx: 12,
                            decided_idx: 11,
                            entries: vec![entry(12)].into(),
                        }),
                    )),
                }),
            },
        ),
        (
            "svc_group_segment_req".into(),
            ServiceMsg::Group {
                group: 1,
                msg: Box::new(ServiceMsg::SegmentReq { from: 5, to: 25 }),
            },
        ),
        // Shared-BLE carrier: several groups' heartbeats to one peer in a
        // single frame, including an empty carrier (a legal flush).
        (
            "svc_group_ble".into(),
            ServiceMsg::GroupBle {
                beats: vec![
                    (
                        0,
                        1,
                        BleMessage {
                            from: 1,
                            to: 2,
                            msg: BleMsg::HeartbeatRequest { round: 9 },
                        },
                    ),
                    (
                        2,
                        1,
                        BleMessage {
                            from: 1,
                            to: 2,
                            msg: BleMsg::HeartbeatReply {
                                round: 9,
                                ballot: b,
                                quorum_connected: true,
                            },
                        },
                    ),
                    (
                        3,
                        4,
                        BleMessage {
                            from: 1,
                            to: 2,
                            msg: BleMsg::HeartbeatReply {
                                round: 9,
                                ballot: Ballot::bottom(),
                                quorum_connected: false,
                            },
                        },
                    ),
                ],
            },
        ),
        (
            "svc_group_ble_empty".into(),
            ServiceMsg::GroupBle { beats: vec![] },
        ),
        // Lease grants ride the shared-BLE carrier like any other reply.
        (
            "svc_group_ble_lease".into(),
            ServiceMsg::GroupBle {
                beats: vec![(
                    1,
                    2,
                    BleMessage {
                        from: 2,
                        to: 1,
                        msg: BleMsg::HeartbeatReplyLease {
                            round: 11,
                            ballot: b,
                            quorum_connected: true,
                            lease: false,
                        },
                    },
                )],
            },
        ),
    ];
    out.extend(paxos_samples());
    out
}

fn kv_samples() -> Vec<(String, KvWire)> {
    vec![
        (
            "kv_request".into(),
            KvWire::Request(cmd(
                9,
                1,
                KvOp::Add {
                    key: "ctr".into(),
                    delta: -3,
                },
            )),
        ),
        (
            "kv_reply".into(),
            KvWire::Reply(KvResult {
                client: 9,
                seq: 1,
                value: Some(-3),
                applied: true,
            }),
        ),
        ("kv_redirect".into(), KvWire::Redirect { leader: 2 }),
        ("kv_retry".into(), KvWire::Retry { seq: 1 }),
        (
            "kv_shard_redirect".into(),
            KvWire::ShardRedirect {
                shard: 3,
                leader: 2,
            },
        ),
        ("kv_shards_req".into(), KvWire::ShardsReq),
        (
            "kv_shards".into(),
            KvWire::Shards {
                leaders: vec![1, 2, 0, 3],
            },
        ),
        (
            "kv_read_lease".into(),
            KvWire::ReadRequest {
                mode: ReadMode::Lease,
                client: READ_FLAG | 9,
                seq: READ_FLAG | 4,
                key: "ctr".into(),
            },
        ),
        (
            "kv_read_index".into(),
            KvWire::ReadRequest {
                mode: ReadMode::ReadIndex,
                client: READ_FLAG | 9,
                seq: READ_FLAG | 5,
                key: String::new(),
            },
        ),
        (
            "kv_read_log".into(),
            KvWire::ReadRequest {
                mode: ReadMode::Log,
                client: 9,
                seq: 6,
                key: "deep/nested key".into(),
            },
        ),
        // Transaction subsystem ops, each as a plain Request frame: the
        // log-entry encodings are what replicas and WALs persist.
        (
            "kv_cas".into(),
            KvWire::Request(cmd(
                9,
                7,
                KvOp::Cas {
                    key: "ctr".into(),
                    expect: Some(-3),
                    set: None,
                },
            )),
        ),
        (
            "kv_cas_insert".into(),
            KvWire::Request(cmd(
                9,
                8,
                KvOp::Cas {
                    key: "fresh".into(),
                    expect: None,
                    set: Some(1),
                },
            )),
        ),
        (
            "kv_write_batch".into(),
            KvWire::Request(cmd(
                9,
                9,
                KvOp::WriteBatch {
                    writes: vec![
                        WriteOp::Put {
                            key: "a".into(),
                            value: 1,
                        },
                        WriteOp::Add {
                            key: "b".into(),
                            delta: -2,
                        },
                        WriteOp::Delete { key: "c".into() },
                    ],
                },
            )),
        ),
        (
            "kv_txn_prepare".into(),
            KvWire::Request(cmd(
                (1 << 62) | 1, // coordinator identity: TXN_CLIENT_FLAG | pid
                1,
                KvOp::TxnPrepare {
                    txn: (9, TXN_FLAG | 1),
                    coord_shard: 0,
                    participants: vec![0, 2],
                    guards: vec![TxnGuard::MinValue {
                        key: "acct0".into(),
                        min: 30,
                    }],
                    writes: vec![
                        WriteOp::Add {
                            key: "acct0".into(),
                            delta: -30,
                        },
                        WriteOp::Add {
                            key: "acct1".into(),
                            delta: 30,
                        },
                    ],
                },
            )),
        ),
        (
            "kv_txn_prepare_equals".into(),
            KvWire::Request(cmd(
                (1 << 62) | 2,
                2,
                KvOp::TxnPrepare {
                    txn: (9, TXN_FLAG | 2),
                    coord_shard: 1,
                    participants: vec![1],
                    guards: vec![TxnGuard::Equals {
                        key: "ver".into(),
                        expect: Some(4),
                    }],
                    writes: vec![WriteOp::Put {
                        key: "ver".into(),
                        value: 5,
                    }],
                },
            )),
        ),
        (
            "kv_txn_decide".into(),
            KvWire::Request(cmd(
                (1 << 62) | 1,
                3,
                KvOp::TxnDecide {
                    txn: (9, TXN_FLAG | 1),
                    commit: true,
                },
            )),
        ),
        (
            "kv_txn_commit".into(),
            KvWire::Request(cmd(
                (1 << 62) | 1,
                4,
                KvOp::TxnCommit {
                    txn: (9, TXN_FLAG | 1),
                },
            )),
        ),
        (
            "kv_txn_abort".into(),
            KvWire::Request(cmd(
                (1 << 62) | 1,
                5,
                KvOp::TxnAbort {
                    txn: (9, TXN_FLAG | 2),
                },
            )),
        ),
        // Client-facing transaction frames.
        (
            "kv_txn_request".into(),
            KvWire::TxnRequest {
                client: 9,
                seq: TXN_FLAG | 1,
                spec: TxnSpec::transfer("acct0", "acct1", 30),
            },
        ),
        (
            "kv_txn_request_empty".into(),
            KvWire::TxnRequest {
                client: 9,
                seq: TXN_FLAG | 3,
                spec: TxnSpec {
                    guards: vec![],
                    writes: vec![],
                },
            },
        ),
        (
            "kv_txn_status_req".into(),
            KvWire::TxnStatusReq {
                client: 9,
                seq: TXN_FLAG | 1,
            },
        ),
        (
            "kv_txn_status_committed".into(),
            KvWire::TxnStatus {
                client: 9,
                seq: TXN_FLAG | 1,
                state: TxnState::Committed,
            },
        ),
        (
            "kv_txn_status_unknown".into(),
            KvWire::TxnStatus {
                client: 9,
                seq: TXN_FLAG | 9,
                state: TxnState::Unknown,
            },
        ),
        ("kv_cross_shard".into(), KvWire::CrossShard { seq: 11 }),
    ]
}

/// All sample frames: (name, frame bytes, frame kind).
fn sample_frames() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for (name, msg) in service_samples() {
        out.push((name, frame::encode_frame(kind::MSG, &msg.to_bytes())));
    }
    for (name, msg) in kv_samples() {
        out.push((name, frame::encode_frame(kind::KV, &msg.to_bytes())));
    }
    out
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_variant_roundtrips_through_a_frame() {
    for (name, msg) in service_samples() {
        let bytes = frame::encode_frame(kind::MSG, &msg.to_bytes());
        let (f, used) = frame::decode_frame(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(used, bytes.len(), "{name}");
        let back = ServiceMsg::<KvCommand>::from_bytes(&f.payload)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, msg, "{name}");
    }
    for (name, msg) in kv_samples() {
        let bytes = frame::encode_frame(kind::KV, &msg.to_bytes());
        let (f, _) = frame::decode_frame(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back = KvWire::from_bytes(&f.payload).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, msg, "{name}");
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    for (name, bytes) in sample_frames() {
        for n in 0..bytes.len() {
            match frame::decode_frame(&bytes[..n]) {
                Err(FrameError::Truncated) => {}
                other => panic!("{name} prefix {n}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn bit_flips_never_decode_and_never_panic() {
    for (name, bytes) in sample_frames() {
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                match frame::decode_frame(&flipped) {
                    // A flip may never yield the original frame back; any
                    // typed error is acceptable, a panic is not.
                    Err(_) => {}
                    Ok((f, _)) => {
                        // Only the kind byte is outside the decoded
                        // payload's own self-checks but inside the CRC —
                        // so an Ok here can only be... nothing: the CRC
                        // covers version, kind, length and payload alike.
                        panic!(
                            "{name}: flip at byte {byte} bit {bit} decoded as {:?}",
                            f.kind
                        )
                    }
                }
            }
        }
    }
}

#[test]
fn nested_group_envelope_is_a_typed_error() {
    // Group-in-Group is not a legal wire shape (one level of multiplexing
    // only); the codec must reject it on decode rather than recurse.
    let nested: ServiceMsg<KvCommand> = ServiceMsg::Group {
        group: 1,
        msg: Box::new(ServiceMsg::Group {
            group: 2,
            msg: Box::new(ServiceMsg::SegmentReq { from: 0, to: 1 }),
        }),
    };
    let bytes = nested.to_bytes();
    match ServiceMsg::<KvCommand>::from_bytes(&bytes) {
        Err(e) => assert!(!FrameError::from(e).is_fatal()),
        Ok(m) => panic!("nested envelope decoded as {:?}", m.discriminant()),
    }
}

#[test]
fn unknown_payload_discriminant_is_droppable_not_fatal() {
    // A well-formed frame whose payload starts with an unassigned
    // discriminant: the frame layer accepts it, the codec rejects it with
    // a typed error, and the transport's policy for that error is
    // drop-and-count (FrameError::Wire is non-fatal).
    let payload = vec![0xEEu8, 1, 2, 3];
    let bytes = frame::encode_frame(kind::MSG, &payload);
    let (f, _) = frame::decode_frame(&bytes).expect("envelope is fine");
    match ServiceMsg::<KvCommand>::from_bytes(&f.payload) {
        Err(e @ WireError::UnknownDiscriminant { .. }) => {
            assert!(!FrameError::from(e).is_fatal());
        }
        other => panic!("expected UnknownDiscriminant, got {other:?}"),
    }
}

#[test]
fn future_version_is_droppable_when_sealed() {
    let (_, bytes) = &sample_frames()[0];
    let mut future = bytes.clone();
    future[4] = 2; // bump version, then re-seal the checksum
    let n = future.len();
    let crc = checksum_parts(&[&future[4..n - 4]]);
    future[n - 4..].copy_from_slice(&crc.to_le_bytes());
    match frame::decode_frame(&future) {
        Err(e @ FrameError::BadVersion(2)) => assert!(!e.is_fatal()),
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

/// The committed corpus: `ok_*.bin` must decode to exactly today's
/// encodings; `bad_*.bin` must fail with a typed error. Regenerate with
/// `CORPUS_WRITE=1`.
#[test]
fn committed_corpus_is_stable() {
    let dir = corpus_dir();
    let frames = sample_frames();
    let mut bad: Vec<(String, Vec<u8>)> = Vec::new();
    {
        let (_, ok) = &frames[0];
        let mut truncated = ok.clone();
        truncated.truncate(ok.len() - 3);
        bad.push(("bad_truncated".into(), truncated));
        let mut magic = ok.clone();
        magic[0] = b'N';
        bad.push(("bad_magic".into(), magic));
        let mut flip = ok.clone();
        let mid = flip.len() / 2;
        flip[mid] ^= 0x10;
        bad.push(("bad_bitflip".into(), flip));
        let mut huge = ok.clone();
        huge[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        bad.push(("bad_huge_len".into(), huge));
        let mut ver = ok.clone();
        ver[4] = 9;
        let n = ver.len();
        let crc = checksum_parts(&[&ver[4..n - 4]]);
        ver[n - 4..].copy_from_slice(&crc.to_le_bytes());
        bad.push(("bad_version_sealed".into(), ver));
    }

    if std::env::var("CORPUS_WRITE").is_ok() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in frames.iter() {
            std::fs::write(dir.join(format!("ok_{name}.bin")), bytes).unwrap();
        }
        for (name, bytes) in &bad {
            std::fs::write(dir.join(format!("{name}.bin")), bytes).unwrap();
        }
        return;
    }

    for (name, bytes) in frames.iter() {
        let path = dir.join(format!("ok_{name}.bin"));
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing corpus file {path:?}: {e} (run CORPUS_WRITE=1)"));
        assert_eq!(
            &committed, bytes,
            "wire format drifted for {name}; if intentional, bump WIRE_VERSION and regenerate"
        );
        let (f, _) = frame::decode_frame(&committed).unwrap();
        assert!(
            ServiceMsg::<KvCommand>::from_bytes(&f.payload).is_ok()
                || KvWire::from_bytes(&f.payload).is_ok()
        );
    }
    for (name, bytes) in &bad {
        let path = dir.join(format!("{name}.bin"));
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing corpus file {path:?}: {e} (run CORPUS_WRITE=1)"));
        assert_eq!(&committed, bytes, "bad-corpus drifted for {name}");
        assert!(
            frame::decode_frame(&committed).is_err(),
            "{name} must not decode"
        );
    }
}
