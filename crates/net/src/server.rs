//! The deployable kv server: a [`KvNode`] driven over any
//! [`NetworkLink`] backend, plus the TCP gateway clients speak to.
//!
//! [`KvServer`] is deliberately sans-I/O-loop: [`KvServer::pump`] runs
//! one poll→handle→reply→send cycle and [`KvServer::tick`] advances
//! protocol timers. The binary wraps them in a thread ([`KvServer::run`]);
//! the deterministic tests call them directly, interleaved with simulated
//! time — which is how the sim and TCP backends are shown to agree.
//!
//! Session semantics are wired here: a [`LinkEvent::SessionEstablished`]
//! calls `reconnected()` on the replica, which re-syncs state with a
//! `PrepareReq` (paper §4.1.3) because messages from the previous session
//! may be lost.

use crate::frame::{self, kind, FrameError};
use crate::link::{LinkEvent, NetworkLink};
use crate::tcp::lock_unpoisoned;
use kvstore::{KvNode, KvWire};
use omnipaxos::wire::Wire;
use omnipaxos::{OmniMessage, PaxosMsg, ServiceMsg};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of one client connection on the gateway.
pub type ConnId = u64;

/// Accepts client connections and shuttles [`KvWire`] frames.
///
/// Replies are written synchronously from the server thread (client
/// traffic is request/reply, so there is no backpressure problem a
/// writer thread would solve); requests arrive via per-connection reader
/// threads.
pub struct ClientGateway {
    rx: Receiver<(ConnId, KvWire)>,
    conns: Arc<Mutex<HashMap<ConnId, TcpStream>>>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl ClientGateway {
    /// Serve client connections on `listener`.
    pub fn bind(listener: TcpListener) -> std::io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel();
        let conns: Arc<Mutex<HashMap<ConnId, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let conns = Arc::clone(&conns);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("kv-gateway".into())
                .spawn(move || gateway_accept(listener, tx, conns, shutdown))?
        };
        Ok(ClientGateway {
            rx,
            conns,
            shutdown,
            threads: vec![accept],
            local_addr,
        })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Drain requests received since the last call.
    pub fn poll(&mut self) -> Vec<(ConnId, KvWire)> {
        self.rx.try_iter().collect()
    }

    /// Send `msg` to a client connection; dropped connections are ignored
    /// (the client's retry loop owns recovery).
    pub fn reply(&mut self, conn: ConnId, msg: &KvWire) {
        let mut conns = lock_unpoisoned(&self.conns);
        if let Some(stream) = conns.get_mut(&conn) {
            let mut w = &*stream;
            if frame::write_frame(&mut w, kind::KV, &msg.to_bytes()).is_err() {
                conns.remove(&conn);
            }
        }
    }
}

impl Drop for ClientGateway {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, s) in lock_unpoisoned(&self.conns).drain() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn gateway_accept(
    listener: TcpListener,
    tx: Sender<(ConnId, KvWire)>,
    conns: Arc<Mutex<HashMap<ConnId, TcpStream>>>,
    shutdown: Arc<AtomicBool>,
) {
    let next_id = AtomicU64::new(1);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                // fd exhaustion can fail the dup; drop the connection and
                // let the client's retry loop come back when it clears.
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                lock_unpoisoned(&conns).insert(id, stream);
                let tx = tx.clone();
                let conns = Arc::clone(&conns);
                // Reader threads exit on connection error; on gateway
                // drop the sockets are shut down, which unblocks them.
                let _ = std::thread::Builder::new()
                    .name(format!("kv-conn-{id}"))
                    .spawn(move || {
                        let mut r = &reader;
                        loop {
                            match frame::read_frame(&mut r) {
                                Ok(f) if f.kind == kind::KV => {
                                    match KvWire::from_bytes(&f.payload) {
                                        Ok(msg) => {
                                            if tx.send((id, msg)).is_err() {
                                                break;
                                            }
                                        }
                                        Err(_) => continue, // drop, stay in sync
                                    }
                                }
                                Ok(_) => continue, // unknown kind: drop
                                Err(e) if !FrameError::is_fatal(&e) => continue,
                                Err(_) => break,
                            }
                        }
                        lock_unpoisoned(&conns).remove(&id);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Default bound on commands in flight per server; past it new requests
/// are shed with [`KvWire::Retry`] instead of growing the queue.
pub const DEFAULT_MAX_PENDING: usize = 4096;

/// One kv server: replica + replication link + optional client gateway.
pub struct KvServer<L> {
    node: KvNode,
    link: Option<L>,
    gateway: Option<ClientGateway>,
    /// Commands in flight for a client: `(client, seq) -> conn`.
    pending: HashMap<(u64, u64), ConnId>,
    /// Overload bound on `pending`: requests beyond it get `Retry`.
    max_pending: usize,
    shed: u64,
    prepare_reqs: u64,
    reconnects: u64,
}

impl<L: NetworkLink<ServiceMsg<kvstore::KvCommand>>> KvServer<L> {
    pub fn new(node: KvNode, link: L) -> Self {
        KvServer {
            node,
            link: Some(link),
            gateway: None,
            pending: HashMap::new(),
            max_pending: DEFAULT_MAX_PENDING,
            shed: 0,
            prepare_reqs: 0,
            reconnects: 0,
        }
    }

    /// Attach the client-facing gateway.
    pub fn with_gateway(mut self, gateway: ClientGateway) -> Self {
        self.gateway = Some(gateway);
        self
    }

    /// Cap the in-flight command queue (default
    /// [`DEFAULT_MAX_PENDING`]). Under overload the server replies
    /// [`KvWire::Retry`] instead of queueing without bound; the client's
    /// backoff loop resubmits.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self
    }

    /// Requests shed with `Retry` because the pending queue was full.
    pub fn shed_requests(&self) -> u64 {
        self.shed
    }

    pub fn node(&self) -> &KvNode {
        &self.node
    }

    pub fn node_mut(&mut self) -> &mut KvNode {
        &mut self.node
    }

    pub fn link(&self) -> Option<&L> {
        self.link.as_ref()
    }

    /// Detach and return the transport — the "kill the leader's
    /// transport" fault. The replica keeps running but is mute until
    /// [`KvServer::set_transport`] installs a replacement.
    pub fn kill_transport(&mut self) -> Option<L> {
        self.link.take()
    }

    /// Install a (new) transport after [`KvServer::kill_transport`].
    pub fn set_transport(&mut self, link: L) {
        self.link = Some(link);
    }

    /// `PrepareReq` messages received so far — observable evidence of
    /// session-driven re-sync (paper §4.1.3).
    pub fn prepare_reqs_received(&self) -> u64 {
        self.prepare_reqs
    }

    /// `SessionEstablished` events that triggered a `reconnected()` call.
    pub fn reconnects_seen(&self) -> u64 {
        self.reconnects
    }

    /// One I/O cycle: drain the link (messages and session events), the
    /// gateway (client requests), the replica (results), then flush
    /// outgoing replication traffic.
    pub fn pump(&mut self) {
        if let Some(link) = self.link.as_mut() {
            for ev in link.poll() {
                match ev {
                    LinkEvent::Message { from, msg } => {
                        if is_prepare_req(&msg) {
                            self.prepare_reqs += 1;
                        }
                        self.node.handle(from, msg);
                    }
                    LinkEvent::SessionEstablished { peer, .. } => {
                        // New session ⇒ prior messages may be lost ⇒ ask
                        // the leader (whoever it is) to re-sync us.
                        self.reconnects += 1;
                        self.node.server().reconnected(peer);
                    }
                    LinkEvent::SessionDropped { .. } => {
                        // Liveness is the BLE's job (heartbeats); nothing
                        // to do until the session comes back.
                    }
                }
            }
        }
        self.serve_clients();
        self.deliver_results();
        self.flush();
    }

    /// Advance protocol timers (election, heartbeats, resends).
    pub fn tick(&mut self) {
        self.node.tick();
        self.deliver_results();
        self.flush();
    }

    fn serve_clients(&mut self) {
        let Some(gateway) = self.gateway.as_mut() else {
            return;
        };
        if !self.node.is_leader() && !self.pending.is_empty() {
            // Leadership lost with commands in flight: their fate is
            // unknown (the new leader may or may not carry them). Tell
            // the clients to retry — the session layer deduplicates any
            // that decided after all — so `pending` cannot leak dead
            // entries and eventually wedge the overload bound.
            for ((_, seq), conn) in self.pending.drain() {
                gateway.reply(conn, &KvWire::Retry { seq });
            }
        }
        for (conn, msg) in gateway.poll() {
            let KvWire::Request(cmd) = msg else {
                continue; // clients only send requests
            };
            if !self.node.is_leader() {
                let leader = self.node.server_ref().leader().map(|b| b.pid).unwrap_or(0);
                gateway.reply(conn, &KvWire::Redirect { leader });
                continue;
            }
            let key = (cmd.client, cmd.seq);
            let seq = cmd.seq;
            // Overload shedding: a full pending queue means replication
            // is behind client arrival; answer `Retry` now rather than
            // queueing unboundedly. Duplicates of an already-queued
            // command are exempt — re-registering them is free and the
            // session layer deduplicates on apply.
            if self.pending.len() >= self.max_pending && !self.pending.contains_key(&key) {
                self.shed += 1;
                gateway.reply(conn, &KvWire::Retry { seq });
                continue;
            }
            match self.node.submit(cmd) {
                Ok(()) => {
                    self.pending.insert(key, conn);
                }
                Err(_) => gateway.reply(conn, &KvWire::Retry { seq }),
            }
        }
    }

    fn deliver_results(&mut self) {
        let results = self.node.take_results();
        let Some(gateway) = self.gateway.as_mut() else {
            return;
        };
        for res in results {
            if let Some(conn) = self.pending.remove(&(res.client, res.seq)) {
                gateway.reply(conn, &KvWire::Reply(res));
            }
        }
    }

    fn flush(&mut self) {
        let Some(link) = self.link.as_mut() else {
            self.node.outgoing(); // drain and drop: transport is dead
            return;
        };
        for (to, msg) in self.node.outgoing() {
            link.send(to, msg);
        }
    }

    /// Drive the server until `stop` is set: pump continuously, tick
    /// every `tick_every`.
    pub fn run(mut self, tick_every: Duration, stop: Arc<AtomicBool>) -> Self {
        let mut last_tick = Instant::now();
        while !stop.load(Ordering::SeqCst) {
            self.pump();
            if last_tick.elapsed() >= tick_every {
                last_tick = Instant::now();
                self.tick();
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self
    }
}

fn is_prepare_req<T: omnipaxos::Entry>(msg: &ServiceMsg<T>) -> bool {
    matches!(
        msg,
        ServiceMsg::Omni {
            msg: OmniMessage::Paxos(m),
            ..
        } if matches!(m.msg, PaxosMsg::PrepareReq)
    )
}
