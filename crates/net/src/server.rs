//! The deployable kv server: a [`KvNode`] driven over any
//! [`NetworkLink`] backend, plus the TCP gateway clients speak to.
//!
//! [`KvServer`] is deliberately sans-I/O-loop: [`KvServer::pump`] runs
//! one poll→handle→reply→send cycle and [`KvServer::tick`] advances
//! protocol timers. The binary wraps them in a thread ([`KvServer::run`]);
//! the deterministic tests call them directly, interleaved with simulated
//! time — which is how the sim and TCP backends are shown to agree.
//!
//! Session semantics are wired here: a [`LinkEvent::SessionEstablished`]
//! calls `reconnected()` on the replica, which re-syncs state with a
//! `PrepareReq` (paper §4.1.3) because messages from the previous session
//! may be lost.

use crate::frame::{self, kind, FrameError};
use crate::link::{LinkEvent, NetworkLink};
use crate::tcp::lock_unpoisoned;
use kvstore::{KvNode, KvWire};
use omnipaxos::wire::Wire;
use omnipaxos::{OmniMessage, PaxosMsg, ServiceMsg};
use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of one client connection on the gateway.
pub type ConnId = u64;

/// One gateway connection: the socket plus a reply buffer. Replies are
/// appended here and written with one `write_all` per
/// [`ClientGateway::flush_replies`] call, so all replies a pump cycle
/// produces — typically one per command in the decided batch — ride a
/// single syscall per connection.
struct GatewayConn {
    stream: TcpStream,
    wbuf: Vec<u8>,
}

/// Accepts client connections and shuttles [`KvWire`] frames.
///
/// Replies are buffered per connection and written from the server
/// thread at pump boundaries (client traffic is request/reply, so there
/// is no backpressure problem a writer thread would solve); requests
/// arrive via per-connection reader threads.
pub struct ClientGateway {
    rx: Receiver<(ConnId, KvWire)>,
    conns: Arc<Mutex<HashMap<ConnId, GatewayConn>>>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
    /// Coalesced reply writes issued / reply frames carried by them.
    reply_batches: u64,
    reply_frames: u64,
}

impl ClientGateway {
    /// Serve client connections on `listener`.
    pub fn bind(listener: TcpListener) -> std::io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel();
        let conns: Arc<Mutex<HashMap<ConnId, GatewayConn>>> = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let conns = Arc::clone(&conns);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("kv-gateway".into())
                .spawn(move || gateway_accept(listener, tx, conns, shutdown))?
        };
        Ok(ClientGateway {
            rx,
            conns,
            shutdown,
            threads: vec![accept],
            local_addr,
            reply_batches: 0,
            reply_frames: 0,
        })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Drain requests received since the last call.
    pub fn poll(&mut self) -> Vec<(ConnId, KvWire)> {
        self.rx.try_iter().collect()
    }

    /// Queue `msg` for a client connection. Nothing hits the socket until
    /// [`ClientGateway::flush_replies`]; replies to dropped connections
    /// are silently discarded there (the client's retry loop owns
    /// recovery).
    pub fn reply(&mut self, conn: ConnId, msg: &KvWire) {
        let mut conns = lock_unpoisoned(&self.conns);
        if let Some(c) = conns.get_mut(&conn) {
            c.wbuf
                .extend_from_slice(&frame::encode_frame(kind::KV, &msg.to_bytes()));
            self.reply_frames += 1;
        }
    }

    /// Write every buffered reply: one `write_all` per connection with
    /// pending replies, so a decided batch of N commands costs one reply
    /// syscall per client instead of N.
    pub fn flush_replies(&mut self) {
        let mut conns = lock_unpoisoned(&self.conns);
        let mut dead = Vec::new();
        for (&id, c) in conns.iter_mut() {
            if c.wbuf.is_empty() {
                continue;
            }
            let mut w = &c.stream;
            let ok = w.write_all(&c.wbuf).is_ok();
            c.wbuf.clear();
            if ok {
                self.reply_batches += 1;
            } else {
                dead.push(id);
            }
        }
        for id in dead {
            conns.remove(&id);
        }
    }

    /// `(coalesced reply writes, reply frames carried)` since boot.
    pub fn reply_stats(&self) -> (u64, u64) {
        (self.reply_batches, self.reply_frames)
    }
}

impl Drop for ClientGateway {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, c) in lock_unpoisoned(&self.conns).drain() {
            let _ = c.stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn gateway_accept(
    listener: TcpListener,
    tx: Sender<(ConnId, KvWire)>,
    conns: Arc<Mutex<HashMap<ConnId, GatewayConn>>>,
    shutdown: Arc<AtomicBool>,
) {
    let next_id = AtomicU64::new(1);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                // fd exhaustion can fail the dup; drop the connection and
                // let the client's retry loop come back when it clears.
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                lock_unpoisoned(&conns).insert(
                    id,
                    GatewayConn {
                        stream,
                        wbuf: Vec::new(),
                    },
                );
                let tx = tx.clone();
                let conns = Arc::clone(&conns);
                // Reader threads exit on connection error; on gateway
                // drop the sockets are shut down, which unblocks them.
                let _ = std::thread::Builder::new()
                    .name(format!("kv-conn-{id}"))
                    .spawn(move || {
                        let mut r = &reader;
                        loop {
                            match frame::read_frame(&mut r) {
                                Ok(f) if f.kind == kind::KV => {
                                    match KvWire::from_bytes(&f.payload) {
                                        Ok(msg) => {
                                            if tx.send((id, msg)).is_err() {
                                                break;
                                            }
                                        }
                                        Err(_) => continue, // drop, stay in sync
                                    }
                                }
                                Ok(_) => continue, // unknown kind: drop
                                Err(e) if !FrameError::is_fatal(&e) => continue,
                                Err(_) => break,
                            }
                        }
                        lock_unpoisoned(&conns).remove(&id);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Default bound on commands in flight per server; past it new requests
/// are shed with [`KvWire::Retry`] instead of growing the queue.
pub const DEFAULT_MAX_PENDING: usize = 4096;

/// One kv server: replica + replication link + optional client gateway.
pub struct KvServer<L> {
    node: KvNode,
    link: Option<L>,
    gateway: Option<ClientGateway>,
    /// Commands in flight for a client: `(client, seq) -> conn`.
    pending: HashMap<(u64, u64), ConnId>,
    /// Overload bound on `pending`: requests beyond it get `Retry`.
    max_pending: usize,
    /// Highest admitted seq per client. Pipelined clients keep a window
    /// of seqs in flight; admission is kept contiguous per client (a
    /// fresh seq is admitted only if it extends `admitted + 1`), so a
    /// shed command can never be overtaken by a later one from the same
    /// client. Without this, the session table (which stores only the
    /// highest applied seq) would swallow the shed command's retry as a
    /// duplicate and the write would be silently lost.
    admitted: HashMap<u64, u64>,
    shed: u64,
    prepare_reqs: u64,
    reconnects: u64,
    /// Proposal batching: pump cycles that proposed ≥1 command, and
    /// commands proposed — `proposed_ops / proposal_batches` is the mean
    /// contiguous append run handed to one consensus round.
    proposal_batches: u64,
    proposed_ops: u64,
}

impl<L: NetworkLink<ServiceMsg<kvstore::KvCommand>>> KvServer<L> {
    pub fn new(node: KvNode, link: L) -> Self {
        KvServer {
            node,
            link: Some(link),
            gateway: None,
            pending: HashMap::new(),
            max_pending: DEFAULT_MAX_PENDING,
            admitted: HashMap::new(),
            shed: 0,
            prepare_reqs: 0,
            reconnects: 0,
            proposal_batches: 0,
            proposed_ops: 0,
        }
    }

    /// Attach the client-facing gateway.
    pub fn with_gateway(mut self, gateway: ClientGateway) -> Self {
        self.gateway = Some(gateway);
        self
    }

    /// Cap the in-flight command queue (default
    /// [`DEFAULT_MAX_PENDING`]). Under overload the server replies
    /// [`KvWire::Retry`] instead of queueing without bound; the client's
    /// backoff loop resubmits.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self
    }

    /// Requests shed with `Retry` because the pending queue was full or
    /// because an earlier seq from the same client was shed (admission
    /// stays contiguous per client).
    pub fn shed_requests(&self) -> u64 {
        self.shed
    }

    /// `(pump cycles that proposed, commands proposed)` — the proposal
    /// batching evidence: one cycle's worth of client commands becomes
    /// one contiguous append run, replicated as a single `AcceptDecide`
    /// per follower at the next drain.
    pub fn proposal_stats(&self) -> (u64, u64) {
        (self.proposal_batches, self.proposed_ops)
    }

    /// `(coalesced reply writes, reply frames carried)` from the gateway
    /// — the write-coalescing evidence on the client-facing side.
    pub fn gateway_reply_stats(&self) -> (u64, u64) {
        self.gateway
            .as_ref()
            .map(|g| g.reply_stats())
            .unwrap_or((0, 0))
    }

    pub fn node(&self) -> &KvNode {
        &self.node
    }

    pub fn node_mut(&mut self) -> &mut KvNode {
        &mut self.node
    }

    pub fn link(&self) -> Option<&L> {
        self.link.as_ref()
    }

    /// Detach and return the transport — the "kill the leader's
    /// transport" fault. The replica keeps running but is mute until
    /// [`KvServer::set_transport`] installs a replacement.
    pub fn kill_transport(&mut self) -> Option<L> {
        self.link.take()
    }

    /// Install a (new) transport after [`KvServer::kill_transport`].
    pub fn set_transport(&mut self, link: L) {
        self.link = Some(link);
    }

    /// `PrepareReq` messages received so far — observable evidence of
    /// session-driven re-sync (paper §4.1.3).
    pub fn prepare_reqs_received(&self) -> u64 {
        self.prepare_reqs
    }

    /// `SessionEstablished` events that triggered a `reconnected()` call.
    pub fn reconnects_seen(&self) -> u64 {
        self.reconnects
    }

    /// One I/O cycle: drain the link (messages and session events), the
    /// gateway (client requests), the replica (results), then flush
    /// outgoing replication traffic and buffered client replies.
    ///
    /// Returns the number of units of work done (messages handled,
    /// requests served, results delivered); drivers use it to spin while
    /// busy and sleep only when idle.
    pub fn pump(&mut self) -> usize {
        let mut work = 0;
        if let Some(link) = self.link.as_mut() {
            for ev in link.poll() {
                work += 1;
                match ev {
                    LinkEvent::Message { from, msg } => {
                        if is_prepare_req(&msg) {
                            self.prepare_reqs += 1;
                        }
                        self.node.handle(from, msg);
                    }
                    LinkEvent::SessionEstablished { peer, .. } => {
                        // New session ⇒ prior messages may be lost ⇒ ask
                        // the leader (whoever it is) to re-sync us.
                        self.reconnects += 1;
                        self.node.server().reconnected(peer);
                    }
                    LinkEvent::SessionDropped { .. } => {
                        // Liveness is the BLE's job (heartbeats); nothing
                        // to do until the session comes back.
                    }
                }
            }
        }
        work += self.serve_clients();
        work += self.deliver_results();
        self.flush();
        if let Some(g) = self.gateway.as_mut() {
            g.flush_replies();
        }
        work
    }

    /// Advance protocol timers (election, heartbeats, resends).
    pub fn tick(&mut self) {
        self.node.tick();
        self.deliver_results();
        self.flush();
        if let Some(g) = self.gateway.as_mut() {
            g.flush_replies();
        }
    }

    fn serve_clients(&mut self) -> usize {
        let Some(gateway) = self.gateway.as_mut() else {
            return 0;
        };
        if !self.node.is_leader() {
            if !self.pending.is_empty() {
                // Leadership lost with commands in flight: their fate is
                // unknown (the new leader may or may not carry them). Tell
                // the clients to retry — the session layer deduplicates any
                // that decided after all — so `pending` cannot leak dead
                // entries and eventually wedge the overload bound.
                for ((_, seq), conn) in self.pending.drain() {
                    gateway.reply(conn, &KvWire::Retry { seq });
                }
            }
            // Admission watermarks only describe what *this* leadership
            // stint admitted. While another leader serves the clients
            // their seqs advance elsewhere; keeping the old watermarks
            // would make every fresh seq look like a gap once leadership
            // returns here — an unbreakable Retry loop. Drop them; first
            // contact re-initializes from the client's in-order window.
            self.admitted.clear();
        }
        // Drain every queued request before flushing: all commands
        // admitted in this cycle form one contiguous append run, which
        // the replication layer batches into a single `AcceptDecide` per
        // follower at the next drain (proposal batching).
        let mut served = 0;
        let mut meta: Vec<((u64, u64), ConnId)> = Vec::new();
        let mut batch: Vec<kvstore::KvCommand> = Vec::new();
        for (conn, msg) in gateway.poll() {
            served += 1;
            let KvWire::Request(cmd) = msg else {
                continue; // clients only send requests
            };
            if !self.node.is_leader() {
                let leader = self.node.server_ref().leader().map(|b| b.pid).unwrap_or(0);
                gateway.reply(conn, &KvWire::Redirect { leader });
                continue;
            }
            let key = (cmd.client, cmd.seq);
            let seq = cmd.seq;
            // First contact with a client admits whatever seq it leads
            // with (a client always transmits its outstanding window in
            // seq order, so the lowest outstanding seq arrives first).
            let admitted = *self
                .admitted
                .entry(cmd.client)
                .or_insert_with(|| seq.saturating_sub(1));
            if seq > admitted + 1 {
                // Gap: an earlier seq from this client was shed. Shed
                // this one too — admitting it would let it overtake the
                // earlier command in the log, and the session table
                // (highest applied seq) would then drop the earlier
                // command's retry as a duplicate: a silently lost write.
                self.shed += 1;
                gateway.reply(conn, &KvWire::Retry { seq });
                continue;
            }
            // Overload shedding: a full pending queue means replication
            // is behind client arrival; answer `Retry` now rather than
            // queueing unboundedly. Duplicates (seq ≤ admitted) are
            // exempt — re-registering them is free and the session layer
            // deduplicates on apply.
            if seq > admitted
                && self.pending.len() + batch.len() >= self.max_pending
                && !self.pending.contains_key(&key)
            {
                self.shed += 1;
                gateway.reply(conn, &KvWire::Retry { seq });
                continue;
            }
            self.admitted.insert(cmd.client, admitted.max(seq));
            meta.push((key, conn));
            batch.push(cmd);
        }
        if !batch.is_empty() {
            let accepted = match self.node.submit_batch(batch) {
                Ok(n) => n,
                Err((n, _)) => n,
            };
            for (i, (key, conn)) in meta.into_iter().enumerate() {
                if i < accepted {
                    self.pending.insert(key, conn);
                } else {
                    gateway.reply(conn, &KvWire::Retry { seq: key.1 });
                }
            }
            if accepted > 0 {
                self.proposal_batches += 1;
                self.proposed_ops += accepted as u64;
            }
        }
        served
    }

    fn deliver_results(&mut self) -> usize {
        let results = self.node.take_results();
        let Some(gateway) = self.gateway.as_mut() else {
            return 0;
        };
        let n = results.len();
        for res in results {
            if let Some(conn) = self.pending.remove(&(res.client, res.seq)) {
                gateway.reply(conn, &KvWire::Reply(res));
            }
        }
        n
    }

    fn flush(&mut self) {
        let Some(link) = self.link.as_mut() else {
            self.node.outgoing(); // drain and drop: transport is dead
            return;
        };
        for (to, msg) in self.node.outgoing() {
            link.send(to, msg);
        }
    }

    /// Drive the server until `stop` is set: pump continuously, tick
    /// every `tick_every`. Busy cycles run back to back (open-loop load
    /// turns around in microseconds, not scheduler quanta); only an idle
    /// cycle sleeps.
    pub fn run(mut self, tick_every: Duration, stop: Arc<AtomicBool>) -> Self {
        let mut last_tick = Instant::now();
        while !stop.load(Ordering::SeqCst) {
            let work = self.pump();
            if last_tick.elapsed() >= tick_every {
                last_tick = Instant::now();
                self.tick();
            }
            if work == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self
    }
}

fn is_prepare_req<T: omnipaxos::Entry>(msg: &ServiceMsg<T>) -> bool {
    matches!(
        msg,
        ServiceMsg::Omni {
            msg: OmniMessage::Paxos(m),
            ..
        } if matches!(m.msg, PaxosMsg::PrepareReq)
    )
}
