//! The deployable kv server: a [`KvNode`] driven over any
//! [`NetworkLink`] backend, plus the TCP gateway clients speak to.
//!
//! [`KvServer`] is deliberately sans-I/O-loop: [`KvServer::pump`] runs
//! one poll→handle→reply→send cycle and [`KvServer::tick`] advances
//! protocol timers. The binary wraps them in a thread ([`KvServer::run`]);
//! the deterministic tests call them directly, interleaved with simulated
//! time — which is how the sim and TCP backends are shown to agree.
//!
//! Session semantics are wired here: a [`LinkEvent::SessionEstablished`]
//! calls `reconnected()` on the replica, which re-syncs state with a
//! `PrepareReq` (paper §4.1.3) because messages from the previous session
//! may be lost.

use crate::frame::{self, kind, FrameError};
use crate::link::{LinkEvent, NetworkLink};
use crate::tcp::lock_unpoisoned;
use kvstore::{
    shard_of_key, KvCommand, KvNode, KvWire, ReadMode, ShardedKvNode, TxnCoordinator, TxnId,
    TxnState,
};
use omnipaxos::wire::Wire;
use omnipaxos::{OmniMessage, PaxosMsg, ServiceMsg};
use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of one client connection on the gateway.
pub type ConnId = u64;

/// One gateway connection: the socket plus a reply buffer. Replies are
/// appended here and written with one `write_all` per
/// [`ClientGateway::flush_replies`] call, so all replies a pump cycle
/// produces — typically one per command in the decided batch — ride a
/// single syscall per connection.
struct GatewayConn {
    stream: TcpStream,
    wbuf: Vec<u8>,
}

/// Accepts client connections and shuttles [`KvWire`] frames.
///
/// Replies are buffered per connection and written from the server
/// thread at pump boundaries (client traffic is request/reply, so there
/// is no backpressure problem a writer thread would solve); requests
/// arrive via per-connection reader threads.
pub struct ClientGateway {
    rx: Receiver<(ConnId, KvWire)>,
    conns: Arc<Mutex<HashMap<ConnId, GatewayConn>>>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
    /// Coalesced reply writes issued / reply frames carried by them.
    reply_batches: u64,
    reply_frames: u64,
}

impl ClientGateway {
    /// Serve client connections on `listener`.
    pub fn bind(listener: TcpListener) -> std::io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel();
        let conns: Arc<Mutex<HashMap<ConnId, GatewayConn>>> = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let conns = Arc::clone(&conns);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("kv-gateway".into())
                .spawn(move || gateway_accept(listener, tx, conns, shutdown))?
        };
        Ok(ClientGateway {
            rx,
            conns,
            shutdown,
            threads: vec![accept],
            local_addr,
            reply_batches: 0,
            reply_frames: 0,
        })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Drain requests received since the last call.
    pub fn poll(&mut self) -> Vec<(ConnId, KvWire)> {
        self.rx.try_iter().collect()
    }

    /// Queue `msg` for a client connection. Nothing hits the socket until
    /// [`ClientGateway::flush_replies`]; replies to dropped connections
    /// are silently discarded there (the client's retry loop owns
    /// recovery).
    pub fn reply(&mut self, conn: ConnId, msg: &KvWire) {
        let mut conns = lock_unpoisoned(&self.conns);
        if let Some(c) = conns.get_mut(&conn) {
            c.wbuf
                .extend_from_slice(&frame::encode_frame(kind::KV, &msg.to_bytes()));
            self.reply_frames += 1;
        }
    }

    /// Write every buffered reply: one `write_all` per connection with
    /// pending replies, so a decided batch of N commands costs one reply
    /// syscall per client instead of N.
    pub fn flush_replies(&mut self) {
        let mut conns = lock_unpoisoned(&self.conns);
        let mut dead = Vec::new();
        for (&id, c) in conns.iter_mut() {
            if c.wbuf.is_empty() {
                continue;
            }
            let mut w = &c.stream;
            let ok = w.write_all(&c.wbuf).is_ok();
            c.wbuf.clear();
            if ok {
                self.reply_batches += 1;
            } else {
                dead.push(id);
            }
        }
        for id in dead {
            conns.remove(&id);
        }
    }

    /// `(coalesced reply writes, reply frames carried)` since boot.
    pub fn reply_stats(&self) -> (u64, u64) {
        (self.reply_batches, self.reply_frames)
    }
}

impl Drop for ClientGateway {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, c) in lock_unpoisoned(&self.conns).drain() {
            let _ = c.stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn gateway_accept(
    listener: TcpListener,
    tx: Sender<(ConnId, KvWire)>,
    conns: Arc<Mutex<HashMap<ConnId, GatewayConn>>>,
    shutdown: Arc<AtomicBool>,
) {
    let next_id = AtomicU64::new(1);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                // fd exhaustion can fail the dup; drop the connection and
                // let the client's retry loop come back when it clears.
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                lock_unpoisoned(&conns).insert(
                    id,
                    GatewayConn {
                        stream,
                        wbuf: Vec::new(),
                    },
                );
                let tx = tx.clone();
                let conns = Arc::clone(&conns);
                // Reader threads exit on connection error; on gateway
                // drop the sockets are shut down, which unblocks them.
                let _ = std::thread::Builder::new()
                    .name(format!("kv-conn-{id}"))
                    .spawn(move || {
                        let mut r = &reader;
                        loop {
                            match frame::read_frame(&mut r) {
                                Ok(f) if f.kind == kind::KV => {
                                    match KvWire::from_bytes(&f.payload) {
                                        Ok(msg) => {
                                            if tx.send((id, msg)).is_err() {
                                                break;
                                            }
                                        }
                                        Err(_) => continue, // drop, stay in sync
                                    }
                                }
                                Ok(_) => continue, // unknown kind: drop
                                Err(e) if !FrameError::is_fatal(&e) => continue,
                                Err(_) => break,
                            }
                        }
                        lock_unpoisoned(&conns).remove(&id);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Default bound on commands in flight per shard; past it new requests
/// are shed with [`KvWire::Retry`] instead of growing the queue.
pub const DEFAULT_MAX_PENDING: usize = 4096;

/// One kv server: per-shard replicas + shared replication link + optional
/// client gateway. Every shard's consensus traffic rides the same link
/// sessions (group envelopes, coalesced BLE — see `kvstore::shard`); the
/// gateway routes each request to the shard owning its key and keeps the
/// PR 6 contiguous-admission/proposal-batching pipeline *per shard*, so
/// one pump still turns one admission window into one `AcceptDecide` and
/// one group-commit flush per shard.
pub struct KvServer<L> {
    node: ShardedKvNode,
    link: Option<L>,
    gateway: Option<ClientGateway>,
    /// Commands in flight, per shard: `(client, seq) -> conn`.
    pending: Vec<HashMap<(u64, u64), ConnId>>,
    /// Overload bound on each shard's `pending`: requests beyond it get
    /// `Retry`.
    max_pending: usize,
    /// Highest admitted seq per client, per shard. Pipelined clients keep
    /// a window of seqs in flight; admission is kept contiguous per
    /// client (a fresh seq is admitted only if it extends `admitted +
    /// 1`), so a shed command can never be overtaken by a later one from
    /// the same client. Without this, the session table (which stores
    /// only the highest applied seq) would swallow the shed command's
    /// retry as a duplicate and the write would be silently lost.
    /// Sharded clients use one session (client id + seq space) per shard,
    /// so the watermark map is per shard too.
    admitted: Vec<HashMap<u64, u64>>,
    /// Last gap-shed `(conn, seq)` per client, per shard. A client that
    /// spreads ONE seq space over several shards (the routing-oblivious
    /// closed-loop client) leaves permanent holes in each shard's seq
    /// stream; the gap rule alone would `Retry` such a client forever.
    /// Clients transmit their unsent window in seq order over a FIFO
    /// connection, so if the *same* connection presents the same seq
    /// twice with no intervening request from that client, every seq in
    /// the gap is provably not coming here — the watermark may re-init
    /// to `seq - 1`. Any intervening arrival (admitted, duplicate, or
    /// even overload-shed) clears the record, because it proves lower
    /// seqs are still in flight to this shard.
    gap_shed: Vec<HashMap<u64, (ConnId, u64)>>,
    /// Log-free reads in flight, per shard: `(client, seq) -> conn`.
    /// Separate from `pending` because these never ride the log: they are
    /// not invalidated by leadership changes (lease reads serve in the
    /// same cycle; read-index reads carry their own deadline) and must
    /// not be drained with `Retry` when this node stops leading a shard.
    pending_reads: Vec<HashMap<(u64, u64), ConnId>>,
    shed: u64,
    prepare_reqs: u64,
    reconnects: u64,
    /// Proposal batching: shard-batches proposed (one per shard per pump
    /// cycle with traffic), and commands proposed — `proposed_ops /
    /// proposal_batches` is the mean contiguous append run handed to one
    /// consensus round.
    proposal_batches: u64,
    proposed_ops: u64,
    /// The cross-shard transaction coordinator (2PC over the shard logs;
    /// see `kvstore::txn`). Every gateway has one: any node can
    /// coordinate, and its scanner finishes transactions whose
    /// coordinator died.
    txn: TxnCoordinator,
    /// Transactions this gateway is driving for a connected client:
    /// `txn id -> conn` (the reply target once the outcome is known).
    pending_txns: HashMap<TxnId, ConnId>,
    /// Multi-key requests rejected because their keys span shards.
    cross_shard_rejects: u64,
}

impl<L: NetworkLink<ServiceMsg<kvstore::KvCommand>>> KvServer<L> {
    /// A single-shard server (the pre-sharding deployment shape; its wire
    /// format is bit-identical to the unsharded protocol).
    pub fn new(node: KvNode, link: L) -> Self {
        Self::new_sharded(ShardedKvNode::from_single(node), link)
    }

    /// A server over a sharded node: one consensus group per shard,
    /// multiplexed over this server's single link.
    pub fn new_sharded(node: ShardedKvNode, link: L) -> Self {
        let n = node.n_shards();
        // The boot-time nonce keeps this incarnation's coordinator
        // identity distinct from any predecessor whose proposals may
        // still be in flight in the shards' logs.
        let nonce = std::time::UNIX_EPOCH
            .elapsed()
            .map(|d| (d.as_millis() as u32) ^ d.subsec_nanos())
            .unwrap_or(1);
        let txn = TxnCoordinator::with_nonce(node.pid(), nonce);
        KvServer {
            node,
            link: Some(link),
            gateway: None,
            pending: vec![HashMap::new(); n],
            max_pending: DEFAULT_MAX_PENDING,
            admitted: vec![HashMap::new(); n],
            gap_shed: vec![HashMap::new(); n],
            pending_reads: vec![HashMap::new(); n],
            shed: 0,
            prepare_reqs: 0,
            reconnects: 0,
            proposal_batches: 0,
            proposed_ops: 0,
            txn,
            pending_txns: HashMap::new(),
            cross_shard_rejects: 0,
        }
    }

    /// Attach the client-facing gateway.
    pub fn with_gateway(mut self, gateway: ClientGateway) -> Self {
        self.gateway = Some(gateway);
        self
    }

    /// Cap the in-flight command queue (default
    /// [`DEFAULT_MAX_PENDING`]). Under overload the server replies
    /// [`KvWire::Retry`] instead of queueing without bound; the client's
    /// backoff loop resubmits.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self
    }

    /// Requests shed with `Retry` because the pending queue was full or
    /// because an earlier seq from the same client was shed (admission
    /// stays contiguous per client).
    pub fn shed_requests(&self) -> u64 {
        self.shed
    }

    /// Multi-key requests rejected with [`KvWire::CrossShard`] because
    /// their keys span shards — the PR 7 first-key routing hazard, now a
    /// typed error instead of a silent wrong-shard mutation.
    pub fn cross_shard_rejects(&self) -> u64 {
        self.cross_shard_rejects
    }

    /// Cross-shard transactions this gateway is currently driving.
    pub fn txns_in_flight(&self) -> usize {
        self.txn.in_flight()
    }

    /// `(pump cycles that proposed, commands proposed)` — the proposal
    /// batching evidence: one cycle's worth of client commands becomes
    /// one contiguous append run, replicated as a single `AcceptDecide`
    /// per follower at the next drain.
    pub fn proposal_stats(&self) -> (u64, u64) {
        (self.proposal_batches, self.proposed_ops)
    }

    /// `(coalesced reply writes, reply frames carried)` from the gateway
    /// — the write-coalescing evidence on the client-facing side.
    pub fn gateway_reply_stats(&self) -> (u64, u64) {
        self.gateway
            .as_ref()
            .map(|g| g.reply_stats())
            .unwrap_or((0, 0))
    }

    pub fn node(&self) -> &ShardedKvNode {
        &self.node
    }

    pub fn node_mut(&mut self) -> &mut ShardedKvNode {
        &mut self.node
    }

    pub fn link(&self) -> Option<&L> {
        self.link.as_ref()
    }

    /// Detach and return the transport — the "kill the leader's
    /// transport" fault. The replica keeps running but is mute until
    /// [`KvServer::set_transport`] installs a replacement.
    pub fn kill_transport(&mut self) -> Option<L> {
        self.link.take()
    }

    /// Install a (new) transport after [`KvServer::kill_transport`].
    pub fn set_transport(&mut self, link: L) {
        self.link = Some(link);
    }

    /// `PrepareReq` messages received so far — observable evidence of
    /// session-driven re-sync (paper §4.1.3).
    pub fn prepare_reqs_received(&self) -> u64 {
        self.prepare_reqs
    }

    /// `SessionEstablished` events that triggered a `reconnected()` call.
    pub fn reconnects_seen(&self) -> u64 {
        self.reconnects
    }

    /// One I/O cycle: drain the link (messages and session events), the
    /// gateway (client requests), the replica (results), then flush
    /// outgoing replication traffic and buffered client replies.
    ///
    /// Returns the number of units of work done (messages handled,
    /// requests served, results delivered); drivers use it to spin while
    /// busy and sleep only when idle.
    pub fn pump(&mut self) -> usize {
        let mut work = 0;
        if let Some(link) = self.link.as_mut() {
            for ev in link.poll() {
                work += 1;
                match ev {
                    LinkEvent::Message { from, msg } => {
                        if is_prepare_req(&msg) {
                            self.prepare_reqs += 1;
                        }
                        self.node.handle(from, msg);
                    }
                    LinkEvent::SessionEstablished { peer, .. } => {
                        // New session ⇒ prior messages may be lost ⇒ every
                        // shard asks the leader (whoever it is) to re-sync.
                        self.reconnects += 1;
                        self.node.reconnected(peer);
                    }
                    LinkEvent::SessionDropped { .. } => {
                        // Liveness is the BLE's job (heartbeats); nothing
                        // to do until the session comes back.
                    }
                }
            }
        }
        work += self.serve_clients();
        work += self.deliver_results();
        self.flush();
        if let Some(g) = self.gateway.as_mut() {
            g.flush_replies();
        }
        work
    }

    /// Advance protocol timers (election, heartbeats, resends).
    pub fn tick(&mut self) {
        self.node.tick();
        self.txn.tick(&mut self.node);
        self.deliver_results();
        self.flush();
        if let Some(g) = self.gateway.as_mut() {
            g.flush_replies();
        }
    }

    fn serve_clients(&mut self) -> usize {
        let Some(gateway) = self.gateway.as_mut() else {
            return 0;
        };
        let n_shards = self.node.n_shards();
        for s in 0..n_shards {
            if self.node.is_leader(s as u32) {
                continue;
            }
            if !self.pending[s].is_empty() {
                // Leadership of this shard lost with commands in flight:
                // their fate is unknown (the new leader may or may not
                // carry them). Tell the clients to retry — the session
                // layer deduplicates any that decided after all — so
                // `pending` cannot leak dead entries and eventually wedge
                // the overload bound.
                for ((_, seq), conn) in self.pending[s].drain() {
                    gateway.reply(conn, &KvWire::Retry { seq });
                }
            }
            // Admission watermarks only describe what *this* leadership
            // stint admitted. While another leader serves the clients
            // their seqs advance elsewhere; keeping the old watermarks
            // would make every fresh seq look like a gap once leadership
            // returns here — an unbreakable Retry loop. Drop them; first
            // contact re-initializes from the client's in-order window.
            self.admitted[s].clear();
            self.gap_shed[s].clear();
        }
        // Drain every queued request before flushing: all commands
        // admitted in this cycle form one contiguous append run *per
        // shard*, which the replication layer batches into a single
        // `AcceptDecide` per follower per shard at the next drain
        // (proposal batching).
        let mut served = 0;
        let mut meta: Vec<Vec<((u64, u64), ConnId)>> = vec![Vec::new(); n_shards];
        let mut batch: Vec<Vec<kvstore::KvCommand>> = vec![Vec::new(); n_shards];
        for (conn, msg) in gateway.poll() {
            served += 1;
            let cmd = match msg {
                KvWire::Request(cmd) => cmd,
                KvWire::ShardsReq => {
                    gateway.reply(
                        conn,
                        &KvWire::Shards {
                            leaders: self.node.leaders(),
                        },
                    );
                    continue;
                }
                KvWire::ReadRequest {
                    mode,
                    client,
                    seq,
                    key,
                } => {
                    let shard = shard_of_key(&key, n_shards);
                    let s = shard as usize;
                    match mode {
                        // Read-index reads serve at ANY replica — this is
                        // the follower-read path, so no leader redirect.
                        // The result (or a deadline `applied: false`)
                        // comes back through `deliver_results`.
                        ReadMode::ReadIndex => {
                            let _ = self.node.shard_mut(shard).read(
                                ReadMode::ReadIndex,
                                client,
                                seq,
                                key,
                            );
                            self.pending_reads[s].insert((client, seq), conn);
                            continue;
                        }
                        // Lease reads serve locally only while this node
                        // holds the shard's lease; they complete in this
                        // same pump cycle with no log round. Without the
                        // lease: a non-leader redirects, the leader
                        // answers `Retry` and the CLIENT falls through to
                        // the log path under its write session — a
                        // server-side conversion would inject the read's
                        // out-of-band seq into the admission watermark and
                        // wedge pipelined writers.
                        ReadMode::Lease => {
                            if self.node.lease_valid(shard) {
                                let _ = self.node.shard_mut(shard).read(
                                    ReadMode::Lease,
                                    client,
                                    seq,
                                    key,
                                );
                                self.pending_reads[s].insert((client, seq), conn);
                            } else if self.node.is_leader(shard) {
                                gateway.reply(conn, &KvWire::Retry { seq });
                            } else {
                                let leader = self.node.leader_of(shard);
                                if n_shards == 1 {
                                    gateway.reply(conn, &KvWire::Redirect { leader });
                                } else {
                                    gateway.reply(conn, &KvWire::ShardRedirect { shard, leader });
                                }
                            }
                            continue;
                        }
                        // Log mode rides the replicated read-marker path
                        // below, through the same admission machinery as
                        // writes (the marker consumes a session seq, so it
                        // must respect the contiguity watermark).
                        ReadMode::Log => KvCommand {
                            client,
                            seq,
                            op: kvstore::KvOp::Read { key },
                        },
                    }
                }
                KvWire::TxnRequest { client, seq, spec } => {
                    // Cross-shard transactions bypass admission: the txn
                    // id (client, seq) deduplicates across retries and
                    // gateways via the coordinator shard's decision
                    // record, not the session table.
                    let txn = (client, seq);
                    match self.txn.begin(&mut self.node, txn, &spec) {
                        Some(committed) => {
                            // Retransmit fast path: the decision is
                            // already recorded locally — replay it.
                            gateway.reply(
                                conn,
                                &KvWire::Reply(kvstore::KvResult {
                                    client,
                                    seq,
                                    value: Some(committed as i64),
                                    applied: committed,
                                }),
                            );
                        }
                        None => {
                            self.pending_txns.insert(txn, conn);
                        }
                    }
                    continue;
                }
                KvWire::TxnStatusReq { client, seq } => {
                    let txn = (client, seq);
                    let mut state = TxnState::Unknown;
                    for s in 0..n_shards as u32 {
                        let sm = self.node.shard(s).state_machine();
                        if let Some(&c) =
                            sm.decisions().get(&txn).or_else(|| sm.resolved().get(&txn))
                        {
                            state = if c {
                                TxnState::Committed
                            } else {
                                TxnState::Aborted
                            };
                            break;
                        }
                        if sm.prepared().contains_key(&txn) {
                            state = TxnState::Pending;
                        }
                    }
                    gateway.reply(conn, &KvWire::TxnStatus { client, seq, state });
                    continue;
                }
                _ => continue, // clients only send requests
            };
            if matches!(
                cmd.op,
                kvstore::KvOp::TxnPrepare { .. }
                    | kvstore::KvOp::TxnDecide { .. }
                    | kvstore::KvOp::TxnCommit { .. }
                    | kvstore::KvOp::TxnAbort { .. }
            ) {
                // Raw 2PC records are coordinator-internal; a client must
                // use the TxnRequest path. Answer with the same typed
                // error as a spanning op so it cannot silently corrupt
                // the lock table.
                self.cross_shard_rejects += 1;
                gateway.reply(conn, &KvWire::CrossShard { seq: cmd.seq });
                continue;
            }
            if self.node.spans_shards(&cmd.op) {
                // The PR 7 hazard, closed: a multi-key op whose keys live
                // on different shards is rejected loudly (the client
                // reissues it as a transaction), never first-key routed.
                self.cross_shard_rejects += 1;
                gateway.reply(conn, &KvWire::CrossShard { seq: cmd.seq });
                continue;
            }
            let shard = self.node.shard_of(&cmd.op);
            let s = shard as usize;
            if !self.node.is_leader(shard) {
                let leader = self.node.leader_of(shard);
                // Single-shard servers speak the pre-sharding protocol;
                // sharded ones tell the client *which* shard to re-route.
                if n_shards == 1 {
                    gateway.reply(conn, &KvWire::Redirect { leader });
                } else {
                    gateway.reply(conn, &KvWire::ShardRedirect { shard, leader });
                }
                continue;
            }
            let key = (cmd.client, cmd.seq);
            let seq = cmd.seq;
            // Any arrival from this client clears its gap record: a lower
            // seq showing up proves the gap is still being retransmitted.
            let gap_prev = self.gap_shed[s].remove(&cmd.client);
            // First contact with a client admits whatever seq it leads
            // with (a client always transmits its outstanding window in
            // seq order, so the lowest outstanding seq arrives first).
            // Sharded clients run one session per shard, so the watermark
            // lives in the shard's own map.
            let mut admitted = *self.admitted[s]
                .entry(cmd.client)
                .or_insert_with(|| seq.saturating_sub(1));
            if seq > admitted + 1 {
                if gap_prev != Some((conn, seq)) {
                    // Gap: an earlier seq from this client was shed — or
                    // never routed to this shard at all. Shed this one
                    // too: admitting it would let it overtake a shed
                    // earlier command in the log, and the session table
                    // (highest applied seq) would then drop that
                    // command's retry as a duplicate — a silently lost
                    // write. Record the shed so a repeat can tell the
                    // two cases apart.
                    self.gap_shed[s].insert(cmd.client, (conn, seq));
                    self.shed += 1;
                    gateway.reply(conn, &KvWire::Retry { seq });
                    continue;
                }
                // The same connection re-sent the same seq with nothing
                // from this client in between. The client transmits its
                // unsent window in seq order over a FIFO connection, so
                // every seq inside the gap is provably not coming here
                // (it belongs to other shards). Re-initialize the
                // watermark, exactly like first contact.
                admitted = seq.saturating_sub(1);
                self.admitted[s].insert(cmd.client, admitted);
            }
            // Overload shedding: a full pending queue means this shard's
            // replication is behind client arrival; answer `Retry` now
            // rather than queueing unboundedly. Duplicates (seq ≤
            // admitted) are exempt — re-registering them is free and the
            // session layer deduplicates on apply.
            if seq > admitted
                && self.pending[s].len() + batch[s].len() >= self.max_pending
                && !self.pending[s].contains_key(&key)
            {
                self.shed += 1;
                gateway.reply(conn, &KvWire::Retry { seq });
                continue;
            }
            self.admitted[s].insert(cmd.client, admitted.max(seq));
            meta[s].push((key, conn));
            batch[s].push(cmd);
        }
        for s in 0..n_shards {
            let b = std::mem::take(&mut batch[s]);
            if b.is_empty() {
                continue;
            }
            let accepted = match self.node.submit_batch(s as u32, b) {
                Ok(n) => n,
                Err((n, _)) => n,
            };
            for (i, (key, conn)) in meta[s].drain(..).enumerate() {
                if i < accepted {
                    self.pending[s].insert(key, conn);
                } else {
                    gateway.reply(conn, &KvWire::Retry { seq: key.1 });
                }
            }
            if accepted > 0 {
                self.proposal_batches += 1;
                self.proposed_ops += accepted as u64;
            }
        }
        served
    }

    fn deliver_results(&mut self) -> usize {
        let results = self.node.take_results();
        self.txn.observe(&mut self.node, &results);
        let Some(gateway) = self.gateway.as_mut() else {
            self.txn.take_outcomes();
            return 0;
        };
        let n = results.len();
        for (shard, res) in results {
            let s = shard as usize;
            if let Some(conn) = self.pending[s].remove(&(res.client, res.seq)) {
                gateway.reply(conn, &KvWire::Reply(res));
            } else if let Some(conn) = self.pending_reads[s].remove(&(res.client, res.seq)) {
                gateway.reply(conn, &KvWire::Reply(res));
            }
        }
        for outcome in self.txn.take_outcomes() {
            if let Some(conn) = self.pending_txns.remove(&outcome.txn) {
                gateway.reply(
                    conn,
                    &KvWire::Reply(kvstore::KvResult {
                        client: outcome.txn.0,
                        seq: outcome.txn.1,
                        value: Some(outcome.committed as i64),
                        applied: outcome.committed,
                    }),
                );
            }
        }
        n
    }

    fn flush(&mut self) {
        let Some(link) = self.link.as_mut() else {
            self.node.outgoing(); // drain and drop: transport is dead
            return;
        };
        for (to, msg) in self.node.outgoing() {
            link.send(to, msg);
        }
    }

    /// Drive the server until `stop` is set: pump continuously, tick
    /// every `tick_every`. Busy cycles run back to back (open-loop load
    /// turns around in microseconds, not scheduler quanta); only an idle
    /// cycle sleeps.
    pub fn run(mut self, tick_every: Duration, stop: Arc<AtomicBool>) -> Self {
        let mut last_tick = Instant::now();
        while !stop.load(Ordering::SeqCst) {
            let work = self.pump();
            if last_tick.elapsed() >= tick_every {
                last_tick = Instant::now();
                self.tick();
            }
            if work == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self
    }
}

fn is_prepare_req<T: omnipaxos::Entry>(msg: &ServiceMsg<T>) -> bool {
    match msg {
        // Sharded peers wrap per-group traffic in the group envelope.
        ServiceMsg::Group { msg, .. } => is_prepare_req(msg),
        ServiceMsg::Omni {
            msg: OmniMessage::Paxos(m),
            ..
        } => matches!(m.msg, PaxosMsg::PrepareReq),
        _ => false,
    }
}
