//! A kv client that survives redirects, restarts, and partitions.
//!
//! One synchronous request at a time: send `Request`, wait for the
//! matching `Reply`. On `Redirect` it re-targets the named leader; on
//! `Retry` or any socket trouble it backs off, rotates servers, and
//! resends the *same* `(client, seq)` — the server-side session table
//! dedups, so writes stay exactly-once no matter how many times the
//! client retries (paper §7.2's client behavior under partitions).
//!
//! Reads need one extra rule: a deduplicated `Read` comes back with
//! `applied: false` and no value (the state machine refuses to re-run
//! even a read). Reads are idempotent, so the client simply bumps the
//! sequence number and issues a fresh one.

use crate::frame::{self, kind};
use kvstore::{KvCommand, KvOp, KvResult, KvWire, NodeId, ReadMode, TxnSpec, TxnState};
use omnipaxos::wire::Wire;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Log-free reads live in their own identity space: the client id and the
/// sequence number both carry this flag, so they can never collide with —
/// or poison the admission watermark of — the write session. (A log-path
/// fall-through read marker under a flagged id gets its own session row;
/// flagged seqs keep `Retry` frames unambiguous client-side.)
pub const READ_FLAG: u64 = 1 << 63;

/// Cross-shard transactions likewise ride their own identity space (bit 62
/// of the seq): a `TxnRequest` bypasses the gateway's per-client admission
/// watermark — it is deduplicated by the coordinator shard's decision
/// record, not the session table — so its seq must never be mistaken for,
/// or leave a gap in, the contiguous write session.
pub const TXN_FLAG: u64 = 1 << 62;

pub struct KvClient {
    servers: Vec<(NodeId, SocketAddr)>,
    current: usize,
    stream: Option<TcpStream>,
    client_id: u64,
    seq: u64,
    read_seq: u64,
    /// Per-attempt reply wait before rotating to another server.
    pub attempt_timeout: Duration,
    /// Overall per-operation deadline.
    pub op_timeout: Duration,
}

impl KvClient {
    pub fn new(client_id: u64, servers: Vec<(NodeId, SocketAddr)>) -> Self {
        assert!(!servers.is_empty(), "need at least one server");
        KvClient {
            servers,
            current: 0,
            stream: None,
            client_id,
            seq: 0,
            read_seq: 0,
            attempt_timeout: Duration::from_millis(500),
            op_timeout: Duration::from_secs(20),
        }
    }

    pub fn put(&mut self, key: &str, value: i64) -> std::io::Result<KvResult> {
        self.op(KvOp::Put {
            key: key.into(),
            value,
        })
    }

    pub fn add(&mut self, key: &str, delta: i64) -> std::io::Result<KvResult> {
        self.op(KvOp::Add {
            key: key.into(),
            delta,
        })
    }

    pub fn delete(&mut self, key: &str) -> std::io::Result<KvResult> {
        self.op(KvOp::Delete { key: key.into() })
    }

    /// Compare-and-set: if `key` currently holds `expect` (`None` =
    /// absent), apply `set` (`Some(v)` writes, `None` deletes). The
    /// reply's `applied` is the verdict; on failure `value` carries the
    /// actual current value.
    pub fn cas(
        &mut self,
        key: &str,
        expect: Option<i64>,
        set: Option<i64>,
    ) -> std::io::Result<KvResult> {
        self.op(KvOp::Cas {
            key: key.into(),
            expect,
            set,
        })
    }

    /// Run a (possibly cross-shard) transaction to completion. The
    /// reply's `applied` is the commit verdict; `value` mirrors it as
    /// 1/0. Retries retransmit the same `(client, seq)` — the
    /// coordinator shard's decision record makes the outcome stick no
    /// matter how many times (or at which gateway) the request lands.
    /// The reply's `seq` is the [`TXN_FLAG`]-tagged token — pass it to
    /// [`KvClient::txn_status`] to query the transaction later.
    pub fn txn(&mut self, spec: kvstore::TxnSpec) -> std::io::Result<KvResult> {
        self.seq += 1;
        let token = TXN_FLAG | self.seq;
        let deadline = Instant::now() + self.op_timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("txn not decided within {:?}", self.op_timeout),
                ));
            }
            let msg = KvWire::TxnRequest {
                client: self.client_id,
                seq: token,
                spec: spec.clone(),
            };
            match self.attempt_msg(&msg) {
                Ok(KvWire::Reply(res)) if res.seq == token => return Ok(res),
                Ok(KvWire::Redirect { leader }) | Ok(KvWire::ShardRedirect { leader, .. }) => {
                    self.retarget(leader);
                    std::thread::sleep(Duration::from_millis(20));
                }
                Ok(_) => {} // stale frame: resend
                Err(_) => {
                    self.stream = None;
                    self.rotate();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Ask the connected server for its view of transaction
    /// `(client, seq)` — `Unknown` on a server that hosts none of the
    /// participant shards.
    pub fn txn_status(&mut self, client: u64, seq: u64) -> std::io::Result<TxnState> {
        let deadline = Instant::now() + self.op_timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("txn status not answered within {:?}", self.op_timeout),
                ));
            }
            match self.attempt_msg(&KvWire::TxnStatusReq { client, seq }) {
                Ok(KvWire::TxnStatus {
                    client: c,
                    seq: s,
                    state,
                }) if c == client && s == seq => return Ok(state),
                Ok(_) => {}
                Err(_) => {
                    self.stream = None;
                    self.rotate();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Linearizable read through the log.
    pub fn read(&mut self, key: &str) -> std::io::Result<Option<i64>> {
        self.op(KvOp::Read { key: key.into() }).map(|r| r.value)
    }

    /// Linearizable read served per `mode`. `Log` is [`KvClient::read`];
    /// `Lease` serves at the leaseholder (falling through to the log path
    /// if no lease is held); `ReadIndex` serves at whichever replica this
    /// client is connected to — including followers.
    pub fn read_with_mode(&mut self, key: &str, mode: ReadMode) -> std::io::Result<Option<i64>> {
        if mode == ReadMode::Log {
            return self.read(key);
        }
        self.read_seq += 1;
        let deadline = Instant::now() + self.op_timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("kv read not served within {:?}", self.op_timeout),
                ));
            }
            let token = READ_FLAG | self.read_seq;
            match self.attempt_read(mode, token, key) {
                Ok(KvWire::Reply(res)) if res.seq == token => {
                    if !res.applied {
                        // Deadline-expired on the server: fresh token.
                        self.read_seq += 1;
                        continue;
                    }
                    return Ok(res.value);
                }
                Ok(KvWire::Redirect { leader }) | Ok(KvWire::ShardRedirect { leader, .. }) => {
                    self.retarget(leader);
                    std::thread::sleep(Duration::from_millis(20));
                }
                Ok(KvWire::Retry { seq }) if seq == token => {
                    // The leader holds no lease (still assembling grants,
                    // or leases disabled): fall through to the log path.
                    return self.read(key);
                }
                Ok(_) => {} // stale frame: resend
                Err(_) => {
                    self.stream = None;
                    self.rotate();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Run one operation to completion (retrying as needed).
    pub fn op(&mut self, op: KvOp) -> std::io::Result<KvResult> {
        self.seq += 1;
        let is_read = matches!(op, KvOp::Read { .. });
        let deadline = Instant::now() + self.op_timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("kv op not decided within {:?}", self.op_timeout),
                ));
            }
            let cmd = KvCommand {
                client: self.client_id,
                seq: self.seq,
                op: op.clone(),
            };
            match self.attempt(cmd) {
                Ok(KvWire::Reply(res)) if res.seq == self.seq => {
                    if is_read && !res.applied {
                        // Deduplicated read: re-issue under a fresh seq.
                        self.seq += 1;
                        continue;
                    }
                    return Ok(res);
                }
                Ok(KvWire::Redirect { leader }) | Ok(KvWire::ShardRedirect { leader, .. }) => {
                    self.retarget(leader);
                    std::thread::sleep(Duration::from_millis(20));
                }
                Ok(KvWire::Retry { .. }) => std::thread::sleep(Duration::from_millis(50)),
                Ok(KvWire::CrossShard { seq }) if seq == self.seq => {
                    // Terminal: a multi-key op whose keys live on
                    // different shards can never succeed as a plain
                    // request — reissue it as a transaction instead.
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidInput,
                        "operation spans shards; use a transaction",
                    ));
                }
                Ok(_) => {} // stale reply for an older seq: resend
                Err(_) => {
                    self.stream = None;
                    self.rotate();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// The sequence number of the last issued operation.
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    fn retarget(&mut self, leader: NodeId) {
        match self.servers.iter().position(|(pid, _)| *pid == leader) {
            Some(i) if i != self.current => {
                self.current = i;
                self.stream = None;
            }
            Some(_) => {} // already there; the leader may still be settling
            None => self.rotate(),
        }
    }

    fn rotate(&mut self) {
        self.current = (self.current + 1) % self.servers.len();
        self.stream = None;
    }

    fn ensure_stream(&mut self) -> std::io::Result<&TcpStream> {
        if self.stream.is_none() {
            let addr = self.servers[self.current].1;
            let s = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
            s.set_nodelay(true)?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_ref().unwrap())
    }

    /// One send + one reply attempt against the current server.
    fn attempt(&mut self, cmd: KvCommand) -> std::io::Result<KvWire> {
        let msg = KvWire::Request(cmd);
        self.attempt_msg(&msg)
    }

    /// One log-free read attempt against the current server.
    fn attempt_read(&mut self, mode: ReadMode, token: u64, key: &str) -> std::io::Result<KvWire> {
        let msg = KvWire::ReadRequest {
            mode,
            client: READ_FLAG | self.client_id,
            seq: token,
            key: key.into(),
        };
        self.attempt_msg(&msg)
    }

    fn attempt_msg(&mut self, msg: &KvWire) -> std::io::Result<KvWire> {
        let timeout = self.attempt_timeout;
        let stream = self.ensure_stream()?;
        stream.set_read_timeout(Some(timeout))?;
        let payload = msg.to_bytes();
        let mut w = stream;
        frame::write_frame(&mut w, kind::KV, &payload)?;
        let mut r = stream;
        loop {
            let f = frame::read_frame(&mut r)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
            if f.kind != kind::KV {
                continue;
            }
            match KvWire::from_bytes(&f.payload) {
                Ok(msg) => return Ok(msg),
                Err(_) => continue,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pipelined (open-loop) client

/// One live connection of the pipelined client: the writing socket plus
/// a reader thread that decodes reply frames into a channel, so the
/// submit path never blocks on the wire.
struct PipeConn {
    stream: TcpStream,
    rx: Receiver<KvWire>,
    reader: Option<JoinHandle<()>>,
}

impl Drop for PipeConn {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// An open-loop kv client: many requests in flight at once, windowed by
/// sequence number, with out-of-order completion.
///
/// Where [`KvClient`] runs send→wait→send lockstep (one consensus round
/// trip per op), this client queues ops with [`PipelinedKvClient::submit`]
/// and collects completions with [`PipelinedKvClient::pump`] /
/// [`PipelinedKvClient::wait`]. Queued requests are transmitted as one
/// coalesced `write_all` in strictly increasing seq order; the server
/// keeps admission contiguous per client, so retries after shedding,
/// redirects, or reconnects can never let a later write overtake an
/// earlier one into the log (which the highest-seq-wins session table
/// would otherwise drop as a duplicate).
///
/// Recovery reuses the closed-loop rules: `Redirect` re-targets the named
/// leader, `Retry` backs off and retransmits the same `(client, seq)`,
/// socket trouble rotates servers and retransmits the whole outstanding
/// window — dedup on the server keeps all of it exactly-once. A
/// deduplicated `Read` (`applied: false`) is reissued under a fresh seq
/// and reported to the caller under the seq it originally got.
pub struct PipelinedKvClient {
    servers: Vec<(NodeId, SocketAddr)>,
    current: usize,
    client_id: u64,
    next_seq: u64,
    conn: Option<PipeConn>,
    /// Every outstanding op, keyed by seq (BTreeMap ⇒ seq-order walks).
    inflight: BTreeMap<u64, KvOp>,
    /// Outstanding seqs awaiting (re)transmission, flushed in seq order.
    unsent: BTreeSet<u64>,
    /// Read mode for [`PipelinedKvClient::submit_read`]. Log-free modes
    /// ride their own [`READ_FLAG`]-tagged identity space so they never
    /// perturb the write session's admission contiguity; `Log` routes
    /// through the ordinary write session.
    pub read_mode: ReadMode,
    /// Log-free reads in flight: flagged token → key.
    read_keys: BTreeMap<u64, String>,
    /// Log-free reads awaiting (re)transmission.
    read_unsent: BTreeSet<u64>,
    next_read: u64,
    /// Transactions in flight: flagged token → spec.
    txn_specs: BTreeMap<u64, kvstore::TxnSpec>,
    /// Transactions awaiting (re)transmission.
    txn_unsent: BTreeSet<u64>,
    next_txn: u64,
    /// OR-ed into every txn token. The transaction id `(client, token)`
    /// must be globally unique, but a [`ShardedKvClient`] runs one
    /// session per shard under ONE client id, each numbering its txns
    /// from 1 — colliding ids on different coordinator shards would
    /// cross-wire 2PC state (a participant shard shared by both treats
    /// the second prepare as a duplicate and commits the wrong staged
    /// writes). The sharded client sets this to `shard << 32` so the
    /// token spaces are disjoint.
    txn_tag: u64,
    /// Tokens of ops the gateway rejected as spanning shards (terminal:
    /// such an op can never succeed as a plain request).
    rejected: Vec<u64>,
    /// Reissued reads: transmitted seq → the seq the caller knows.
    alias: HashMap<u64, u64>,
    /// Retransmission backoff gate (set after `Retry` and reconnects).
    gate: Option<Instant>,
    /// `KvWire::Retry` replies observed (overload/gap shedding).
    retries: u64,
    /// Server rotations performed (connect failures, drops, stalls).
    rotations: u64,
    last_progress: Instant,
    next_rotate: Instant,
    /// Backoff before retransmitting a shed (`Retry`) command.
    pub retry_delay: Duration,
    /// Stall length after which the client rotates servers and
    /// retransmits its window.
    pub rotate_after: Duration,
    /// Overall progress deadline: if nothing completes for this long
    /// while ops are outstanding, `pump`/`wait` return `TimedOut`.
    pub op_timeout: Duration,
}

impl PipelinedKvClient {
    pub fn new(client_id: u64, servers: Vec<(NodeId, SocketAddr)>) -> Self {
        assert!(!servers.is_empty(), "need at least one server");
        PipelinedKvClient {
            servers,
            current: 0,
            client_id,
            next_seq: 0,
            conn: None,
            inflight: BTreeMap::new(),
            unsent: BTreeSet::new(),
            read_mode: ReadMode::Log,
            read_keys: BTreeMap::new(),
            read_unsent: BTreeSet::new(),
            next_read: 0,
            txn_specs: BTreeMap::new(),
            txn_unsent: BTreeSet::new(),
            next_txn: 0,
            txn_tag: 0,
            rejected: Vec::new(),
            alias: HashMap::new(),
            gate: None,
            retries: 0,
            rotations: 0,
            last_progress: Instant::now(),
            next_rotate: Instant::now() + Duration::from_secs(1),
            retry_delay: Duration::from_millis(10),
            rotate_after: Duration::from_secs(1),
            op_timeout: Duration::from_secs(20),
        }
    }

    /// Queue `op` under the next seq; nothing is written until the next
    /// [`PipelinedKvClient::pump`]. Returns the seq completions will
    /// carry.
    pub fn submit(&mut self, op: KvOp) -> u64 {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.inflight.insert(seq, op);
        self.unsent.insert(seq);
        if self.in_flight() == 1 {
            // An empty window has no progress to stall on; start the
            // clock when it becomes non-empty.
            self.last_progress = Instant::now();
            self.next_rotate = Instant::now() + self.rotate_after;
        }
        seq
    }

    /// Queue a linearizable read of `key` under this client's
    /// [`PipelinedKvClient::read_mode`]. Returns the token completions
    /// will carry in `KvResult::seq` — a [`READ_FLAG`]-tagged token for
    /// log-free modes, an ordinary session seq for `Log`. A lease read
    /// that finds no leaseholder downgrades to the log path internally
    /// and still completes under its original token.
    pub fn submit_read(&mut self, key: &str) -> u64 {
        if self.read_mode == ReadMode::Log {
            return self.submit(KvOp::Read { key: key.into() });
        }
        self.next_read += 1;
        let token = READ_FLAG | self.next_read;
        self.read_keys.insert(token, key.into());
        self.read_unsent.insert(token);
        if self.in_flight() == 1 {
            self.last_progress = Instant::now();
            self.next_rotate = Instant::now() + self.rotate_after;
        }
        token
    }

    /// Queue a (possibly cross-shard) transaction. Returns the
    /// [`TXN_FLAG`]-tagged token the completion will carry; the
    /// completion's `applied` is the commit verdict (`value` mirrors it
    /// as 1/0). Retransmissions are safe: the coordinator shard's
    /// decision record pins the outcome across retries and gateways.
    pub fn submit_txn(&mut self, spec: kvstore::TxnSpec) -> u64 {
        self.next_txn += 1;
        let token = TXN_FLAG | self.txn_tag | self.next_txn;
        self.txn_specs.insert(token, spec);
        self.txn_unsent.insert(token);
        if self.in_flight() == 1 {
            self.last_progress = Instant::now();
            self.next_rotate = Instant::now() + self.rotate_after;
        }
        token
    }

    /// Ops submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.inflight.len() + self.read_keys.len() + self.txn_specs.len()
    }

    fn window_empty(&self) -> bool {
        self.inflight.is_empty() && self.read_keys.is_empty() && self.txn_specs.is_empty()
    }

    /// Tokens of submitted ops the gateway refused with
    /// [`KvWire::CrossShard`] — multi-key ops whose keys span shards.
    /// Each rejected op is removed from the window when the rejection
    /// arrives; this drains the tokens seen since the last call.
    pub fn take_cross_shard_rejections(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.rejected)
    }

    /// The sequence number of the last submitted operation.
    pub fn last_seq(&self) -> u64 {
        self.next_seq
    }

    /// How many `Retry` replies (shed requests) this client has seen.
    pub fn retries_seen(&self) -> u64 {
        self.retries
    }

    /// How many times this client rotated away from a server (connect
    /// failure, dropped connection, or stall). A live gateway that keeps
    /// answering — even with only `Retry`/`Redirect` — must not inflate
    /// this.
    pub fn rotations_seen(&self) -> u64 {
        self.rotations
    }

    /// One non-blocking cycle: transmit queued requests (one coalesced
    /// write), drain ready replies, run recovery timers. Returns the ops
    /// that completed. `Err` only on the overall progress timeout —
    /// transient socket trouble is retried internally.
    pub fn pump(&mut self) -> std::io::Result<Vec<KvResult>> {
        let mut done = Vec::new();
        self.transmit();
        while let Some(c) = self.conn.as_ref() {
            match c.rx.try_recv() {
                Ok(m) => self.on_msg(m, &mut done),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.fail_conn();
                    break;
                }
            }
        }
        self.check_stall(&done)?;
        Ok(done)
    }

    /// Like [`PipelinedKvClient::pump`], but blocks up to `timeout` for
    /// at least one completion (returns early with everything ready).
    pub fn wait(&mut self, timeout: Duration) -> std::io::Result<Vec<KvResult>> {
        let deadline = Instant::now() + timeout;
        loop {
            let done = self.pump()?;
            if !done.is_empty() || self.window_empty() {
                return Ok(done);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(Vec::new());
            }
            let slice = deadline
                .saturating_duration_since(now)
                .min(Duration::from_millis(5));
            match self.conn.as_ref() {
                Some(c) => match c.rx.recv_timeout(slice) {
                    Ok(m) => {
                        let mut done = Vec::new();
                        self.on_msg(m, &mut done);
                        if !done.is_empty() {
                            return Ok(done);
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => self.fail_conn(),
                },
                None => std::thread::sleep(slice.min(Duration::from_millis(2))),
            }
        }
    }

    /// Run until every outstanding op has completed (or `timeout`
    /// lapses, which is an error). Returns completions in arrival order.
    pub fn drain(&mut self, timeout: Duration) -> std::io::Result<Vec<KvResult>> {
        let deadline = Instant::now() + timeout;
        let mut all = Vec::new();
        while !self.window_empty() {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("{} ops still in flight at drain deadline", self.in_flight()),
                ));
            }
            all.extend(self.wait(Duration::from_millis(50))?);
        }
        Ok(all)
    }

    fn on_msg(&mut self, msg: KvWire, done: &mut Vec<KvResult>) {
        // Any inbound frame proves the gateway is alive and talking to
        // us; push the rotation deadline back. Without this, a gateway
        // that answers only `Retry`/`Redirect` for a while (overload
        // shed, mid-election) looks identical to a dead one, and the
        // stall timer abandons a live connection mid-window — rotating
        // costs a reconnect plus a full-window retransmission, which
        // under load makes the stall *worse*. Rotation is for servers
        // that have gone mute, not slow ones.
        self.next_rotate = Instant::now() + self.rotate_after;
        match msg {
            KvWire::Reply(mut res) if res.seq & READ_FLAG != 0 => {
                // A log-free read completed (or expired server-side).
                let token = res.seq;
                let Some(key) = self.read_keys.remove(&token) else {
                    return; // duplicate reply from a retransmission
                };
                self.read_unsent.remove(&token);
                self.last_progress = Instant::now();
                let orig = self.alias.remove(&token).unwrap_or(token);
                if !res.applied {
                    // The server's read-index deadline expired (leader
                    // unreachable): reissue under a fresh token, still
                    // reported to the caller under the original one.
                    self.next_read += 1;
                    let fresh = READ_FLAG | self.next_read;
                    self.read_keys.insert(fresh, key);
                    self.read_unsent.insert(fresh);
                    self.alias.insert(fresh, orig);
                    return;
                }
                res.seq = orig;
                done.push(res);
            }
            KvWire::Retry { seq } if seq & READ_FLAG != 0 => {
                // A lease read reached the leader but no lease is held
                // (still assembling grants, or leases disabled): fall
                // through to the log path under the write session. The
                // completion still carries the original read token.
                if let Some(key) = self.read_keys.remove(&seq) {
                    self.read_unsent.remove(&seq);
                    self.retries += 1;
                    let orig = self.alias.remove(&seq).unwrap_or(seq);
                    let fresh = self.submit(KvOp::Read { key });
                    self.alias.insert(fresh, orig);
                }
            }
            KvWire::Reply(res) if res.seq & TXN_FLAG != 0 => {
                // A transaction resolved; `applied` is the commit verdict.
                if self.txn_specs.remove(&res.seq).is_none() {
                    return; // duplicate reply from a retransmission
                }
                self.txn_unsent.remove(&res.seq);
                self.last_progress = Instant::now();
                done.push(res);
            }
            KvWire::Reply(mut res) => {
                let seq = res.seq;
                let Some(op) = self.inflight.remove(&seq) else {
                    return; // duplicate reply from a retransmission
                };
                self.unsent.remove(&seq);
                self.last_progress = Instant::now();
                let orig = self.alias.remove(&seq).unwrap_or(seq);
                if matches!(op, KvOp::Read { .. }) && !res.applied {
                    // Deduplicated read: reissue under a fresh seq, still
                    // reported to the caller under the original one.
                    self.next_seq += 1;
                    let fresh = self.next_seq;
                    self.inflight.insert(fresh, op);
                    self.unsent.insert(fresh);
                    self.alias.insert(fresh, orig);
                    return;
                }
                res.seq = orig;
                done.push(res);
            }
            KvWire::Redirect { leader } | KvWire::ShardRedirect { leader, .. } => {
                // A pipelined client targets one shard (or an unsharded
                // store), so a shard redirect is just a leader hint for
                // that shard.
                self.retarget(leader);
                let gate = Instant::now() + Duration::from_millis(20);
                self.gate = Some(self.gate.map_or(gate, |g| g.max(gate)));
            }
            KvWire::Retry { seq } => {
                if self.inflight.contains_key(&seq) {
                    self.retries += 1;
                    self.unsent.insert(seq);
                    let gate = Instant::now() + self.retry_delay;
                    self.gate = Some(self.gate.map_or(gate, |g| g.max(gate)));
                }
            }
            KvWire::CrossShard { seq } => {
                // The gateway refused a multi-key op whose keys span
                // shards. Terminal: retrying can never succeed, so pull
                // the op from the window and surface the token instead
                // of retransmitting forever.
                if self.inflight.remove(&seq).is_some() {
                    self.unsent.remove(&seq);
                    self.last_progress = Instant::now();
                    let orig = self.alias.remove(&seq).unwrap_or(seq);
                    self.rejected.push(orig);
                }
            }
            // Servers never send requests; routing-table frames are the
            // sharded wrapper's business (it refreshes via bootstrap);
            // status queries are the synchronous client's.
            KvWire::Request(_)
            | KvWire::ReadRequest { .. }
            | KvWire::ShardsReq
            | KvWire::Shards { .. }
            | KvWire::TxnRequest { .. }
            | KvWire::TxnStatusReq { .. }
            | KvWire::TxnStatus { .. } => {}
        }
    }

    /// Write every due outstanding request as one coalesced frame batch,
    /// in strictly increasing seq order.
    fn transmit(&mut self) {
        // Reconnection is driven by *outstanding* ops, not unsent ones: a
        // dropped connection clears nothing from `inflight`, and
        // `connect` re-marks the whole window for retransmission.
        if self.window_empty()
            || (self.conn.is_some()
                && self.unsent.is_empty()
                && self.read_unsent.is_empty()
                && self.txn_unsent.is_empty())
        {
            return;
        }
        if let Some(g) = self.gate {
            if Instant::now() < g {
                return;
            }
        }
        if self.conn.is_none() && !self.connect() {
            return;
        }
        if self.unsent.is_empty() && self.read_unsent.is_empty() && self.txn_unsent.is_empty() {
            return;
        }
        let mut buf = Vec::new();
        for (&seq, op) in self.inflight.iter() {
            if !self.unsent.contains(&seq) {
                continue;
            }
            let cmd = KvCommand {
                client: self.client_id,
                seq,
                op: op.clone(),
            };
            let payload = KvWire::Request(cmd).to_bytes();
            buf.extend_from_slice(&frame::encode_frame(kind::KV, &payload));
        }
        for (&token, key) in self.read_keys.iter() {
            if !self.read_unsent.contains(&token) {
                continue;
            }
            let payload = KvWire::ReadRequest {
                mode: self.read_mode,
                client: READ_FLAG | self.client_id,
                seq: token,
                key: key.clone(),
            }
            .to_bytes();
            buf.extend_from_slice(&frame::encode_frame(kind::KV, &payload));
        }
        for (&token, spec) in self.txn_specs.iter() {
            if !self.txn_unsent.contains(&token) {
                continue;
            }
            let payload = KvWire::TxnRequest {
                client: self.client_id,
                seq: token,
                spec: spec.clone(),
            }
            .to_bytes();
            buf.extend_from_slice(&frame::encode_frame(kind::KV, &payload));
        }
        let conn = self.conn.as_ref().expect("connected above");
        let mut w = &conn.stream;
        if w.write_all(&buf).is_ok() {
            self.unsent.clear();
            self.read_unsent.clear();
            self.txn_unsent.clear();
            self.gate = None;
        } else {
            self.fail_conn();
        }
    }

    /// Open a connection to the current server and spawn its reader.
    /// Marks the whole outstanding window for retransmission: anything
    /// sent on a previous connection may be lost, and resending from the
    /// lowest seq keeps per-client admission contiguous on the server.
    fn connect(&mut self) -> bool {
        let addr = self.servers[self.current].1;
        let stream = match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(s) => s,
            Err(_) => {
                self.rotate();
                let gate = Instant::now() + Duration::from_millis(20);
                self.gate = Some(self.gate.map_or(gate, |g| g.max(gate)));
                return false;
            }
        };
        let _ = stream.set_nodelay(true);
        let Ok(r) = stream.try_clone() else {
            return false;
        };
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name("kv-pipe-reader".into())
            .spawn(move || {
                let mut r = &r;
                loop {
                    match frame::read_frame(&mut r) {
                        Ok(f) if f.kind == kind::KV => {
                            if let Ok(msg) = KvWire::from_bytes(&f.payload) {
                                if tx.send(msg).is_err() {
                                    return;
                                }
                            }
                        }
                        Ok(_) => continue,
                        Err(e) if !e.is_fatal() => continue,
                        Err(_) => return,
                    }
                }
            })
            .ok();
        self.unsent = self.inflight.keys().copied().collect();
        self.read_unsent = self.read_keys.keys().copied().collect();
        self.txn_unsent = self.txn_specs.keys().copied().collect();
        self.conn = Some(PipeConn { stream, rx, reader });
        true
    }

    fn fail_conn(&mut self) {
        self.conn = None; // Drop shuts the socket down and joins the reader
        self.rotate();
        let gate = Instant::now() + Duration::from_millis(20);
        self.gate = Some(self.gate.map_or(gate, |g| g.max(gate)));
    }

    fn check_stall(&mut self, done: &[KvResult]) -> std::io::Result<()> {
        if self.window_empty() || !done.is_empty() {
            return Ok(());
        }
        if self.last_progress.elapsed() > self.op_timeout {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                format!(
                    "no completion within {:?} ({} ops in flight)",
                    self.op_timeout,
                    self.in_flight()
                ),
            ));
        }
        if Instant::now() >= self.next_rotate {
            // Stalled: the server may be gone or mute. Try the next one
            // and retransmit the window there.
            self.next_rotate = Instant::now() + self.rotate_after;
            self.fail_conn();
        }
        Ok(())
    }

    fn retarget(&mut self, leader: NodeId) {
        match self.servers.iter().position(|(pid, _)| *pid == leader) {
            Some(i) if i != self.current => {
                self.current = i;
                self.conn = None;
            }
            Some(_) => {} // already there; the leader may still be settling
            None => self.fail_conn(),
        }
    }

    fn rotate(&mut self) {
        self.rotations += 1;
        self.current = (self.current + 1) % self.servers.len();
        self.conn = None;
    }

    /// Point this client at the server with pid `leader` (0 or unknown
    /// pids leave the target unchanged — the next stall rotates anyway).
    fn target_leader(&mut self, leader: NodeId) {
        if let Some(i) = self.servers.iter().position(|(pid, _)| *pid == leader) {
            if i != self.current {
                self.current = i;
                self.conn = None;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded (routing) client

/// Fetch the routing table from any reachable server: connect, send
/// [`KvWire::ShardsReq`], return the per-shard leader pids. `leaders.len()`
/// is the cluster's shard count (1 for an unsharded store).
pub fn fetch_shards(
    servers: &[(NodeId, SocketAddr)],
    timeout: Duration,
) -> std::io::Result<Vec<NodeId>> {
    let mut last_err = std::io::Error::new(ErrorKind::NotConnected, "no servers");
    for &(_, addr) in servers {
        let attempt = (|| -> std::io::Result<Vec<NodeId>> {
            let stream = TcpStream::connect_timeout(&addr, timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(timeout))?;
            let mut w = &stream;
            frame::write_frame(&mut w, kind::KV, &KvWire::ShardsReq.to_bytes())?;
            let mut r = &stream;
            loop {
                let f = frame::read_frame(&mut r)
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                if f.kind != kind::KV {
                    continue;
                }
                match KvWire::from_bytes(&f.payload) {
                    Ok(KvWire::Shards { leaders }) => return Ok(leaders),
                    Ok(_) | Err(_) => continue,
                }
            }
        })();
        match attempt {
            Ok(leaders) if !leaders.is_empty() => return Ok(leaders),
            Ok(_) => last_err = std::io::Error::new(ErrorKind::InvalidData, "empty routing table"),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// An open-loop client for a sharded store: one [`PipelinedKvClient`]
/// session per shard (sessions — and their seq spaces — are per shard on
/// the server), each pointed at its shard's cached leader. Ops route by
/// [`kvstore::shard_of_op`]; the cache self-heals because a mis-routed
/// request earns a [`KvWire::ShardRedirect`] that re-targets that shard's
/// session, and a stalled shard rotates servers on its own.
pub struct ShardedKvClient {
    shards: Vec<PipelinedKvClient>,
}

impl ShardedKvClient {
    /// Build a client for `n_shards` shards without asking the cluster
    /// (every shard starts at the first server and discovers its leader
    /// via redirects).
    pub fn new(client_id: u64, servers: Vec<(NodeId, SocketAddr)>, n_shards: usize) -> Self {
        assert!(n_shards > 0, "at least one shard");
        let shards = (0..n_shards)
            .map(|s| {
                let mut c = PipelinedKvClient::new(client_id, servers.clone());
                // Disjoint txn-token spaces per shard session: all
                // sessions share one client id, and the transaction id
                // (client, token) must never collide across coordinator
                // shards (see `PipelinedKvClient::txn_tag`).
                c.txn_tag = (s as u64) << 32;
                c
            })
            .collect();
        ShardedKvClient { shards }
    }

    /// Bootstrap from the cluster: fetch the routing table (shard count +
    /// per-shard leaders) and point each shard's session at its leader.
    pub fn bootstrap(
        client_id: u64,
        servers: Vec<(NodeId, SocketAddr)>,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let leaders = fetch_shards(&servers, timeout)?;
        let mut c = ShardedKvClient::new(client_id, servers, leaders.len());
        c.apply_routes(&leaders);
        Ok(c)
    }

    /// Re-point each shard's session at the given leader pids (0 entries
    /// leave that shard's current target alone).
    pub fn apply_routes(&mut self, leaders: &[NodeId]) {
        for (s, &l) in leaders.iter().enumerate().take(self.shards.len()) {
            if l != 0 {
                self.shards[s].target_leader(l);
            }
        }
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's underlying session (for timeouts, counters, tests).
    pub fn shard(&mut self, shard: u32) -> &mut PipelinedKvClient {
        &mut self.shards[shard as usize]
    }

    /// Queue `op` on its owning shard; completions carry `(shard, seq)`.
    pub fn submit(&mut self, op: KvOp) -> (u32, u64) {
        let s = kvstore::shard_of_op(&op, self.shards.len());
        (s, self.shards[s as usize].submit(op))
    }

    /// Set every shard session's read mode (see
    /// [`PipelinedKvClient::read_mode`]).
    pub fn set_read_mode(&mut self, mode: ReadMode) {
        for c in &mut self.shards {
            c.read_mode = mode;
        }
    }

    /// Queue a linearizable read of `key` on its owning shard; the
    /// completion carries `(shard, token)`.
    pub fn submit_read(&mut self, key: &str) -> (u32, u64) {
        let s = kvstore::shard_of_key(key, self.shards.len());
        (s, self.shards[s as usize].submit_read(key))
    }

    /// Queue a transaction on the session of its coordinator shard (the
    /// lowest participant shard — the same deterministic choice every
    /// server makes), so the request lands on the coordinating leader
    /// directly. The completion carries `(shard, TXN_FLAG-tagged token)`
    /// with `applied` = commit verdict.
    pub fn submit_txn(&mut self, spec: TxnSpec) -> (u32, u64) {
        let n = self.shards.len();
        let s = spec
            .keys()
            .map(|k| kvstore::shard_of_key(k, n))
            .min()
            .unwrap_or(0);
        (s, self.shards[s as usize].submit_txn(spec))
    }

    /// Queue a balance transfer: move `amount` from `from` to `to` iff
    /// `from` holds at least `amount`. Same-shard pairs ride the atomic
    /// single-entry [`KvOp::Transfer`]; cross-shard pairs become a 2PC
    /// transaction (the returned token then carries [`TXN_FLAG`]).
    /// Either way the completion's `applied` says whether money moved.
    pub fn transfer(&mut self, from: &str, to: &str, amount: i64) -> (u32, u64) {
        let n = self.shards.len();
        if kvstore::shard_of_key(from, n) == kvstore::shard_of_key(to, n) {
            self.submit(KvOp::Transfer {
                from: from.into(),
                to: to.into(),
                amount,
            })
        } else {
            self.submit_txn(TxnSpec::transfer(from, to, amount))
        }
    }

    /// Drain `(shard, token)` pairs the gateways refused with
    /// [`KvWire::CrossShard`] (see
    /// [`PipelinedKvClient::take_cross_shard_rejections`]).
    pub fn take_cross_shard_rejections(&mut self) -> Vec<(u32, u64)> {
        let mut all = Vec::new();
        for (s, c) in self.shards.iter_mut().enumerate() {
            for token in c.take_cross_shard_rejections() {
                all.push((s as u32, token));
            }
        }
        all
    }

    /// Total ops submitted but not yet completed, across shards.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|c| c.in_flight()).sum()
    }

    /// `Retry` replies seen across all shard sessions.
    pub fn retries_seen(&self) -> u64 {
        self.shards.iter().map(|c| c.retries_seen()).sum()
    }

    /// One non-blocking cycle over every shard session; completed ops are
    /// tagged with their shard.
    pub fn pump(&mut self) -> std::io::Result<Vec<(u32, KvResult)>> {
        let mut done = Vec::new();
        for (s, c) in self.shards.iter_mut().enumerate() {
            for res in c.pump()? {
                done.push((s as u32, res));
            }
        }
        Ok(done)
    }

    /// Run until every shard's window is empty (or `timeout` lapses,
    /// which is an error).
    pub fn drain(&mut self, timeout: Duration) -> std::io::Result<Vec<(u32, KvResult)>> {
        let deadline = Instant::now() + timeout;
        let mut all = Vec::new();
        while self.in_flight() > 0 {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("{} ops still in flight at drain deadline", self.in_flight()),
                ));
            }
            all.extend(self.pump()?);
            if self.in_flight() > 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::TxnSpec;

    /// Two transfers queued on different coordinator shards must carry
    /// distinct transaction ids: all shard sessions share one client id,
    /// so colliding tokens would cross-wire 2PC state on any participant
    /// shard the transactions have in common (the second prepare reads
    /// as a duplicate of the first and the wrong staged writes commit).
    #[test]
    fn txn_tokens_are_disjoint_across_shard_sessions() {
        let servers = vec![(1, "127.0.0.1:1".parse().unwrap())];
        let mut c = ShardedKvClient::new(7, servers, 4);
        let mut seen = std::collections::HashSet::new();
        // Synthetic single-shard specs pinned to each session in turn:
        // submit_txn only queues, so no connection is ever attempted.
        for s in 0..4u32 {
            for _ in 0..3 {
                let token = c.shard(s).submit_txn(TxnSpec::transfer("a", "b", 1));
                assert!(token & TXN_FLAG != 0, "txn tokens carry the flag");
                assert!(
                    seen.insert(token),
                    "token {token:#x} issued by two shard sessions"
                );
            }
        }
    }
}
