//! A kv client that survives redirects, restarts, and partitions.
//!
//! One synchronous request at a time: send `Request`, wait for the
//! matching `Reply`. On `Redirect` it re-targets the named leader; on
//! `Retry` or any socket trouble it backs off, rotates servers, and
//! resends the *same* `(client, seq)` — the server-side session table
//! dedups, so writes stay exactly-once no matter how many times the
//! client retries (paper §7.2's client behavior under partitions).
//!
//! Reads need one extra rule: a deduplicated `Read` comes back with
//! `applied: false` and no value (the state machine refuses to re-run
//! even a read). Reads are idempotent, so the client simply bumps the
//! sequence number and issues a fresh one.

use crate::frame::{self, kind};
use kvstore::{KvCommand, KvOp, KvResult, KvWire, NodeId};
use omnipaxos::wire::Wire;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

pub struct KvClient {
    servers: Vec<(NodeId, SocketAddr)>,
    current: usize,
    stream: Option<TcpStream>,
    client_id: u64,
    seq: u64,
    /// Per-attempt reply wait before rotating to another server.
    pub attempt_timeout: Duration,
    /// Overall per-operation deadline.
    pub op_timeout: Duration,
}

impl KvClient {
    pub fn new(client_id: u64, servers: Vec<(NodeId, SocketAddr)>) -> Self {
        assert!(!servers.is_empty(), "need at least one server");
        KvClient {
            servers,
            current: 0,
            stream: None,
            client_id,
            seq: 0,
            attempt_timeout: Duration::from_millis(500),
            op_timeout: Duration::from_secs(20),
        }
    }

    pub fn put(&mut self, key: &str, value: i64) -> std::io::Result<KvResult> {
        self.op(KvOp::Put {
            key: key.into(),
            value,
        })
    }

    pub fn add(&mut self, key: &str, delta: i64) -> std::io::Result<KvResult> {
        self.op(KvOp::Add {
            key: key.into(),
            delta,
        })
    }

    pub fn delete(&mut self, key: &str) -> std::io::Result<KvResult> {
        self.op(KvOp::Delete { key: key.into() })
    }

    /// Linearizable read through the log.
    pub fn read(&mut self, key: &str) -> std::io::Result<Option<i64>> {
        self.op(KvOp::Read { key: key.into() }).map(|r| r.value)
    }

    /// Run one operation to completion (retrying as needed).
    pub fn op(&mut self, op: KvOp) -> std::io::Result<KvResult> {
        self.seq += 1;
        let is_read = matches!(op, KvOp::Read { .. });
        let deadline = Instant::now() + self.op_timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("kv op not decided within {:?}", self.op_timeout),
                ));
            }
            let cmd = KvCommand {
                client: self.client_id,
                seq: self.seq,
                op: op.clone(),
            };
            match self.attempt(cmd) {
                Ok(KvWire::Reply(res)) if res.seq == self.seq => {
                    if is_read && !res.applied {
                        // Deduplicated read: re-issue under a fresh seq.
                        self.seq += 1;
                        continue;
                    }
                    return Ok(res);
                }
                Ok(KvWire::Redirect { leader }) => {
                    self.retarget(leader);
                    std::thread::sleep(Duration::from_millis(20));
                }
                Ok(KvWire::Retry { .. }) => std::thread::sleep(Duration::from_millis(50)),
                Ok(_) => {} // stale reply for an older seq: resend
                Err(_) => {
                    self.stream = None;
                    self.rotate();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// The sequence number of the last issued operation.
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    fn retarget(&mut self, leader: NodeId) {
        match self.servers.iter().position(|(pid, _)| *pid == leader) {
            Some(i) if i != self.current => {
                self.current = i;
                self.stream = None;
            }
            Some(_) => {} // already there; the leader may still be settling
            None => self.rotate(),
        }
    }

    fn rotate(&mut self) {
        self.current = (self.current + 1) % self.servers.len();
        self.stream = None;
    }

    fn ensure_stream(&mut self) -> std::io::Result<&TcpStream> {
        if self.stream.is_none() {
            let addr = self.servers[self.current].1;
            let s = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
            s.set_nodelay(true)?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_ref().unwrap())
    }

    /// One send + one reply attempt against the current server.
    fn attempt(&mut self, cmd: KvCommand) -> std::io::Result<KvWire> {
        let timeout = self.attempt_timeout;
        let stream = self.ensure_stream()?;
        stream.set_read_timeout(Some(timeout))?;
        let payload = KvWire::Request(cmd).to_bytes();
        let mut w = stream;
        frame::write_frame(&mut w, kind::KV, &payload)?;
        let mut r = stream;
        loop {
            let f = frame::read_frame(&mut r)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
            if f.kind != kind::KV {
                continue;
            }
            match KvWire::from_bytes(&f.payload) {
                Ok(msg) => return Ok(msg),
                Err(_) => continue,
            }
        }
    }
}
