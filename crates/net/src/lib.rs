//! # net — real transport for the Omni-Paxos reproduction
//!
//! The paper's deployment (§7) runs replicas on separate machines over
//! TCP; until this crate, the reproduction only ran inside the
//! deterministic simulator. This crate closes that gap without giving up
//! the simulator:
//!
//! * [`frame`] — length-prefixed, checksummed frames carrying the wire
//!   codec (`omnipaxos::wire`) payloads, with a typed fatal/droppable
//!   error split implementing the forward-compatibility contract.
//! * [`link`] — the [`NetworkLink`](link::NetworkLink) trait: the narrow
//!   waist replica drivers are written against, plus the deterministic
//!   [`SimHub`](link::SimHub)/[`SimLink`](link::SimLink) backend.
//! * [`tcp`] — [`TcpTransport`](tcp::TcpTransport): session-oriented
//!   connections over `std::net` (zero external dependencies), with
//!   reconnect + exponential backoff, heartbeat dead-session detection,
//!   and monotonically numbered sessions, so the paper's session-based
//!   FIFO link assumptions (§4.1.3) hold over real sockets.
//! * [`server`] / [`client`] — the deployable kvstore: a server driver
//!   generic over the link backend, a client-facing TCP gateway, and a
//!   retrying client. `omni-kv-server` / `omni-kv-client` are the
//!   binaries.

pub mod client;
pub mod frame;
pub mod link;
pub mod server;
pub mod tcp;

pub use client::{fetch_shards, KvClient, PipelinedKvClient, ShardedKvClient};
pub use frame::{Frame, FrameError};
pub use link::{LinkCounters, LinkEvent, MsgSize, NetworkLink, SimHub, SimLink};
pub use server::{ClientGateway, KvServer};
pub use tcp::{TcpConfig, TcpTransport};
