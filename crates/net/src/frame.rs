//! Length-prefixed, checksummed frames — the unit of transmission on a
//! TCP connection.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [magic 4B "OPXW"] [version u8] [kind u8] [len u32] [payload len B] [crc u32]
//! ```
//!
//! The CRC is the WAL's FNV-1a checksum (`omnipaxos::wire::checksum`)
//! computed over `version..payload` (everything between magic and crc), so
//! a bit flip anywhere in the variable part is caught. The magic is
//! excluded: a bad magic already means framing sync is lost.
//!
//! ## Error discipline
//!
//! Frame errors split into two classes, and the distinction is the
//! forward-compatibility contract (see `omnipaxos::messages`):
//!
//! - **Fatal** ([`FrameError::is_fatal`] = true): bad magic, bad checksum,
//!   truncated stream, oversized length, I/O error. The byte stream can no
//!   longer be trusted to be frame-aligned — tear the connection down.
//! - **Droppable**: the envelope verified (magic, length, CRC all good)
//!   but the version byte is newer than ours ([`FrameError::BadVersion`]).
//!   The decoder stays in sync; drop the frame, count it, keep reading.
//!   Unknown `kind` bytes and unknown payload discriminants are handled the
//!   same way one layer up (the transport), because the frame layer cannot
//!   know which kinds exist.

use omnipaxos::wire::{checksum_parts, WireError, WIRE_VERSION};
use std::io::{Read, Write};

/// Frame preamble: "OmniPaxos Wire".
pub const MAGIC: [u8; 4] = *b"OPXW";
/// Bytes before the payload: magic + version + kind + len.
pub const HEADER_LEN: usize = 10;
/// Bytes after the payload.
pub const TRAILER_LEN: usize = 4;
/// Ceiling on a frame payload. Generous (snapshot chunks are ~1 MiB) but
/// finite, so a corrupt or hostile length field cannot OOM the reader.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Frame kinds. Append-only, like every discriminant on the wire.
pub mod kind {
    /// Connection handshake: `[pid u64][proposed_session u64]`.
    pub const HELLO: u8 = 1;
    /// Handshake reply: `[pid u64][chosen_session u64]`.
    pub const HELLO_ACK: u8 = 2;
    /// Keepalive; empty payload. Any frame proves liveness, heartbeats
    /// exist so idle connections still do.
    pub const HEARTBEAT: u8 = 3;
    /// Replication traffic: a `Wire`-encoded message (`ServiceMsg` etc).
    pub const MSG: u8 = 4;
    /// Client traffic: a `Wire`-encoded `KvWire`.
    pub const KV: u8 = 5;
}

/// A decoded frame. The payload is still opaque bytes; the transport
/// dispatches on `kind` and runs the payload through the wire codec.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub version: u8,
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// Everything that can go wrong reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Stream ended (or slice ran out) mid-frame.
    Truncated,
    /// First four bytes were not [`MAGIC`] — framing sync is lost.
    BadMagic([u8; 4]),
    /// Envelope verified but the version is one we do not speak.
    /// Droppable: the peer is newer, not corrupt.
    BadVersion(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// FNV-1a mismatch — the frame was damaged in flight.
    BadChecksum { expected: u32, got: u32 },
    /// Payload framing was fine but the wire codec rejected the contents.
    Wire(WireError),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl FrameError {
    /// True when the byte stream can no longer be trusted to be
    /// frame-aligned and the connection must be torn down. `BadVersion`
    /// and `Wire` errors leave the stream in sync: drop and count.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, FrameError::BadVersion(_) | FrameError::Wire(_))
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "stream truncated mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::TooLarge(n) => write!(f, "payload length {n} exceeds cap"),
            FrameError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
            FrameError::Wire(e) => write!(f, "payload rejected: {e}"),
            FrameError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode one frame into a contiguous buffer (one `write` syscall's worth).
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.push(WIRE_VERSION);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = checksum_parts(&[&buf[4..]]);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(kind, payload))
}

/// Decode one frame from the front of `buf`; returns the frame and how
/// many bytes it consumed. This is the slice-level twin of [`read_frame`]
/// (the fuzz corpus drives this directly).
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let magic: [u8; 4] = buf[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = buf[4];
    let kind = buf[5];
    let len = u32::from_le_bytes(buf[6..10].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len as usize];
    let got = u32::from_le_bytes(buf[total - TRAILER_LEN..total].try_into().unwrap());
    let expected = checksum_parts(&[&buf[4..HEADER_LEN], payload]);
    if got != expected {
        return Err(FrameError::BadChecksum { expected, got });
    }
    // Version is checked only after the envelope verifies: an intact frame
    // from a newer peer is droppable, not a reason to disconnect.
    if version != WIRE_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    Ok((
        Frame {
            version,
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Read one frame from a blocking stream. I/O errors (including EOF
/// mid-frame, surfaced as `Truncated`) are fatal to the connection.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact(r, &mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = header[4];
    let kind = header[5];
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload)?;
    let mut trailer = [0u8; TRAILER_LEN];
    read_exact(r, &mut trailer)?;
    let got = u32::from_le_bytes(trailer);
    let expected = checksum_parts(&[&header[4..], &payload]);
    if got != expected {
        return Err(FrameError::BadChecksum { expected, got });
    }
    if version != WIRE_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    Ok(Frame {
        version,
        kind,
        payload,
    })
}

fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_consumed_len() {
        let payload = b"hello frames";
        let bytes = encode_frame(kind::MSG, payload);
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame.kind, kind::MSG);
        assert_eq!(frame.version, WIRE_VERSION);
        assert_eq!(frame.payload, payload);
        // Stream path agrees with slice path.
        let mut cursor = &bytes[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn every_truncation_is_truncated() {
        let bytes = encode_frame(kind::KV, b"abc");
        for n in 0..bytes.len() {
            match decode_frame(&bytes[..n]) {
                Err(FrameError::Truncated) => {}
                other => panic!("prefix {n}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_version_droppable_only_if_crc_holds() {
        let mut bytes = encode_frame(kind::MSG, b"payload");
        bytes[4] = 99; // version byte — now the CRC no longer matches.
        match decode_frame(&bytes) {
            Err(e @ FrameError::BadChecksum { .. }) => assert!(e.is_fatal()),
            other => panic!("expected BadChecksum, got {other:?}"),
        }
        // Re-seal the frame with the new version: now it is droppable.
        let crc = checksum_parts(&[&bytes[4..bytes.len() - 4]]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match decode_frame(&bytes) {
            Err(e @ FrameError::BadVersion(99)) => assert!(!e.is_fatal()),
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        let mut bytes = encode_frame(kind::MSG, b"x");
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&bytes) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = encode_frame(kind::MSG, b"x");
        bytes[0] = b'X';
        let err = decode_frame(&bytes).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)));
        assert!(err.is_fatal());
    }
}
