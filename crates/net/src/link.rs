//! The transport abstraction: one trait, two backends.
//!
//! [`NetworkLink`] is the narrow waist between the replica drivers (the
//! cluster runner, the kv server) and the bytes underneath. The simulator
//! backend ([`SimHub`]/[`SimLink`]) keeps every deterministic test exactly
//! as deterministic as before; the TCP backend (`tcp::TcpTransport`) runs
//! the same replica code over real sockets. The paper's session-based
//! FIFO links (§4.1.3) surface here as [`LinkEvent::SessionEstablished`] /
//! [`LinkEvent::SessionDropped`]: a dropped session means messages may
//! have been lost, so the replica must re-sync state (`PrepareReq`).

use omnipaxos::NodeId;
use simulator::{Network, NetworkConfig, SimTime};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Anything a link can hand the replica driver.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkEvent<M> {
    /// A message arrived from `from`.
    Message { from: NodeId, msg: M },
    /// A new session to `peer` is live. Messages flow FIFO within it.
    /// Replicas use this to trigger `reconnected()` → `PrepareReq`
    /// re-sync, since anything sent in the previous session may be lost.
    SessionEstablished { peer: NodeId, session: u64 },
    /// The session to `peer` died (socket error, heartbeat timeout, or a
    /// simulated cut). In-flight messages may be lost.
    SessionDropped { peer: NodeId, session: u64 },
}

/// Transport-level counters, for benches and assertions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkCounters {
    pub msgs_sent: u64,
    pub msgs_received: u64,
    pub bytes_sent: u64,
    /// Sends attempted while no session to the destination was up.
    pub send_drops: u64,
    /// Intact frames dropped for forward-compat reasons (unknown kind,
    /// unknown version, undecodable payload) — counted, never fatal.
    pub frames_dropped: u64,
    pub sessions_established: u64,
    pub sessions_dropped: u64,
    pub reconnect_attempts: u64,
    /// Coalesced writes issued by session writers: each batch is one
    /// `write_all` covering `writer_frames / writer_batches` frames on
    /// average. A simulated link has no writer, so these stay zero there.
    pub writer_batches: u64,
    /// Frames carried by those coalesced writes.
    pub writer_frames: u64,
    /// Payload bytes carried by those coalesced writes (excludes
    /// heartbeats, which have their own counters below).
    pub writer_bytes: u64,
    /// Idle-keepalive HEARTBEAT frames actually emitted.
    pub heartbeats_sent: u64,
    /// Heartbeat cadence points skipped because real traffic within the
    /// interval already proved the link alive.
    pub heartbeats_suppressed: u64,
}

/// Byte accounting for messages entering a link. The simulator needs a
/// size to model NIC serialization; implementors reuse their existing
/// `size_bytes` models.
pub trait MsgSize {
    fn size_bytes(&self) -> usize;
}

impl<T: omnipaxos::Entry> MsgSize for omnipaxos::ServiceMsg<T> {
    fn size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

/// A node's handle onto the network, simulated or real.
///
/// The contract both backends honor:
/// - `send` is fire-and-forget; without an established session the
///   message is dropped and counted (`send_drops`), like UDP to a dead
///   host. Replication protocols already tolerate loss.
/// - `poll` drains everything currently deliverable, in order. Within a
///   session, messages from one peer arrive FIFO.
/// - Session numbers per peer pair are monotonically increasing for the
///   lifetime of the pair (across reconnects).
pub trait NetworkLink<M>: Send {
    /// This node's id.
    fn pid(&self) -> NodeId;
    /// Queue `msg` for delivery to `to`.
    fn send(&mut self, to: NodeId, msg: M);
    /// Drain pending events (messages + session changes), in order.
    fn poll(&mut self) -> Vec<LinkEvent<M>>;
    /// Current counters snapshot.
    fn counters(&self) -> LinkCounters;
}

struct HubState<M> {
    net: Network<M>,
    /// Delivered-but-not-polled events, per node.
    ready: HashMap<NodeId, VecDeque<LinkEvent<M>>>,
    /// Session number per unordered pair, bumped on every establish.
    sessions: HashMap<(NodeId, NodeId), u64>,
    counters: HashMap<NodeId, LinkCounters>,
}

fn pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    (a.min(b), a.max(b))
}

/// The deterministic backend: wraps the discrete-event [`Network`] and
/// fans its deliveries out to per-node [`SimLink`] handles.
///
/// Time does not advance on its own — the driving loop calls
/// [`SimHub::drain_due`] with each tick deadline, which moves every due
/// delivery into its destination's ready queue. `cut`/`heal` flip link
/// state and synthesize the session events a real transport would emit,
/// so session-driven recovery logic is testable without sockets.
pub struct SimHub<M> {
    state: Arc<Mutex<HubState<M>>>,
}

impl<M> Clone for SimHub<M> {
    fn clone(&self) -> Self {
        SimHub {
            state: Arc::clone(&self.state),
        }
    }
}

impl<M: MsgSize> SimHub<M> {
    pub fn new(config: NetworkConfig) -> Self {
        let nodes = config.nodes.clone();
        let mut state = HubState {
            net: Network::new(config),
            ready: HashMap::new(),
            sessions: HashMap::new(),
            counters: HashMap::new(),
        };
        // Every pair starts connected: session 1 for all, established
        // silently (replicas treat boot as already-connected, matching
        // the pre-transport simulator semantics).
        for (i, &a) in nodes.iter().enumerate() {
            state.ready.entry(a).or_default();
            state.counters.entry(a).or_default();
            for &b in &nodes[i + 1..] {
                state.sessions.insert(pair(a, b), 1);
            }
        }
        SimHub {
            state: Arc::new(Mutex::new(state)),
        }
    }

    /// A node's handle. One per node; handles share the hub.
    pub fn link(&self, pid: NodeId) -> SimLink<M> {
        SimLink {
            hub: self.clone(),
            pid,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.state.lock().unwrap().net.now()
    }

    /// Move every delivery due by `deadline` into its destination's ready
    /// queue (in global delivery order), then advance time to `deadline`.
    pub fn drain_due(&self, deadline: SimTime) {
        let mut s = self.state.lock().unwrap();
        while let Some(d) = s.net.pop_next_before(deadline) {
            let c = s.counters.entry(d.dst).or_default();
            c.msgs_received += 1;
            s.ready
                .entry(d.dst)
                .or_default()
                .push_back(LinkEvent::Message {
                    from: d.src,
                    msg: d.msg,
                });
        }
        s.net.advance_to(deadline);
    }

    /// Cut the link between `a` and `b` (both directions). If it was up,
    /// both sides get a `SessionDropped` for the current session.
    pub fn cut(&self, a: NodeId, b: NodeId) {
        let mut s = self.state.lock().unwrap();
        if s.net.links_mut().set_link(a, b, false) {
            let session = *s.sessions.get(&pair(a, b)).unwrap_or(&1);
            for (me, peer) in [(a, b), (b, a)] {
                s.counters.entry(me).or_default().sessions_dropped += 1;
                s.ready
                    .entry(me)
                    .or_default()
                    .push_back(LinkEvent::SessionDropped { peer, session });
            }
        }
    }

    /// Heal the link between `a` and `b`. If it was down, a new session
    /// (previous + 1) is established and both sides are told.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut s = self.state.lock().unwrap();
        if s.net.links_mut().set_link(a, b, true) {
            let session = {
                let e = s.sessions.entry(pair(a, b)).or_insert(0);
                *e += 1;
                *e
            };
            for (me, peer) in [(a, b), (b, a)] {
                s.counters.entry(me).or_default().sessions_established += 1;
                s.ready
                    .entry(me)
                    .or_default()
                    .push_back(LinkEvent::SessionEstablished { peer, session });
            }
        }
    }

    /// Drop queued in-flight traffic between a pair — what a real
    /// connection teardown does to its socket buffers.
    pub fn drop_in_flight_between(&self, a: NodeId, b: NodeId) {
        self.state.lock().unwrap().net.drop_in_flight_between(a, b);
    }

    /// Simulate a node crash: lose its in-flight and undelivered traffic.
    pub fn crash(&self, node: NodeId) {
        let mut s = self.state.lock().unwrap();
        s.net.drop_in_flight_for(node);
        s.ready.entry(node).or_default().clear();
    }

    /// Direct access to the underlying network (stats, link table,
    /// jitter) for drivers that need more than the link API.
    pub fn with_net<R>(&self, f: impl FnOnce(&mut Network<M>) -> R) -> R {
        let mut s = self.state.lock().unwrap();
        f(&mut s.net)
    }
}

/// One node's [`NetworkLink`] onto a [`SimHub`].
pub struct SimLink<M> {
    hub: SimHub<M>,
    pid: NodeId,
}

impl<M: MsgSize + Send> NetworkLink<M> for SimLink<M> {
    fn pid(&self) -> NodeId {
        self.pid
    }

    fn send(&mut self, to: NodeId, msg: M) {
        let mut s = self.hub.state.lock().unwrap();
        let bytes = msg.size_bytes();
        let up = s.net.links().is_up(self.pid, to);
        let c = s.counters.entry(self.pid).or_default();
        if up {
            c.msgs_sent += 1;
            c.bytes_sent += bytes as u64;
        } else {
            c.send_drops += 1;
        }
        // Down links also drop inside `Network::send` (keeping its drop
        // stats accurate); the counter split above mirrors the TCP
        // backend's no-session accounting.
        s.net.send(self.pid, to, bytes, msg);
    }

    fn poll(&mut self) -> Vec<LinkEvent<M>> {
        let mut s = self.hub.state.lock().unwrap();
        s.ready.entry(self.pid).or_default().drain(..).collect()
    }

    fn counters(&self) -> LinkCounters {
        let s = self.hub.state.lock().unwrap();
        s.counters.get(&self.pid).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64);
    impl MsgSize for Ping {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    fn hub() -> SimHub<Ping> {
        SimHub::new(NetworkConfig {
            nodes: vec![1, 2, 3],
            default_latency_us: 1_000,
            jitter_us: 0,
            nic_bytes_per_sec: None,
            priority_bytes: 0,
            seed: 7,
        })
    }

    #[test]
    fn delivery_respects_latency_and_fifo() {
        let hub = hub();
        let mut l1 = hub.link(1);
        let mut l2 = hub.link(2);
        l1.send(2, Ping(1));
        l1.send(2, Ping(2));
        hub.drain_due(500);
        assert!(l2.poll().is_empty(), "nothing due before latency");
        hub.drain_due(2_000);
        let got = l2.poll();
        assert_eq!(
            got,
            vec![
                LinkEvent::Message {
                    from: 1,
                    msg: Ping(1)
                },
                LinkEvent::Message {
                    from: 1,
                    msg: Ping(2)
                },
            ]
        );
        assert_eq!(l1.counters().msgs_sent, 2);
        assert_eq!(l2.counters().msgs_received, 2);
    }

    #[test]
    fn cut_drops_sends_and_heal_bumps_session() {
        let hub = hub();
        let mut l1 = hub.link(1);
        let mut l2 = hub.link(2);
        hub.cut(1, 2);
        assert_eq!(
            l1.poll(),
            vec![LinkEvent::SessionDropped {
                peer: 2,
                session: 1
            }]
        );
        l1.send(2, Ping(9));
        hub.drain_due(10_000);
        assert!(l2
            .poll()
            .iter()
            .all(|e| !matches!(e, LinkEvent::Message { .. })));
        assert_eq!(l1.counters().send_drops, 1);

        hub.heal(1, 2);
        assert_eq!(
            l2.poll(),
            vec![LinkEvent::SessionEstablished {
                peer: 1,
                session: 2
            }]
        );
        // Double heal is a no-op: no duplicate session events.
        hub.heal(1, 2);
        assert!(l2.poll().is_empty());
    }
}
