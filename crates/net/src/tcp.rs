//! Session-oriented TCP transport.
//!
//! One [`TcpTransport`] per node. Connections are deduplicated by a
//! fixed dialing rule — **the smaller pid dials the larger** — so a pair
//! of nodes maintains exactly one connection, re-established by the
//! dialer with exponential backoff + jitter after any failure.
//!
//! ## Sessions
//!
//! Every established connection carries a session number agreed in the
//! handshake: the dialer proposes `last_seen + 1`, the acceptor answers
//! `max(proposed, its_own_last + 1)`, and both adopt the answer. As long
//! as either side remembers the pair's history, session numbers are
//! monotonically increasing across reconnects and transport restarts —
//! which is what lets a replica distinguish "same session, FIFO holds"
//! from "new session, messages may be lost, re-sync" (paper §4.1.3).
//!
//! ## Threads
//!
//! * one **acceptor** (nonblocking accept loop),
//! * one **dialer** per peer with larger pid (connect → handshake → hand
//!   the socket to a session; retry with backoff),
//! * per live session, a **writer** (drains the send queue, emits
//!   heartbeats when idle, enforces the dead-session timeout) and a
//!   **reader** (blocking frame decode; unblocked on teardown by the
//!   writer shutting the socket down).
//!
//! Dead sessions are detected by silence: any complete frame refreshes
//! `last_rx`; if nothing arrives for `heartbeat_timeout`, the writer
//! tears the session down and the dialer (whichever side it is) starts
//! reconnecting. Steady message traffic doubles as heartbeat traffic —
//! explicit HEARTBEAT frames only flow when the writer is idle.
//!
//! ## Forward compatibility
//!
//! Intact frames with an unknown version, unknown kind, or undecodable
//! payload are dropped and counted (`frames_dropped`), never fatal. Only
//! an unverifiable envelope (bad magic / checksum / truncation) tears the
//! connection down — at that point framing sync is gone.

use crate::frame::{self, kind};
use crate::link::{LinkCounters, LinkEvent, NetworkLink};
use omnipaxos::wire::{BatchCache, Wire};
use omnipaxos::NodeId;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock `m`, recovering from poison. Session threads die on connection
/// errors by design; a panic in one (a bug, but survivable) must degrade
/// to a dropped session, not take the whole transport down with it. The
/// guarded state (peer table, session numbers, event queue) stays
/// consistent under poison: every critical section completes its updates
/// or none matter beyond a lost message.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Transport tuning knobs.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Idle interval after which the writer emits a HEARTBEAT frame.
    pub heartbeat_interval: Duration,
    /// Silence (no complete frame received) after which a session is
    /// declared dead. Must be a few multiples of `heartbeat_interval`.
    pub heartbeat_timeout: Duration,
    /// First reconnect delay; doubles per failure up to `backoff_cap`.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Handshake must complete within this long.
    pub handshake_timeout: Duration,
    /// Per-session outbound queue depth; senders drop (and count) when
    /// the writer cannot keep up, mirroring a full socket buffer.
    pub send_queue: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_millis(250),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            send_queue: 4096,
        }
    }
}

#[derive(Default)]
struct AtomicCounters {
    msgs_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_sent: AtomicU64,
    send_drops: AtomicU64,
    frames_dropped: AtomicU64,
    sessions_established: AtomicU64,
    sessions_dropped: AtomicU64,
    reconnect_attempts: AtomicU64,
    writer_batches: AtomicU64,
    writer_frames: AtomicU64,
    writer_bytes: AtomicU64,
    heartbeats_sent: AtomicU64,
    heartbeats_suppressed: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> LinkCounters {
        LinkCounters {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            send_drops: self.send_drops.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            sessions_established: self.sessions_established.load(Ordering::Relaxed),
            sessions_dropped: self.sessions_dropped.load(Ordering::Relaxed),
            reconnect_attempts: self.reconnect_attempts.load(Ordering::Relaxed),
            writer_batches: self.writer_batches.load(Ordering::Relaxed),
            writer_frames: self.writer_frames.load(Ordering::Relaxed),
            writer_bytes: self.writer_bytes.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            heartbeats_suppressed: self.heartbeats_suppressed.load(Ordering::Relaxed),
        }
    }
}

/// A live session to one peer: the writer's queue plus the socket (kept
/// so teardown can unblock the reader).
struct PeerSession {
    session: u64,
    tx: SyncSender<Vec<u8>>,
    stream: TcpStream,
}

struct Shared<M> {
    pid: NodeId,
    cfg: TcpConfig,
    peers: Mutex<HashMap<NodeId, PeerSession>>,
    /// Last session number seen per peer — handshake monotonicity state.
    sessions: Mutex<HashMap<NodeId, u64>>,
    events: Mutex<VecDeque<LinkEvent<M>>>,
    counters: AtomicCounters,
    shutdown: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
    epoch: Instant,
}

impl<M> Shared<M> {
    fn push_event(&self, ev: LinkEvent<M>) {
        lock_unpoisoned(&self.events).push_back(ev);
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// The session-oriented TCP transport. See the module docs for the
/// design; see [`NetworkLink`] for the contract it implements.
pub struct TcpTransport<M> {
    shared: Arc<Shared<M>>,
    cache: BatchCache,
    local_addr: SocketAddr,
}

impl<M: Wire + Send + 'static> TcpTransport<M> {
    /// Bind `addrs[pid]` and start the acceptor plus one dialer per
    /// larger-pid peer. Retries `AddrInUse` briefly so a restarted node
    /// can rebind its old address while the OS releases it.
    pub fn bind(
        pid: NodeId,
        addrs: HashMap<NodeId, SocketAddr>,
        cfg: TcpConfig,
    ) -> std::io::Result<Self> {
        let addr = *addrs
            .get(&pid)
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "own pid not in addrs"))?;
        let deadline = Instant::now() + Duration::from_secs(5);
        let listener = loop {
            match TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(e) if e.kind() == ErrorKind::AddrInUse && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        };
        Self::with_listener(pid, listener, addrs, cfg)
    }

    /// Like [`TcpTransport::bind`] but with a pre-bound listener —
    /// tests bind port 0 first to learn their ephemeral address.
    pub fn with_listener(
        pid: NodeId,
        listener: TcpListener,
        addrs: HashMap<NodeId, SocketAddr>,
        cfg: TcpConfig,
    ) -> std::io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            pid,
            cfg,
            peers: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            events: Mutex::new(VecDeque::new()),
            counters: AtomicCounters::default(),
            shutdown: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        });

        // Startup spawn failures (fd/thread exhaustion) are the one place
        // errors surface to the caller: a transport missing its acceptor
        // or a dialer would be silently partitioned forever. Tear down
        // whatever already started and report.
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        let abort = |shared: &Arc<Shared<M>>, handles: Vec<JoinHandle<()>>, e: std::io::Error| {
            shared.shutdown.store(true, Ordering::SeqCst);
            for h in handles {
                let _ = h.join();
            }
            Err(e)
        };
        {
            let shared2 = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("net-accept-{pid}"))
                .spawn(move || accept_loop(shared2, listener))
            {
                Ok(h) => handles.push(h),
                Err(e) => return abort(&shared, handles, e),
            }
        }
        // Dialing rule: smaller pid dials larger, so each pair has one owner.
        for (&peer, &peer_addr) in &addrs {
            if peer <= pid {
                continue;
            }
            let shared2 = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("net-dial-{pid}-{peer}"))
                .spawn(move || dial_loop(shared2, peer, peer_addr))
            {
                Ok(h) => handles.push(h),
                Err(e) => return abort(&shared, handles, e),
            }
        }
        lock_unpoisoned(&shared.threads).extend(handles);

        Ok(TcpTransport {
            shared,
            cache: BatchCache::new(),
            local_addr,
        })
    }

    /// The bound replication address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop all threads and close all sockets. Idempotent; also runs on
    /// drop. After this the transport sends nothing and polls nothing.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for (_, sess) in lock_unpoisoned(&self.shared.peers).drain() {
            let _ = sess.stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = lock_unpoisoned(&self.shared.threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for (_, sess) in lock_unpoisoned(&self.shared.peers).drain() {
            let _ = sess.stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = lock_unpoisoned(&self.shared.threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<M: Wire + Send + 'static> NetworkLink<M> for TcpTransport<M> {
    fn pid(&self) -> NodeId {
        self.shared.pid
    }

    fn send(&mut self, to: NodeId, msg: M) {
        let mut payload = Vec::new();
        msg.encode(&mut payload, &mut self.cache);
        let bytes = frame::encode_frame(kind::MSG, &payload);
        let n = bytes.len() as u64;
        let peers = lock_unpoisoned(&self.shared.peers);
        match peers.get(&to) {
            Some(sess) => match sess.tx.try_send(bytes) {
                Ok(()) => {
                    self.shared
                        .counters
                        .msgs_sent
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .counters
                        .bytes_sent
                        .fetch_add(n, Ordering::Relaxed);
                }
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.shared
                        .counters
                        .send_drops
                        .fetch_add(1, Ordering::Relaxed);
                }
            },
            None => {
                self.shared
                    .counters
                    .send_drops
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn poll(&mut self) -> Vec<LinkEvent<M>> {
        // Cycle boundary for the batch-encoding cache (see BatchCache).
        self.cache.reset();
        lock_unpoisoned(&self.shared.events).drain(..).collect()
    }

    fn counters(&self) -> LinkCounters {
        self.shared.counters.snapshot()
    }
}

// ---------------------------------------------------------------------------
// connection establishment

fn accept_loop<M: Wire + Send + 'static>(shared: Arc<Shared<M>>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Every socket runs with TCP_NODELAY from the moment it
                // exists: replication frames are latency-critical and the
                // writer already coalesces, so Nagle only adds delay.
                let _ = stream.set_nodelay(true);
                let shared2 = Arc::clone(&shared);
                match std::thread::Builder::new()
                    .name(format!("net-hs-{}", shared.pid))
                    .spawn(move || {
                        if let Some((peer, session)) = handshake_accept(&shared2, &stream) {
                            run_session(shared2, peer, session, stream);
                        }
                    }) {
                    Ok(h) => lock_unpoisoned(&shared.threads).push(h),
                    // Thread exhaustion: drop this connection (the stream
                    // moved into the failed spawn and closes) and breathe;
                    // the peer's dialer will retry with backoff.
                    Err(_) => std::thread::sleep(Duration::from_millis(50)),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn dial_loop<M: Wire + Send + 'static>(shared: Arc<Shared<M>>, peer: NodeId, addr: SocketAddr) {
    let mut backoff = shared.cfg.backoff_base;
    // Deterministic per-(pid, peer) jitter seed; decorrelates nodes
    // without pulling in a RNG dependency.
    let mut jrng: u64 = 0x9E37_79B9_7F4A_7C15 ^ (shared.pid << 16) ^ peer;
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Only dial when no session to this peer is live.
        let connected = lock_unpoisoned(&shared.peers).contains_key(&peer);
        if connected {
            std::thread::sleep(shared.cfg.heartbeat_interval);
            backoff = shared.cfg.backoff_base;
            continue;
        }
        shared
            .counters
            .reconnect_attempts
            .fetch_add(1, Ordering::Relaxed);
        if let Ok(stream) = TcpStream::connect_timeout(&addr, shared.cfg.handshake_timeout) {
            let _ = stream.set_nodelay(true);
            if let Some(session) = handshake_dial(&shared, &stream, peer) {
                backoff = shared.cfg.backoff_base;
                run_session(Arc::clone(&shared), peer, session, stream);
                // Session ended; fall through to reconnect.
                continue;
            }
        }
        // xorshift jitter in [0, backoff/2).
        jrng ^= jrng << 13;
        jrng ^= jrng >> 7;
        jrng ^= jrng << 17;
        let jitter = Duration::from_millis(jrng % (backoff.as_millis().max(2) as u64 / 2).max(1));
        sleep_unless_shutdown(&shared, backoff + jitter);
        backoff = (backoff * 2).min(shared.cfg.backoff_cap);
    }
}

/// Dialer side: send HELLO `[pid][last_seen + 1]`, adopt the session the
/// acceptor chooses.
fn handshake_dial<M>(shared: &Arc<Shared<M>>, stream: &TcpStream, peer: NodeId) -> Option<u64> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(shared.cfg.handshake_timeout))
        .ok()?;
    let proposed = lock_unpoisoned(&shared.sessions)
        .get(&peer)
        .copied()
        .unwrap_or(0)
        + 1;
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(&shared.pid.to_le_bytes());
    payload.extend_from_slice(&proposed.to_le_bytes());
    let mut w = stream;
    frame::write_frame(&mut w, kind::HELLO, &payload).ok()?;
    let mut r = stream;
    let ack = frame::read_frame(&mut r).ok()?;
    if ack.kind != kind::HELLO_ACK || ack.payload.len() != 16 {
        return None;
    }
    let got_pid = u64::from_le_bytes(ack.payload[0..8].try_into().unwrap());
    let session = u64::from_le_bytes(ack.payload[8..16].try_into().unwrap());
    if got_pid != peer || session < proposed {
        return None;
    }
    stream.set_read_timeout(None).ok()?;
    Some(session)
}

/// Acceptor side: read HELLO, choose `max(proposed, last_seen + 1)`,
/// answer HELLO_ACK.
fn handshake_accept<M>(shared: &Arc<Shared<M>>, stream: &TcpStream) -> Option<(NodeId, u64)> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(shared.cfg.handshake_timeout))
        .ok()?;
    let mut r = stream;
    let hello = frame::read_frame(&mut r).ok()?;
    if hello.kind != kind::HELLO || hello.payload.len() != 16 {
        return None;
    }
    let peer = u64::from_le_bytes(hello.payload[0..8].try_into().unwrap());
    let proposed = u64::from_le_bytes(hello.payload[8..16].try_into().unwrap());
    let session = {
        let sessions = lock_unpoisoned(&shared.sessions);
        proposed.max(sessions.get(&peer).copied().unwrap_or(0) + 1)
    };
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(&shared.pid.to_le_bytes());
    payload.extend_from_slice(&session.to_le_bytes());
    let mut w = stream;
    frame::write_frame(&mut w, kind::HELLO_ACK, &payload).ok()?;
    stream.set_read_timeout(None).ok()?;
    Some((peer, session))
}

// ---------------------------------------------------------------------------
// session lifetime

/// Install the session, run reader + writer until it dies, then clean
/// up and emit `SessionDropped`. Called on the dialer or handshake
/// thread; the writer runs inline here, the reader on its own thread.
fn run_session<M: Wire + Send + 'static>(
    shared: Arc<Shared<M>>,
    peer: NodeId,
    session: u64,
    stream: TcpStream,
) {
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(shared.cfg.send_queue);
    let last_rx = Arc::new(AtomicU64::new(shared.now_ms()));

    // fd exhaustion can fail the dup; the session then never starts —
    // the dialer retries with backoff, the acceptor waits for a redial.
    let Ok(peers_stream) = stream.try_clone() else {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    };
    {
        let mut peers = lock_unpoisoned(&shared.peers);
        // A concurrent session to the same peer (possible when both ends
        // race a reconnect) is superseded: keep the newer session number.
        if let Some(old) = peers.get(&peer) {
            if old.session >= session {
                return;
            }
            let _ = old.stream.shutdown(std::net::Shutdown::Both);
        }
        peers.insert(
            peer,
            PeerSession {
                session,
                tx,
                stream: peers_stream,
            },
        );
    }
    let mut sessions = lock_unpoisoned(&shared.sessions);
    let e = sessions.entry(peer).or_insert(0);
    *e = (*e).max(session);
    drop(sessions);

    shared
        .counters
        .sessions_established
        .fetch_add(1, Ordering::Relaxed);
    shared.push_event(LinkEvent::SessionEstablished { peer, session });

    // Reader: blocking decode loop, unblocked by socket shutdown. A
    // clone/spawn failure skips straight to teardown below, which emits
    // the `SessionDropped` pairing the event just pushed.
    let reader_handle = {
        let shared2 = Arc::clone(&shared);
        let last_rx = Arc::clone(&last_rx);
        stream.try_clone().ok().and_then(|s| {
            std::thread::Builder::new()
                .name(format!("net-read-{}-{peer}", shared2.pid))
                .spawn(move || read_loop(shared2, peer, s, last_rx))
                .ok()
        })
    };

    if reader_handle.is_some() {
        write_loop(&shared, &stream, rx, &last_rx);
    }

    // Teardown: close the socket (unblocks the reader), drop the peer
    // entry if it is still ours (a newer session may have replaced it).
    let _ = stream.shutdown(std::net::Shutdown::Both);
    if let Some(h) = reader_handle {
        let _ = h.join();
    }
    let mut peers = lock_unpoisoned(&shared.peers);
    if peers.get(&peer).map(|p| p.session) == Some(session) {
        peers.remove(&peer);
    }
    drop(peers);
    shared
        .counters
        .sessions_dropped
        .fetch_add(1, Ordering::Relaxed);
    if !shared.shutdown.load(Ordering::SeqCst) {
        shared.push_event(LinkEvent::SessionDropped { peer, session });
    }
}

/// Cap on one coalesced write. A frame larger than this still goes out
/// whole (the first frame always enters the batch); the cap only stops
/// the writer from aggregating the queue into unbounded buffers.
const MAX_COALESCE_BYTES: usize = 256 * 1024;

fn write_loop<M>(
    shared: &Arc<Shared<M>>,
    stream: &TcpStream,
    rx: Receiver<Vec<u8>>,
    last_rx: &AtomicU64,
) {
    let heartbeat = frame::encode_frame(kind::HEARTBEAT, &[]);
    // Coalescing buffer, reused across wakeups: every wakeup drains the
    // whole queue and issues one `write_all`, so a burst of N frames
    // costs one syscall instead of N.
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut w = stream;
    let mut last_tx = Instant::now();
    let mut hb_deadline = Instant::now() + shared.cfg.heartbeat_interval;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Dead-session check: silence beyond the timeout kills the link.
        let silent = shared
            .now_ms()
            .saturating_sub(last_rx.load(Ordering::Relaxed));
        if silent > shared.cfg.heartbeat_timeout.as_millis() as u64 {
            return;
        }
        // Heartbeats run on a fixed cadence, but a cadence point is
        // skipped when real traffic within the interval already proved
        // the link alive — data doubles as keepalive.
        let now = Instant::now();
        if now >= hb_deadline {
            if now.duration_since(last_tx) < shared.cfg.heartbeat_interval {
                shared
                    .counters
                    .heartbeats_suppressed
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                if w.write_all(&heartbeat).is_err() {
                    return;
                }
                last_tx = now;
                shared
                    .counters
                    .heartbeats_sent
                    .fetch_add(1, Ordering::Relaxed);
            }
            hb_deadline = now + shared.cfg.heartbeat_interval;
        }
        let wait = hb_deadline
            .saturating_duration_since(now)
            .min(shared.cfg.heartbeat_interval);
        match rx.recv_timeout(wait) {
            Ok(first) => {
                buf.clear();
                buf.extend_from_slice(&first);
                let mut frames = 1u64;
                while buf.len() < MAX_COALESCE_BYTES {
                    match rx.try_recv() {
                        Ok(bytes) => {
                            buf.extend_from_slice(&bytes);
                            frames += 1;
                        }
                        Err(_) => break,
                    }
                }
                if w.write_all(&buf).is_err() {
                    return;
                }
                last_tx = Instant::now();
                let c = &shared.counters;
                c.writer_batches.fetch_add(1, Ordering::Relaxed);
                c.writer_frames.fetch_add(frames, Ordering::Relaxed);
                c.writer_bytes
                    .fetch_add(buf.len() as u64, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn read_loop<M: Wire + Send + 'static>(
    shared: Arc<Shared<M>>,
    peer: NodeId,
    stream: TcpStream,
    last_rx: Arc<AtomicU64>,
) {
    let mut r = &stream;
    loop {
        match frame::read_frame(&mut r) {
            Ok(f) => {
                last_rx.store(shared.now_ms(), Ordering::Relaxed);
                match f.kind {
                    kind::HEARTBEAT => {}
                    kind::MSG => match M::from_bytes(&f.payload) {
                        Ok(msg) => {
                            shared
                                .counters
                                .msgs_received
                                .fetch_add(1, Ordering::Relaxed);
                            shared.push_event(LinkEvent::Message { from: peer, msg });
                        }
                        Err(_) => {
                            // Intact envelope, unintelligible payload:
                            // drop + count (forward-compat contract).
                            shared
                                .counters
                                .frames_dropped
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    _ => {
                        shared
                            .counters
                            .frames_dropped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if !e.is_fatal() => {
                last_rx.store(shared.now_ms(), Ordering::Relaxed);
                shared
                    .counters
                    .frames_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => return,
        }
    }
}

fn sleep_unless_shutdown<M>(shared: &Arc<Shared<M>>, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::KvWire;

    fn ephemeral() -> (TcpListener, SocketAddr) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = l.local_addr().unwrap();
        (l, a)
    }

    fn pair_transports() -> (TcpTransport<KvWire>, TcpTransport<KvWire>) {
        let (l1, a1) = ephemeral();
        let (l2, a2) = ephemeral();
        let addrs: HashMap<NodeId, SocketAddr> = [(1, a1), (2, a2)].into();
        let cfg = TcpConfig {
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(10),
            ..TcpConfig::default()
        };
        let t1 = TcpTransport::with_listener(1, l1, addrs.clone(), cfg.clone()).unwrap();
        let t2 = TcpTransport::with_listener(2, l2, addrs, cfg).unwrap();
        (t1, t2)
    }

    fn wait_for<F: FnMut() -> bool>(mut f: F, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !f() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn sessions_establish_and_messages_flow() {
        let (mut t1, mut t2) = pair_transports();
        let mut established = None;
        wait_for(
            || {
                for ev in t1.poll() {
                    if let LinkEvent::SessionEstablished { peer: 2, session } = ev {
                        established = Some(session);
                    }
                }
                established.is_some()
            },
            "session 1->2",
        );
        t1.send(2, KvWire::Redirect { leader: 3 });
        wait_for(
            || {
                t2.poll().iter().any(|e| {
                    matches!(e, LinkEvent::Message { from: 1, msg } if *msg == KvWire::Redirect { leader: 3 })
                })
            },
            "message at node 2",
        );
        assert_eq!(t1.counters().msgs_sent, 1);
    }

    #[test]
    fn restart_yields_higher_session_and_drop_events() {
        let (mut t1, t2) = pair_transports();
        let mut first = None;
        wait_for(
            || {
                for ev in t1.poll() {
                    if let LinkEvent::SessionEstablished { peer: 2, session } = ev {
                        first = Some(session);
                    }
                }
                first.is_some()
            },
            "first session",
        );
        // Kill node 2's transport entirely (simulates a crash/restart).
        let addr2 = t2.local_addr();
        drop(t2);
        let mut dropped = false;
        wait_for(
            || {
                for ev in t1.poll() {
                    if matches!(ev, LinkEvent::SessionDropped { peer: 2, .. }) {
                        dropped = true;
                    }
                }
                dropped
            },
            "session drop at node 1",
        );
        // Restart node 2 on the same address; node 1 re-dials.
        let (_, a1) = ephemeral(); // unused addr for map completeness below
        let addrs: HashMap<NodeId, SocketAddr> = [(1, a1), (2, addr2)].into();
        let _t2b: TcpTransport<KvWire> =
            TcpTransport::bind(2, addrs, TcpConfig::default()).unwrap();
        let mut second = None;
        wait_for(
            || {
                for ev in t1.poll() {
                    if let LinkEvent::SessionEstablished { peer: 2, session } = ev {
                        second = Some(session);
                    }
                }
                second.is_some()
            },
            "second session",
        );
        assert!(
            second.unwrap() > first.unwrap(),
            "sessions must be monotone: {first:?} -> {second:?}"
        );
    }

    #[test]
    fn send_without_session_drops_and_counts() {
        let (l1, a1) = ephemeral();
        let addrs: HashMap<NodeId, SocketAddr> =
            [(1, a1), (2, "127.0.0.1:9".parse().unwrap())].into();
        let mut t1: TcpTransport<KvWire> =
            TcpTransport::with_listener(1, l1, addrs, TcpConfig::default()).unwrap();
        t1.send(2, KvWire::Retry { seq: 1 });
        assert_eq!(t1.counters().send_drops, 1);
        assert_eq!(t1.counters().msgs_sent, 0);
    }

    #[test]
    fn writer_coalesces_bursts_and_suppresses_heartbeats() {
        let (mut t1, mut t2) = pair_transports();
        wait_for(
            || {
                t1.poll()
                    .iter()
                    .any(|e| matches!(e, LinkEvent::SessionEstablished { peer: 2, .. }))
            },
            "session 1->2",
        );

        // Burst: enqueue a pile of frames faster than the writer can
        // issue syscalls; the writer must fold them into far fewer
        // `write_all` calls — and they must all still decode at node 2.
        const BURST: u64 = 2000;
        for i in 0..BURST {
            t1.send(2, KvWire::Retry { seq: i });
        }
        let mut got = 0u64;
        wait_for(
            || {
                t1.poll(); // keep node 1 draining its own events
                got += t2
                    .poll()
                    .iter()
                    .filter(|e| matches!(e, LinkEvent::Message { from: 1, .. }))
                    .count() as u64;
                got == BURST
            },
            "burst delivery",
        );
        let c = t1.counters();
        assert!(
            c.writer_frames >= BURST,
            "all frames must pass through the writer: {}",
            c.writer_frames
        );
        assert!(
            c.writer_batches < c.writer_frames,
            "a backed-up channel must coalesce: {} batches for {} frames",
            c.writer_batches,
            c.writer_frames
        );
        assert!(c.writer_bytes > 0);

        // Steady load: one frame every 5ms against a 20ms heartbeat
        // interval. Every cadence point falls inside the interval since
        // the last data write, so heartbeats are suppressed, not sent.
        let hb_sent_before = t1.counters().heartbeats_sent;
        let start = Instant::now();
        let mut seq = BURST;
        while start.elapsed() < Duration::from_millis(300) {
            t1.send(2, KvWire::Retry { seq });
            seq += 1;
            t1.poll();
            t2.poll();
            std::thread::sleep(Duration::from_millis(5));
        }
        let c = t1.counters();
        assert!(
            c.heartbeats_suppressed >= 1,
            "steady traffic must suppress heartbeats: {c:?}"
        );
        assert!(
            c.heartbeats_sent <= hb_sent_before + 1,
            "at most one heartbeat may slip out under steady load: {} -> {}",
            hb_sent_before,
            c.heartbeats_sent
        );
    }
}
