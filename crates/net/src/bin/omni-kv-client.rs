//! Command-line client for a running omni-kv cluster.
//!
//! ```text
//! omni-kv-client --servers 1=127.0.0.1:7201,2=127.0.0.1:7202 put balance 100
//! omni-kv-client --servers ... read balance        # linearizable
//! omni-kv-client --servers ... add balance -25
//! omni-kv-client --servers ... delete balance
//! omni-kv-client --servers ... cas balance 100 75  # set 75 iff currently 100
//! omni-kv-client --servers ... transfer a b 25     # atomic, cross-shard if needed
//! omni-kv-client --servers ... txn-status <client> <seq>
//! omni-kv-client --servers ... bench 1000          # closed loop: sequential puts
//! omni-kv-client --servers ... pbench 100000 512   # open loop: 512 puts in flight
//! omni-kv-client --servers ... --deadline-ms 2000 read balance
//! ```
//!
//! `cas` takes `nil` for either value: `cas k nil 5` inserts iff absent,
//! `cas k 5 nil` deletes iff currently 5. `transfer` routes same-shard
//! pairs through the atomic single-entry op and cross-shard pairs through
//! the 2PC transaction path; either way it prints the commit verdict and
//! the transaction id usable with `txn-status`.

use kvstore::{KvOp, NodeId, ReadMode, TxnSpec};
use net::client::{KvClient, PipelinedKvClient};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: omni-kv-client --servers <pid=addr,...> [--deadline-ms N] \
         [--read-mode log|lease|read-index] \
         (put <k> <v> | read <k> | add <k> <d> | delete <k> | \
         cas <k> <expect|nil> <set|nil> | transfer <from> <to> <amount> | \
         txn-status <client> <seq> | bench <n> | pbench <n> [window])"
    );
    std::process::exit(2)
}

fn parse_servers(spec: &str) -> Option<Vec<(NodeId, SocketAddr)>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (pid, addr) = part.split_once('=')?;
        out.push((
            pid.trim().parse().ok()?,
            addr.trim().parse::<SocketAddr>().ok()?,
        ));
    }
    (!out.is_empty()).then_some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut servers = None;
    let mut deadline = None;
    let mut read_mode = ReadMode::Log;
    let mut rest: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--servers" => servers = it.next().and_then(|v| parse_servers(v)),
            "--read-mode" => {
                read_mode = match it.next().map(String::as_str) {
                    Some("log") => ReadMode::Log,
                    Some("lease") => ReadMode::Lease,
                    Some("read-index") => ReadMode::ReadIndex,
                    _ => usage(),
                };
            }
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                deadline = Some(Duration::from_millis(ms.max(1)));
            }
            other => rest.push(other),
        }
    }
    let Some(servers) = servers else { usage() };
    // Client id from pid + time so concurrent clients get distinct
    // sessions without coordination.
    let client_id = (std::process::id() as u64) << 32
        | std::time::UNIX_EPOCH
            .elapsed()
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(1);
    let mut client = KvClient::new(client_id, servers.clone());
    if let Some(d) = deadline {
        // Overall per-op deadline: retries and redirects keep going until
        // it lapses, then the op fails with a timeout error.
        client.op_timeout = d;
        client.attempt_timeout = client.attempt_timeout.min(d);
    }

    let result = match rest.as_slice() {
        ["put", k, v] => {
            let v: i64 = v.parse().unwrap_or_else(|_| usage());
            client
                .put(k, v)
                .map(|r| println!("ok applied={}", r.applied))
        }
        ["read", k] => client.read_with_mode(k, read_mode).map(|v| match v {
            Some(v) => println!("{v}"),
            None => println!("(nil)"),
        }),
        ["add", k, d] => {
            let d: i64 = d.parse().unwrap_or_else(|_| usage());
            client
                .add(k, d)
                .map(|r| println!("{}", r.value.map_or("(nil)".into(), |v| v.to_string())))
        }
        ["delete", k] => client
            .delete(k)
            .map(|r| println!("ok applied={}", r.applied)),
        ["cas", k, expect, set] => {
            let parse_opt = |s: &str| -> Option<i64> {
                if s == "nil" {
                    None
                } else {
                    Some(s.parse().unwrap_or_else(|_| usage()))
                }
            };
            client.cas(k, parse_opt(expect), parse_opt(set)).map(|r| {
                if r.applied {
                    println!("ok applied=true");
                } else {
                    println!(
                        "conflict applied=false actual={}",
                        r.value.map_or("(nil)".into(), |v| v.to_string())
                    );
                }
            })
        }
        ["transfer", from, to, amount] => {
            let amount: i64 = amount.parse().unwrap_or_else(|_| usage());
            // Learn the shard count from the cluster so same-shard pairs
            // ride the cheap single-entry path.
            let n_shards = net::fetch_shards(&servers, Duration::from_secs(2))
                .map(|l| l.len())
                .unwrap_or(1);
            if kvstore::shard_of_key(from, n_shards) == kvstore::shard_of_key(to, n_shards) {
                client
                    .op(KvOp::Transfer {
                        from: (*from).into(),
                        to: (*to).into(),
                        amount,
                    })
                    .map(|r| println!("ok applied={}", r.applied))
            } else {
                client.txn(TxnSpec::transfer(*from, *to, amount)).map(|r| {
                    println!(
                        "{} applied={} txn={}:{}",
                        if r.applied { "committed" } else { "aborted" },
                        r.applied,
                        r.client,
                        r.seq
                    )
                })
            }
        }
        ["txn-status", c, s] => {
            let c: u64 = c.parse().unwrap_or_else(|_| usage());
            let s: u64 = s.parse().unwrap_or_else(|_| usage());
            client.txn_status(c, s).map(|state| println!("{state:?}"))
        }
        ["bench", n] => {
            let n: u64 = n.parse().unwrap_or_else(|_| usage());
            let start = Instant::now();
            let mut done = 0u64;
            for i in 0..n {
                if client.put("bench-key", i as i64).is_ok() {
                    done += 1;
                }
            }
            let secs = start.elapsed().as_secs_f64();
            println!(
                "{done}/{n} ops in {secs:.3}s  ({:.0} ops/s)",
                done as f64 / secs.max(1e-9)
            );
            Ok(())
        }
        ["pbench", n] | ["pbench", n, _] => {
            let n: u64 = n.parse().unwrap_or_else(|_| usage());
            let window: usize = match rest.as_slice() {
                [_, _, w] => w.parse().unwrap_or_else(|_| usage()),
                _ => 512,
            };
            let mut pipe = PipelinedKvClient::new(client_id, servers);
            let start = Instant::now();
            let mut submitted = 0u64;
            let mut done = 0u64;
            let mut retries_snapshot = 0u64;
            let res = loop {
                while submitted < n && pipe.in_flight() < window {
                    pipe.submit(KvOp::Put {
                        key: format!("bench-key-{}", submitted % 64),
                        value: submitted as i64,
                    });
                    submitted += 1;
                }
                match pipe.wait(Duration::from_millis(50)) {
                    Ok(rs) => done += rs.len() as u64,
                    Err(e) => break Err(e),
                }
                if done == n {
                    retries_snapshot = pipe.retries_seen();
                    break Ok(());
                }
            };
            let secs = start.elapsed().as_secs_f64();
            println!(
                "{done}/{n} ops in {secs:.3}s  ({:.0} ops/s, window {window}, \
                 {retries_snapshot} retries)",
                done as f64 / secs.max(1e-9)
            );
            res
        }
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
