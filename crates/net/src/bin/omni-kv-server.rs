//! A deployable Omni-Paxos kv server.
//!
//! ```text
//! omni-kv-server --pid 1 \
//!     --peers 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 \
//!     --client-addr 127.0.0.1:7201
//! ```
//!
//! `--peers` lists every replica's replication address (own pid
//! included); `--client-addr` is where clients connect. Run one process
//! per pid in `--peers` and the cluster elects a leader and serves
//! traffic; kill any minority and it keeps going.

use kvstore::{shard_config, KvCommand, KvNode, NodeId, ShardedKvNode};
use net::server::{ClientGateway, KvServer};
use net::tcp::{TcpConfig, TcpTransport};
use omnipaxos::service::ServerConfig;
use omnipaxos::ServiceMsg;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: omni-kv-server --pid <n> --peers <pid=addr,...> --client-addr <addr> \
         [--tick-ms <ms>] [--joiner] [--shards <n>] \
         [--lease-ticks <n>] [--lease-epsilon <n>]"
    );
    std::process::exit(2)
}

fn parse_peers(spec: &str) -> Option<HashMap<NodeId, SocketAddr>> {
    let mut out = HashMap::new();
    for part in spec.split(',') {
        let (pid, addr) = part.split_once('=')?;
        out.insert(pid.trim().parse().ok()?, addr.trim().parse().ok()?);
    }
    Some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pid: Option<NodeId> = None;
    let mut peers: Option<HashMap<NodeId, SocketAddr>> = None;
    let mut client_addr: Option<SocketAddr> = None;
    let mut tick_ms: u64 = 10;
    let mut joiner = false;
    let mut shards: usize = 1;
    // Leader leases for local reads, in ticks of `--tick-ms` (0 = off).
    // Every replica must run the same lease settings: the epsilon bound
    // is a cluster-wide clock-skew contract, not a local knob.
    let mut lease_ticks: u64 = 0;
    let mut lease_epsilon: u64 = 2;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pid" => pid = it.next().and_then(|v| v.parse().ok()),
            "--peers" => peers = it.next().and_then(|v| parse_peers(v)),
            "--client-addr" => client_addr = it.next().and_then(|v| v.parse().ok()),
            "--tick-ms" => tick_ms = it.next().and_then(|v| v.parse().ok()).unwrap_or(10),
            "--joiner" => joiner = true,
            "--shards" => shards = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--lease-ticks" => lease_ticks = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--lease-epsilon" => {
                lease_epsilon = it.next().and_then(|v| v.parse().ok()).unwrap_or(2)
            }
            _ => usage(),
        }
    }
    if shards == 0 {
        eprintln!("error: --shards must be at least 1");
        std::process::exit(2);
    }
    let (Some(pid), Some(peers), Some(client_addr)) = (pid, peers, client_addr) else {
        usage()
    };
    if !peers.contains_key(&pid) {
        eprintln!("error: own pid {pid} missing from --peers");
        std::process::exit(2);
    }

    let mut nodes: Vec<NodeId> = peers.keys().copied().collect();
    nodes.sort_unstable();
    // Every pid in the cluster must be launched with the same --shards
    // value: shard count is part of the routing contract.
    let mut base = ServerConfig::with(pid);
    base.lease_ticks = lease_ticks;
    base.lease_epsilon_ticks = lease_epsilon;
    let node = if joiner {
        ShardedKvNode::from_shards(
            (0..shards)
                .map(|_| KvNode::joiner_with_config(base.clone()))
                .collect(),
        )
    } else {
        ShardedKvNode::from_shards(
            (0..shards as u32)
                .map(|s| KvNode::with_config(shard_config(&base, s, &nodes), nodes.clone()))
                .collect(),
        )
    };

    let transport: TcpTransport<ServiceMsg<KvCommand>> =
        TcpTransport::bind(pid, peers, TcpConfig::default()).unwrap_or_else(|e| {
            eprintln!("error: replication bind failed: {e}");
            std::process::exit(1);
        });
    let gateway = TcpListener::bind(client_addr)
        .and_then(ClientGateway::bind)
        .unwrap_or_else(|e| {
            eprintln!("error: client bind failed: {e}");
            std::process::exit(1);
        });

    eprintln!(
        "omni-kv-server pid={pid} shards={shards} replication={} clients={}",
        transport.local_addr(),
        gateway.local_addr()
    );

    let stop = Arc::new(AtomicBool::new(false));
    // Run until killed; a SIGINT handler would need a dependency, so the
    // process relies on the OS to tear sockets down.
    let server = KvServer::new_sharded(node, transport).with_gateway(gateway);
    let _ = stop.load(Ordering::SeqCst);
    server.run(Duration::from_millis(tick_ms), stop);
}
