//! Tests for the paper's §8 extensions: half-duplex partial connectivity
//! and connectivity-prioritized takeover ballots.

mod common;

use common::TestCluster;
use omnipaxos::NodeId;

const SETTLE: usize = 400;

// ----------------------------------------------------------------------
// Half-duplex links (§8): BLE's request/reply heartbeats only count
// full-duplex connectivity, so a leader that can send but not receive
// (or vice versa) is correctly not quorum-connected.
// ----------------------------------------------------------------------

#[test]
fn half_duplex_leader_loses_quorum_connectivity_and_is_replaced() {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let leader = c.leader_pid().unwrap();
    for v in 1..=3 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 3));
    // Break only the *inbound* direction of both of the leader's links:
    // the leader can still send heartbeat requests, but no replies reach
    // it, so it is not full-duplex quorum-connected.
    for other in (1..=3).filter(|&p| p != leader) {
        c.cut_directed(other, leader);
    }
    // The followers still hear the leader; without the QC flag in its
    // heartbeats they would keep trusting it. BLE's request/reply design
    // makes the leader detect the loss itself and give up leadership.
    c.run_until(SETTLE, |c| {
        c.servers.iter().any(|s| s.is_leader() && s.pid() != leader)
    });
    let new_leader = c
        .servers
        .iter()
        .filter(|s| s.is_leader() && s.pid() != leader)
        .max_by_key(|s| s.leader())
        .unwrap()
        .pid();
    c.server(new_leader).propose(4).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers.iter().filter(|s| s.log().len() == 4).count() >= 2
    });
    c.assert_log_prefixes();
}

#[test]
fn half_duplex_follower_link_does_not_disturb_leadership() {
    // Losing one direction of a follower<->follower link leaves the leader
    // quorum-connected: no leader change may occur.
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let leader = c.leader_pid().unwrap();
    let followers: Vec<NodeId> = (1..=3).filter(|&p| p != leader).collect();
    c.cut_directed(followers[0], followers[1]);
    let ballot_before = c.server(leader).leader();
    c.run(SETTLE);
    assert_eq!(
        c.server(leader).leader(),
        ballot_before,
        "leadership must not churn on a follower half-duplex failure"
    );
    c.propose_via_leader(1);
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log() == [1]));
}

// ----------------------------------------------------------------------
// Connectivity-prioritized ballots (§8)
// ----------------------------------------------------------------------

#[test]
fn takeover_prefers_the_better_connected_candidate() {
    // Five servers with connectivity priority; the leader gets fully
    // partitioned. Two QC candidates remain, one seeing 4 servers, one
    // seeing 3: the better-connected must win, even with a lower pid.
    let mut c = TestCluster::with_config(5, |cfg| cfg.connectivity_priority = true);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let leader = c.leader_pid().unwrap();
    let others: Vec<NodeId> = (1..=5).filter(|&p| p != leader).collect();
    let (well, poorly) = (others[0], others[3]);
    // Shape: `well` stays connected to all three other survivors;
    // `poorly` loses one more link (to others[1]) so it sees only 3 of 5;
    // both remain QC.
    c.isolate(leader);
    c.cut_link(poorly, others[1]);
    c.run_until(SETTLE, |c| {
        c.servers.iter().any(|s| s.is_leader() && s.pid() != leader)
    });
    c.run(100); // settle any takeover race
    let final_leader = c
        .servers
        .iter()
        .filter(|s| s.is_leader() && s.pid() != leader)
        .max_by_key(|s| s.leader())
        .unwrap()
        .pid();
    assert_ne!(final_leader, poorly, "the weakly connected candidate lost");
    // Progress with the new leader.
    c.server(final_leader).propose(7).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers.iter().filter(|s| s.log() == [7]).count() >= 3
    });
    let _ = well;
}

#[test]
fn connectivity_priority_does_not_affect_stable_leadership() {
    // §8: the extension only breaks ties during takeover; a stable leader
    // is never preempted just because someone is better connected.
    let mut c = TestCluster::with_config(5, |cfg| cfg.connectivity_priority = true);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let leader = c.leader_pid().unwrap();
    // Degrade the leader's connectivity to exactly a majority (itself + 2):
    // it stays QC, so nothing may change.
    let others: Vec<NodeId> = (1..=5).filter(|&p| p != leader).collect();
    c.cut_link(leader, others[0]);
    c.cut_link(leader, others[1]);
    let ballot_before = c.server(leader).leader();
    c.run(SETTLE);
    assert_eq!(
        c.server(leader).leader(),
        ballot_before,
        "a QC leader must not be preempted by better-connected servers"
    );
}
