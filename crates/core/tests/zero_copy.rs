//! Tests of the zero-copy replication hot path: the leader materializes
//! each drained batch once and fans it out to all followers as clones of
//! one refcounted `EntryBatch`, and followers acknowledge every
//! `AcceptDecide` — including batches lying entirely below their decided
//! index.

use std::sync::Arc;

use omnipaxos::messages::{AcceptDecide, Message, PaxosMsg};
use omnipaxos::omni::OmniMessage;
use omnipaxos::util::LogEntry;
use omnipaxos::{MemoryStorage, NodeId, OmniPaxos, OmniPaxosConfig};

type Replica = OmniPaxos<u64, MemoryStorage<u64>>;

fn cluster(n: u64) -> Vec<Replica> {
    let nodes: Vec<NodeId> = (1..=n).collect();
    nodes
        .iter()
        .map(|&pid| {
            OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                MemoryStorage::new(),
            )
        })
        .collect()
}

fn pump(replicas: &mut [Replica], rounds: usize) {
    for _ in 0..rounds {
        for i in 0..replicas.len() {
            for m in replicas[i].outgoing_messages() {
                let to = m.to() as usize - 1;
                replicas[to].handle_message(m);
            }
        }
    }
}

fn elect(replicas: &mut [Replica]) -> usize {
    for _ in 0..100 {
        for r in replicas.iter_mut() {
            r.tick();
        }
        pump(replicas, 1);
        if replicas.iter().any(|r| r.is_leader()) {
            break;
        }
    }
    replicas.iter().position(|r| r.is_leader()).expect("leader")
}

/// One drained batch is shared by pointer across the whole follower
/// fan-out: the number of batch materializations per drain is independent
/// of the follower count.
#[test]
fn accept_decide_fanout_shares_one_batch() {
    let mut replicas = cluster(5);
    let leader = elect(&mut replicas);
    pump(&mut replicas, 3); // settle the sync phase

    for v in 0..100u64 {
        replicas[leader].append(v).expect("append");
    }
    let out = replicas[leader].outgoing_messages();
    let batches: Vec<_> = out
        .iter()
        .filter_map(|m| match m {
            OmniMessage::Paxos(Message {
                msg: PaxosMsg::AcceptDecide(a),
                ..
            }) => Some(&a.entries),
            _ => None,
        })
        .collect();
    assert_eq!(batches.len(), 4, "one AcceptDecide per follower");
    for b in &batches[1..] {
        assert!(
            Arc::ptr_eq(batches[0], b),
            "followers must share one refcounted batch"
        );
    }
    assert_eq!(batches[0].len(), 100);
}

/// Regression: an `AcceptDecide` whose entries lie entirely below the
/// follower's decided index (a retransmission that lost the race with a
/// decide) must still be acknowledged with the *current* log length —
/// otherwise the leader's view of this follower stalls.
#[test]
fn accept_decide_below_decided_still_acks() {
    let mut replicas = cluster(3);
    let leader = elect(&mut replicas);
    for v in 0..10u64 {
        replicas[leader].append(v).expect("append");
    }
    // Decide everywhere.
    pump(&mut replicas, 4);
    let follower = (0..3).find(|&i| i != leader).unwrap();
    assert_eq!(replicas[follower].decided_idx(), 10);
    let n = replicas[follower].leader();
    let log_len = replicas[follower].log_len();

    // Replay the first 5 entries: entirely below the decided index.
    let stale = AcceptDecide {
        n,
        start_idx: 0,
        decided_idx: 10,
        entries: (0..5).map(LogEntry::Normal).collect::<Vec<_>>().into(),
    };
    let _ = replicas[follower].outgoing_messages(); // drain noise
    replicas[follower].handle_message(OmniMessage::Paxos(Message::with(
        n.pid,
        follower as NodeId + 1,
        PaxosMsg::AcceptDecide(stale),
    )));
    let acks: Vec<u64> = replicas[follower]
        .outgoing_messages()
        .iter()
        .filter_map(|m| match m {
            OmniMessage::Paxos(Message {
                msg: PaxosMsg::Accepted(a),
                ..
            }) => Some(a.log_idx),
            _ => None,
        })
        .collect();
    assert_eq!(
        acks,
        vec![log_len],
        "stale batch must still be acked with the current log length"
    );
    // And the log was not damaged by the replay.
    assert_eq!(replicas[follower].log_len(), log_len);
    assert_eq!(replicas[follower].decided_idx(), 10);
}

/// `decided_ref` exposes exactly the decided entries `read_decided` copies.
#[test]
fn decided_ref_agrees_with_read_decided() {
    let mut replicas = cluster(3);
    let leader = elect(&mut replicas);
    for v in 0..20u64 {
        replicas[leader].append(v).expect("append");
    }
    pump(&mut replicas, 4);
    for r in &replicas {
        for from in [0u64, 7, 19, 20, 25] {
            assert_eq!(r.decided_ref(from), &r.read_decided(from)[..]);
        }
    }
}
