//! A tiny in-memory cluster harness for protocol tests.
//!
//! Messages are delivered in FIFO order per directed link; links can be cut
//! and healed to build the partial-connectivity scenarios of the paper
//! without pulling in the full simulator crate.

// Different integration-test binaries use different subsets of this
// harness; silence per-binary dead-code analysis.
#![allow(dead_code)]

use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::{MigrationScheme, NodeId};
use std::collections::{HashSet, VecDeque};

/// A cluster of [`OmniPaxosServer`]s over a controllable network.
pub struct TestCluster {
    pub servers: Vec<OmniPaxosServer<u64>>,
    /// Directed links currently cut.
    cut: HashSet<(NodeId, NodeId)>,
    /// In-flight messages, FIFO.
    wire: VecDeque<(NodeId, NodeId, ServiceMsg<u64>)>,
}

impl TestCluster {
    /// A fresh cluster of `n` servers (pids `1..=n`) in configuration 1.
    pub fn new(n: usize) -> Self {
        Self::with_scheme(n, MigrationScheme::Parallel)
    }

    /// A fresh cluster with an explicit migration scheme.
    pub fn with_scheme(n: usize, scheme: MigrationScheme) -> Self {
        Self::with_config(n, |cfg| cfg.scheme = scheme)
    }

    /// A fresh cluster with arbitrary per-server configuration tweaks.
    pub fn with_config(n: usize, tweak: impl Fn(&mut ServerConfig)) -> Self {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        let servers = nodes
            .iter()
            .map(|&pid| {
                let mut cfg = ServerConfig::with(pid);
                tweak(&mut cfg);
                OmniPaxosServer::new(cfg, nodes.clone())
            })
            .collect();
        TestCluster {
            servers,
            cut: HashSet::new(),
            wire: VecDeque::new(),
        }
    }

    /// Cut only the direction `a -> b` (half-duplex failure, §8).
    pub fn cut_directed(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert((a, b));
    }

    /// Add a fresh joiner with the given pid (outside the configuration).
    pub fn add_joiner(&mut self, pid: NodeId) {
        assert_eq!(pid as usize, self.servers.len() + 1, "pids must be dense");
        self.servers
            .push(OmniPaxosServer::new_joiner(ServerConfig::with(pid)));
    }

    pub fn server(&mut self, pid: NodeId) -> &mut OmniPaxosServer<u64> {
        &mut self.servers[pid as usize - 1]
    }

    /// Cut both directions between `a` and `b`.
    pub fn cut_link(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert((a, b));
        self.cut.insert((b, a));
    }

    /// Heal both directions between `a` and `b` and run the session-drop
    /// protocol (`PrepareReq`, §4.1.3).
    pub fn heal_link(&mut self, a: NodeId, b: NodeId) {
        let was_cut = self.cut.remove(&(a, b)) | self.cut.remove(&(b, a));
        if was_cut {
            self.server(a).reconnected(b);
            self.server(b).reconnected(a);
        }
    }

    /// Completely isolate `pid`.
    pub fn isolate(&mut self, pid: NodeId) {
        let n = self.servers.len() as NodeId;
        for other in 1..=n {
            if other != pid {
                self.cut_link(pid, other);
            }
        }
    }

    /// Heal all links.
    pub fn heal_all(&mut self) {
        let pairs: Vec<(NodeId, NodeId)> = self.cut.iter().copied().collect();
        for (a, b) in pairs {
            self.heal_link(a, b);
        }
    }

    /// One step: tick every server, collect outgoing, deliver everything
    /// currently on the wire (messages sent this step are delivered next
    /// step, giving a 1-step latency).
    pub fn step(&mut self) {
        for s in &mut self.servers {
            s.tick();
        }
        let n = self.servers.len();
        for i in 0..n {
            let from = (i + 1) as NodeId;
            for (to, msg) in self.servers[i].outgoing() {
                if to == 0 || to as usize > n {
                    continue; // addressed outside the harness
                }
                self.wire.push_back((from, to, msg));
            }
        }
        let in_flight = std::mem::take(&mut self.wire);
        for (from, to, msg) in in_flight {
            if self.cut.contains(&(from, to)) {
                continue; // systematically dropped during partition
            }
            self.servers[to as usize - 1].handle(from, msg);
        }
    }

    /// Run `steps` steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Run until `pred` holds, up to `max_steps`; panics on timeout.
    pub fn run_until(&mut self, max_steps: usize, mut pred: impl FnMut(&Self) -> bool) {
        for _ in 0..max_steps {
            if pred(self) {
                return;
            }
            self.step();
        }
        panic!(
            "condition not reached within {max_steps} steps; servers: {:?}",
            self.servers
        );
    }

    /// The pid of the unique active leader, if exactly one server leads.
    pub fn leader_pid(&self) -> Option<NodeId> {
        let leaders: Vec<NodeId> = self
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_leader())
            .map(|(i, _)| (i + 1) as NodeId)
            .collect();
        (leaders.len() == 1).then(|| leaders[0])
    }

    /// Propose through the current leader; panics if there is none.
    pub fn propose_via_leader(&mut self, value: u64) {
        let leader = self.leader_pid().expect("no unique leader");
        self.server(leader).propose(value).expect("propose");
    }

    /// Assert the prefix property across all servers' service logs
    /// (Sequence Consensus SC2).
    pub fn assert_log_prefixes(&self) {
        let longest = self
            .servers
            .iter()
            .max_by_key(|s| s.log().len())
            .expect("non-empty cluster");
        for s in &self.servers {
            let log = s.log();
            assert_eq!(
                log,
                &longest.log()[..log.len()],
                "log of pid {} is not a prefix",
                s.pid()
            );
        }
    }
}
