//! Crash-recovery of a full replica backed by the file WAL: the protocol
//! state machine is rebuilt from the on-disk state, exactly the §3
//! fail-recovery model.

use omnipaxos::wal::WalStorage;
use omnipaxos::{LogEntry, OmniPaxos, OmniPaxosConfig};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("omnipaxos-reco-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deliver everything between replicas for `rounds` rounds.
fn settle(replicas: &mut [OmniPaxos<u64, WalStorage<u64>>], rounds: usize) {
    for _ in 0..rounds {
        for i in 0..replicas.len() {
            replicas[i].tick();
            for m in replicas[i].outgoing_messages() {
                let to = m.to() as usize - 1;
                replicas[to].handle_message(m);
            }
        }
    }
}

#[test]
fn replica_recovers_from_its_wal_after_a_crash() {
    let nodes = vec![1u64, 2, 3];
    let paths: Vec<PathBuf> = (1..=3).map(|i| tmp(&format!("n{i}"))).collect();
    let mut replicas: Vec<OmniPaxos<u64, WalStorage<u64>>> = nodes
        .iter()
        .zip(&paths)
        .map(|(&pid, path)| {
            OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                WalStorage::open(path).expect("open wal"),
            )
        })
        .collect();
    settle(&mut replicas, 60);
    let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
    for v in 1..=20u64 {
        replicas[leader].append(v).expect("append");
    }
    settle(&mut replicas, 60);
    for r in &replicas {
        assert_eq!(r.decided_idx(), 20);
    }

    // Crash a follower: drop its process state entirely; re-open the WAL.
    let victim = (leader + 1) % 3;
    let victim_pid = (victim + 1) as u64;
    let old = std::mem::replace(
        &mut replicas[victim],
        OmniPaxos::new(
            OmniPaxosConfig::with(1, victim_pid, nodes.clone()),
            WalStorage::open(&paths[victim]).expect("reopen wal"),
        ),
    );
    drop(old);
    // The reopened storage already holds the decided prefix.
    assert_eq!(replicas[victim].decided_idx(), 20);
    replicas[victim].fail_recovery();

    // More traffic decides after the recovery.
    settle(&mut replicas, 120);
    let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
    for v in 21..=25u64 {
        replicas[leader].append(v).expect("append");
    }
    settle(&mut replicas, 120);
    for r in &replicas {
        assert_eq!(r.decided_idx(), 25, "replica {:?} lags", r.pid());
        let decided: Vec<u64> = r
            .read_decided(0)
            .into_iter()
            .filter_map(|e| match e {
                LogEntry::Normal(v) => Some(v),
                LogEntry::StopSign(_) => None,
            })
            .collect();
        assert_eq!(decided, (1..=25).collect::<Vec<u64>>());
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn whole_cluster_restart_preserves_the_decided_log() {
    let nodes = vec![1u64, 2, 3];
    let paths: Vec<PathBuf> = (1..=3).map(|i| tmp(&format!("all{i}"))).collect();
    {
        let mut replicas: Vec<OmniPaxos<u64, WalStorage<u64>>> = nodes
            .iter()
            .zip(&paths)
            .map(|(&pid, path)| {
                OmniPaxos::new(
                    OmniPaxosConfig::with(1, pid, nodes.clone()),
                    WalStorage::open(path).expect("open"),
                )
            })
            .collect();
        settle(&mut replicas, 60);
        let leader = replicas.iter().position(|r| r.is_leader()).unwrap();
        for v in 1..=10u64 {
            replicas[leader].append(v).unwrap();
        }
        settle(&mut replicas, 60);
    } // power failure: every process gone

    let mut replicas: Vec<OmniPaxos<u64, WalStorage<u64>>> = nodes
        .iter()
        .zip(&paths)
        .map(|(&pid, path)| {
            let mut r = OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                WalStorage::open(path).expect("reopen"),
            );
            r.fail_recovery();
            r
        })
        .collect();
    // All recovering; the viability timeout lets one of them lead again.
    settle(&mut replicas, 400);
    let leader = replicas
        .iter()
        .position(|r| r.is_leader())
        .expect("a leader re-emerges after full restart");
    replicas[leader].append(11).unwrap();
    settle(&mut replicas, 120);
    for r in &replicas {
        assert_eq!(r.decided_idx(), 11);
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn wal_replica_equivalent_to_memory_replica() {
    use omnipaxos::MemoryStorage;
    // Drive a WAL-backed and a memory-backed cluster through identical
    // schedules; their decided logs must be identical.
    let nodes = vec![1u64, 2, 3];
    let paths: Vec<PathBuf> = (1..=3).map(|i| tmp(&format!("eq{i}"))).collect();
    let mut wal: Vec<OmniPaxos<u64, WalStorage<u64>>> = nodes
        .iter()
        .zip(&paths)
        .map(|(&pid, path)| {
            OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                WalStorage::open(path).expect("open"),
            )
        })
        .collect();
    let mut mem: Vec<OmniPaxos<u64, MemoryStorage<u64>>> = nodes
        .iter()
        .map(|&pid| {
            OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                MemoryStorage::new(),
            )
        })
        .collect();
    for round in 0..80 {
        for i in 0..3 {
            wal[i].tick();
            mem[i].tick();
            for m in wal[i].outgoing_messages() {
                let to = m.to() as usize - 1;
                wal[to].handle_message(m);
            }
            for m in mem[i].outgoing_messages() {
                let to = m.to() as usize - 1;
                mem[to].handle_message(m);
            }
        }
        if round == 40 {
            if let Some(lw) = wal.iter().position(|r| r.is_leader()) {
                for v in 0..5u64 {
                    wal[lw].append(v).unwrap();
                }
            }
            if let Some(lm) = mem.iter().position(|r| r.is_leader()) {
                for v in 0..5u64 {
                    mem[lm].append(v).unwrap();
                }
            }
        }
    }
    for (w, m) in wal.iter().zip(&mem) {
        assert_eq!(w.decided_idx(), m.decided_idx());
        assert_eq!(w.read_decided(0), m.read_decided(0));
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}
