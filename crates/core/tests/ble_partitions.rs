//! Property test: BLE elects a quorum-connected leader under *generated*
//! partial partitions.
//!
//! For many seeded random symmetric connectivity graphs over five servers,
//! drive a full BLE cluster (messages delivered only along up links) and
//! assert the paper's central election guarantee: whenever at least one
//! server is quorum-connected — it can reach a majority counting itself —
//! then within a bounded number of heartbeat rounds some quorum-connected
//! server considers itself elected. Graphs with no quorum-connected server
//! (e.g. the quorum-loss scenario of §2a) are exempt from the liveness
//! claim and are instead checked for the converse: nobody gets elected.

use omnipaxos::ble::{BallotLeaderElection, BleConfig};
use omnipaxos::messages::BleMessage;
use omnipaxos::NodeId;

const N: usize = 5;
const HB_TICKS: u64 = 4;
/// Bound on the recovery time, in ticks: generous but finite (the runs
/// below settle in far fewer; the property only needs *bounded*).
const BOUND_TICKS: u64 = 400;

/// Deterministic xorshift64* — the test must not depend on external
/// randomness sources.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A random symmetric connectivity graph: `links[a][b]` is true iff the
/// (bidirectional) link between servers `a+1` and `b+1` is up.
fn random_links(rng: &mut XorShift) -> [[bool; N]; N] {
    let mut links = [[false; N]; N];
    #[allow(clippy::needless_range_loop)]
    for a in 0..N {
        for b in (a + 1)..N {
            // Biased toward connected-but-degraded graphs: roughly one
            // third of the links are down.
            let up = !rng.next().is_multiple_of(3);
            links[a][b] = up;
            links[b][a] = up;
        }
    }
    links
}

/// Servers that can reach a majority, counting themselves (the paper's
/// quorum-connected predicate over direct links).
fn quorum_connected(links: &[[bool; N]; N]) -> Vec<usize> {
    (0..N)
        .filter(|&a| 1 + (0..N).filter(|&b| links[a][b]).count() > N / 2)
        .collect()
}

fn cluster() -> Vec<BallotLeaderElection> {
    let nodes: Vec<NodeId> = (1..=N as NodeId).collect();
    nodes
        .iter()
        .map(|&p| BallotLeaderElection::new(BleConfig::with(p, &nodes, HB_TICKS)))
        .collect()
}

/// Advance the cluster one tick, delivering messages along up links only.
fn step(cluster: &mut [BallotLeaderElection], links: &[[bool; N]; N]) {
    for b in cluster.iter_mut() {
        b.tick();
    }
    let mut inbox: Vec<BleMessage> = Vec::new();
    for b in cluster.iter_mut() {
        inbox.extend(b.outgoing_messages());
    }
    for m in inbox {
        if links[(m.from - 1) as usize][(m.to - 1) as usize] {
            cluster[(m.to - 1) as usize].handle_message(m);
        }
    }
}

#[test]
fn a_quorum_connected_server_is_elected_whenever_one_exists() {
    let mut rng = XorShift(0x0B5E55ED);
    let mut graphs_with_qc = 0;
    for _case in 0..60 {
        let links = random_links(&mut rng);
        let qc = quorum_connected(&links);
        if qc.is_empty() {
            continue;
        }
        graphs_with_qc += 1;
        let mut nodes = cluster();
        let mut elected_at = None;
        for t in 1..=BOUND_TICKS {
            step(&mut nodes, &links);
            // The guarantee: some quorum-connected server is elected (its
            // own ballot won) and knows it is quorum-connected.
            let done = qc.iter().any(|&i| {
                let b = &nodes[i];
                b.is_quorum_connected() && b.leader().pid == (i + 1) as NodeId
            });
            if done {
                elected_at = Some(t);
                break;
            }
        }
        let t = elected_at.unwrap_or_else(|| {
            let views: Vec<_> = nodes.iter().map(|b| b.leader()).collect();
            panic!(
                "no quorum-connected server elected within {BOUND_TICKS} ticks; \
                 qc={qc:?} links={links:?} leader views={views:?}"
            )
        });
        assert!(t <= BOUND_TICKS);
    }
    assert!(
        graphs_with_qc >= 30,
        "the generator must mostly produce graphs with a quorum-connected \
         server, got {graphs_with_qc}/60"
    );
}

#[test]
fn nobody_is_elected_without_a_quorum_connected_server() {
    let mut rng = XorShift(0xDEAD_10CC);
    let mut checked = 0;
    // Build graphs with no quorum-connected server by only allowing each
    // server at most one up link (max reachability 2 of 5).
    while checked < 10 {
        let mut links = [[false; N]; N];
        let a = (rng.next() % N as u64) as usize;
        let b = (rng.next() % N as u64) as usize;
        if a != b {
            links[a][b] = true;
            links[b][a] = true;
        }
        assert!(quorum_connected(&links).is_empty());
        checked += 1;
        let mut nodes = cluster();
        for _ in 0..BOUND_TICKS {
            step(&mut nodes, &links);
        }
        for (i, node) in nodes.iter().enumerate() {
            assert_ne!(
                node.leader().pid,
                (i + 1) as NodeId,
                "server {} considers itself elected without quorum connectivity",
                i + 1
            );
        }
    }
}
