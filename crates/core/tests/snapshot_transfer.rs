//! Acceptance tests for the snapshot subsystem: a follower that was
//! partitioned long enough for the leader to compact past its log must
//! catch up via the chunked snapshot transfer and converge — in both
//! memory-backed and WAL-backed clusters.

use omnipaxos::snapshot::SnapshotData;
use omnipaxos::storage::Storage;
use omnipaxos::wal::WalStorage;
use omnipaxos::{LogEntry, MemoryStorage, OmniPaxos, OmniPaxosConfig};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("omnipaxos-snap-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deliver all messages for `rounds` rounds, dropping anything to or from
/// the nodes in `cut` (a network partition).
fn settle_cut<S: Storage<u64>>(replicas: &mut [OmniPaxos<u64, S>], rounds: usize, cut: &[u64]) {
    for _ in 0..rounds {
        for i in 0..replicas.len() {
            replicas[i].tick();
            let from = replicas[i].pid();
            for m in replicas[i].outgoing_messages() {
                let to = m.to();
                if cut.contains(&from) || cut.contains(&to) {
                    continue;
                }
                replicas[(to - 1) as usize].handle_message(m);
            }
        }
    }
}

/// The scenario, generic over storage: decide 30 entries while one
/// follower is partitioned, compact the connected majority past its log,
/// heal, and require convergence via snapshot transfer (the trimmed prefix
/// cannot be replayed as log entries any more).
fn partitioned_follower_converges_via_snapshot<S, F>(mut make: F)
where
    S: Storage<u64>,
    F: FnMut(u64) -> S,
{
    let nodes = vec![1u64, 2, 3];
    let mut replicas: Vec<OmniPaxos<u64, S>> = nodes
        .iter()
        .map(|&pid| {
            let mut cfg = OmniPaxosConfig::with(1, pid, nodes.clone());
            // Force a genuinely chunked transfer: the 1000-byte snapshot
            // below crosses several 256-byte chunks and acks.
            cfg.snapshot_chunk_bytes = 256;
            OmniPaxos::new(cfg, make(pid))
        })
        .collect();
    settle_cut(&mut replicas, 60, &[]);
    let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
    let follower = (leader + 1) % 3;
    let follower_pid = (follower + 1) as u64;

    // Partition the follower; the connected majority keeps deciding.
    for v in 1..=30u64 {
        replicas[leader].append(v).expect("append");
    }
    settle_cut(&mut replicas, 60, &[follower_pid]);
    assert_eq!(replicas[leader].decided_idx(), 30);
    assert_eq!(replicas[follower].decided_idx(), 0, "follower is cut off");

    // The application compacts the connected servers at 25: the prefix the
    // follower is missing no longer exists as log entries.
    let snap: SnapshotData = (0..1000u32).map(|i| i as u8).collect::<Vec<u8>>().into();
    for (i, r) in replicas.iter_mut().enumerate() {
        if i != follower {
            r.compact(25, snap.clone()).expect("compact");
            assert_eq!(r.compacted_idx(), 25);
        }
    }
    settle_cut(&mut replicas, 30, &[follower_pid]);

    // Heal. Sessions re-establish (§4.1.3), the follower asks the leader
    // to re-sync, and the leader must bridge the compacted gap with a
    // chunked snapshot transfer before streaming the tail.
    for r in replicas.iter_mut() {
        for &p in &nodes {
            if p != r.pid() {
                r.reconnected(p);
            }
        }
    }
    settle_cut(&mut replicas, 200, &[]);

    assert_eq!(
        replicas[follower].compacted_idx(),
        25,
        "follower adopted the snapshot's compaction point"
    );
    assert_eq!(replicas[follower].decided_idx(), 30);
    assert_eq!(
        replicas[follower].take_installed_snapshot(),
        Some((25, snap)),
        "the installed snapshot surfaces to the owner exactly once"
    );
    assert_eq!(
        replicas[follower].take_installed_snapshot(),
        None,
        "event is consumed"
    );
    let tail: Vec<u64> = replicas[follower]
        .read_decided(25)
        .into_iter()
        .filter_map(|e| match e {
            LogEntry::Normal(v) => Some(v),
            LogEntry::StopSign(_) => None,
        })
        .collect();
    assert_eq!(
        tail,
        vec![26, 27, 28, 29, 30],
        "tail above snapshot replays"
    );

    // The healed cluster keeps making progress.
    let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
    replicas[leader].append(31).expect("append");
    settle_cut(&mut replicas, 60, &[]);
    for r in &replicas {
        assert_eq!(r.decided_idx(), 31, "replica {} lags", r.pid());
    }
}

#[test]
fn memory_cluster_converges_via_snapshot_transfer() {
    partitioned_follower_converges_via_snapshot(|_| MemoryStorage::<u64>::new());
}

#[test]
fn wal_cluster_converges_via_snapshot_transfer() {
    let paths: Vec<PathBuf> = (1..=3).map(|i| tmp(&format!("xfer{i}"))).collect();
    {
        let p = paths.clone();
        partitioned_follower_converges_via_snapshot(move |pid| {
            WalStorage::open(&p[(pid - 1) as usize]).expect("open wal")
        });
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn wal_follower_recovers_snapshot_and_tail_from_disk() {
    // After converging via snapshot transfer, a crash + reopen of the
    // follower's WAL must reproduce snapshot + tail (recovery is snapshot
    // plus tail replay, not full-log replay).
    let nodes = vec![1u64, 2, 3];
    let paths: Vec<PathBuf> = (1..=3).map(|i| tmp(&format!("reco{i}"))).collect();
    let mut replicas: Vec<OmniPaxos<u64, WalStorage<u64>>> = nodes
        .iter()
        .zip(&paths)
        .map(|(&pid, path)| {
            OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                WalStorage::open(path).expect("open"),
            )
        })
        .collect();
    settle_cut(&mut replicas, 60, &[]);
    let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
    let follower = (leader + 1) % 3;
    let follower_pid = (follower + 1) as u64;
    for v in 1..=20u64 {
        replicas[leader].append(v).expect("append");
    }
    settle_cut(&mut replicas, 60, &[follower_pid]);
    let snap: SnapshotData = vec![0x5A; 128].into();
    for (i, r) in replicas.iter_mut().enumerate() {
        if i != follower {
            r.compact(20, snap.clone()).expect("compact");
        }
    }
    for r in replicas.iter_mut() {
        for &p in &nodes {
            if p != r.pid() {
                r.reconnected(p);
            }
        }
    }
    settle_cut(&mut replicas, 200, &[]);
    assert_eq!(replicas[follower].compacted_idx(), 20);

    // Crash the follower and reopen its WAL: the snapshot and compaction
    // point must come back from disk.
    drop(std::mem::replace(
        &mut replicas[follower],
        OmniPaxos::new(
            OmniPaxosConfig::with(1, follower_pid, nodes.clone()),
            WalStorage::open(&paths[follower]).expect("reopen"),
        ),
    ));
    assert_eq!(replicas[follower].compacted_idx(), 20);
    assert_eq!(replicas[follower].decided_idx(), 20);
    let disk_snap = replicas[follower]
        .sequence_paxos()
        .storage()
        .get_snapshot()
        .expect("snapshot persisted");
    assert_eq!(disk_snap.idx, 20);
    assert_eq!(disk_snap.data[..], snap[..]);
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}
