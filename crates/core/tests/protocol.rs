//! End-to-end protocol tests: election, replication, failover, recovery,
//! and the three partial-connectivity scenarios of §2 at the protocol level.

mod common;

use common::TestCluster;
use omnipaxos::NodeId;

const SETTLE: usize = 200;

#[test]
fn elects_exactly_one_leader() {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let leader = c.leader_pid().unwrap();
    assert!((1..=3).contains(&leader));
}

#[test]
fn replicates_and_decides_entries_on_all_servers() {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 1..=10 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 10));
    for s in &c.servers {
        assert_eq!(s.log(), &(1..=10).collect::<Vec<u64>>());
    }
}

#[test]
fn proposals_from_followers_are_forwarded_to_the_leader() {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let leader = c.leader_pid().unwrap();
    let follower = (1..=3).find(|&p| p != leader).unwrap();
    c.server(follower).propose(99).unwrap();
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log() == [99]));
}

#[test]
fn five_servers_replicate_under_load() {
    let mut c = TestCluster::new(5);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 0..500 {
        c.propose_via_leader(v);
        if v % 50 == 0 {
            c.step();
        }
    }
    c.run_until(1000, |c| c.servers.iter().all(|s| s.log().len() == 500));
    c.assert_log_prefixes();
    assert_eq!(c.servers[0].log(), &(0..500).collect::<Vec<u64>>());
}

#[test]
fn leader_crash_fails_over_without_losing_decided_entries() {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 1..=5 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 5));
    let old_leader = c.leader_pid().unwrap();
    c.isolate(old_leader);
    // A new leader among the remaining majority.
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .any(|s| s.is_leader() && s.pid() != old_leader)
    });
    let new_leader = c
        .servers
        .iter()
        .find(|s| s.is_leader() && s.pid() != old_leader)
        .unwrap()
        .pid();
    c.server(new_leader).propose(6).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .filter(|s| s.pid() != old_leader)
            .all(|s| s.log().len() == 6)
    });
    c.assert_log_prefixes();
    // Healing lets the old leader rejoin and catch up.
    c.heal_all();
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 6));
    c.assert_log_prefixes();
}

#[test]
fn quorum_loss_scenario_recovers_via_hub_server() {
    // Fig. 1a / Fig. 5a: five servers, everyone connected only to the hub
    // (server 1); the old leader is alive but no longer quorum-connected.
    let mut c = TestCluster::new(5);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 1..=3 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 3));
    let hub: NodeId = 1;
    // Cut every link except those to the hub.
    for a in 2..=5 {
        for b in (a + 1)..=5 {
            c.cut_link(a, b);
        }
    }
    // The hub must take over (it is the only QC server) and make progress.
    c.run_until(SETTLE, |c| c.servers[hub as usize - 1].is_leader());
    c.server(hub).propose(4).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers.iter().filter(|s| s.log().len() == 4).count() >= 3
    });
    c.assert_log_prefixes();
}

#[test]
fn constrained_election_scenario_elects_server_with_outdated_log() {
    // Fig. 1b / Fig. 5b: the only QC server has an *outdated* log but must
    // still win the election and catch up during the Prepare phase.
    let mut c = TestCluster::new(5);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let leader = c.leader_pid().unwrap();
    let hub = (1..=5).find(|&p| p != leader).unwrap();
    // First, make the future hub lag: disconnect it from the leader and
    // replicate more entries.
    c.cut_link(hub, leader);
    for v in 1..=5 {
        c.server(leader).propose(v).unwrap();
    }
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .filter(|s| s.pid() != hub)
            .all(|s| s.log().len() == 5)
    });
    assert!(
        c.server(hub).log().len() < 5,
        "hub must be outdated for this scenario"
    );
    // Now fully partition the old leader, and cut all remaining links
    // except those to the hub.
    c.isolate(leader);
    for a in 1..=5 {
        for b in (a + 1)..=5 {
            if a != hub && b != hub && a != leader && b != leader {
                c.cut_link(a, b);
            }
        }
    }
    // Only the hub is QC; it gets elected despite the outdated log and
    // adopts the missing entries in the Prepare phase.
    c.run_until(SETTLE, |c| c.servers[hub as usize - 1].is_leader());
    c.run_until(SETTLE, |c| c.servers[hub as usize - 1].log().len() == 5);
    c.server(hub).propose(6).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers.iter().filter(|s| s.log().len() == 6).count() >= 3
    });
    c.assert_log_prefixes();
}

#[test]
fn chained_scenario_single_leader_change_no_livelock() {
    // Fig. 1c / Fig. 5c: three servers in a chain A - B - C with B leader
    // and the B-C link cut. C takes over; A follows C; B causes no further
    // leader changes.
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    let b = c.leader_pid().unwrap();
    let others: Vec<NodeId> = (1..=3).filter(|&p| p != b).collect();
    let (a, cc) = (others[0], others[1]);
    for v in 1..=3 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 3));
    c.cut_link(b, cc);
    // C (or the chain generally) elects a new leader; progress resumes via
    // the pair {A, C} or {A, B} depending on ballots — but crucially it
    // settles instead of livelocking.
    c.run(SETTLE);
    // The old leader B may still believe it leads (it learns nothing new,
    // by design — §5.2 case iii); the *effective* leader is the one with
    // the maximum ballot.
    let stable_leader = c
        .servers
        .iter()
        .filter(|s| s.is_leader())
        .max_by_key(|s| s.leader())
        .expect("a leader exists")
        .pid();
    // The leader must be able to commit: propose through it and verify.
    c.server(stable_leader).propose(4).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers.iter().filter(|s| s.log().len() == 4).count() >= 2
    });
    // Stability: no further leader changes over a long quiet period.
    let leader_ballot = c.server(a).leader();
    c.run(400);
    assert_eq!(
        c.server(a).leader(),
        leader_ballot,
        "leadership must not churn in the chained scenario"
    );
    c.assert_log_prefixes();
}

#[test]
fn crash_recovery_rejoins_and_catches_up() {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 1..=5 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 5));
    let leader = c.leader_pid().unwrap();
    let victim = (1..=3).find(|&p| p != leader).unwrap();
    // Crash: isolate + recover protocol state from storage.
    c.isolate(victim);
    for v in 6..=8 {
        c.server(leader).propose(v).unwrap();
    }
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .filter(|s| s.pid() != victim)
            .all(|s| s.log().len() == 8)
    });
    c.server(victim).fail_recovery();
    c.heal_all();
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 8));
    c.assert_log_prefixes();
}

#[test]
fn leader_crash_and_recovery_preserves_decided_log() {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 1..=4 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 4));
    let leader = c.leader_pid().unwrap();
    c.isolate(leader);
    c.server(leader).fail_recovery();
    c.heal_all();
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() >= 4));
    c.assert_log_prefixes();
    for s in &c.servers {
        assert_eq!(&s.log()[..4], &[1, 2, 3, 4]);
    }
}
