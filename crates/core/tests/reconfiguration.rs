//! Service-layer reconfiguration tests (§6): stop-signs, configuration
//! handover, and parallel/leader-only log migration to new servers.

mod common;

use common::TestCluster;
use omnipaxos::service::ServerRole;
use omnipaxos::{MigrationScheme, NodeId};

const SETTLE: usize = 400;

/// Bootstrap a 3-server cluster with `n_entries` decided entries.
fn warmed_cluster(n_entries: u64) -> TestCluster {
    let mut c = TestCluster::new(3);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 0..n_entries {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .all(|s| s.log().len() == n_entries as usize)
    });
    c
}

#[test]
fn stop_sign_blocks_further_proposals() {
    let mut c = warmed_cluster(5);
    let leader = c.leader_pid().unwrap();
    c.server(leader).reconfigure(vec![1, 2, 3]).unwrap();
    // Proposals after the stop-sign are buffered, not lost.
    c.server(leader).propose(100).unwrap();
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.config_id() == 2));
    // The buffered proposal lands in configuration 2.
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 6));
    assert_eq!(c.servers[0].log().last(), Some(&100));
}

#[test]
fn replace_one_server_with_parallel_migration() {
    let mut c = warmed_cluster(50);
    c.add_joiner(4);
    let leader = c.leader_pid().unwrap();
    // Keep the leader; replace one follower with server 4.
    let replaced = (1..=3).find(|&p| p != leader).unwrap();
    let new_nodes: Vec<NodeId> = (1..=4).filter(|&p| p != replaced).collect();
    c.server(leader).reconfigure(new_nodes.clone()).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers[3].role() == ServerRole::Active && c.servers[3].log().len() == 50
    });
    assert_eq!(c.server(replaced).role(), ServerRole::Retired);
    assert_eq!(c.server(4).config_id(), 2);
    // The new configuration can decide entries.
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .filter(|s| new_nodes.contains(&s.pid()))
            .any(|s| s.is_leader())
    });
    let new_leader = c
        .servers
        .iter()
        .filter(|s| new_nodes.contains(&s.pid()) && s.is_leader())
        .max_by_key(|s| s.leader())
        .unwrap()
        .pid();
    c.server(new_leader).propose(999).unwrap();
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .filter(|s| new_nodes.contains(&s.pid()))
            .all(|s| s.log().last() == Some(&999))
    });
    c.assert_log_prefixes();
}

#[test]
fn replace_majority_of_servers() {
    let mut c = warmed_cluster(30);
    c.add_joiner(4);
    c.add_joiner(5);
    let leader = c.leader_pid().unwrap();
    // Keep only the leader from the old configuration.
    let new_nodes: Vec<NodeId> = vec![leader, 4, 5];
    c.server(leader).reconfigure(new_nodes.clone()).unwrap();
    c.run_until(800, |c| {
        c.servers[3].role() == ServerRole::Active
            && c.servers[4].role() == ServerRole::Active
            && c.servers[3].log().len() == 30
            && c.servers[4].log().len() == 30
    });
    // New configuration makes progress.
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .filter(|s| new_nodes.contains(&s.pid()))
            .any(|s| s.is_leader())
    });
    c.assert_log_prefixes();
}

#[test]
fn leader_only_migration_also_completes() {
    let mut c = TestCluster::with_scheme(3, MigrationScheme::LeaderOnly);
    c.run_until(SETTLE, |c| c.leader_pid().is_some());
    for v in 0..40 {
        c.propose_via_leader(v);
    }
    c.run_until(SETTLE, |c| c.servers.iter().all(|s| s.log().len() == 40));
    c.add_joiner(4);
    let leader = c.leader_pid().unwrap();
    let mut new_nodes: Vec<NodeId> = vec![4];
    new_nodes.extend((1..=3).filter(|&p| p != leader).take(2));
    new_nodes.push(leader);
    c.server(leader).reconfigure(new_nodes).unwrap();
    c.run_until(800, |c| {
        c.servers[3].role() == ServerRole::Active && c.servers[3].log().len() == 40
    });
}

#[test]
fn migration_survives_a_dead_donor() {
    // The paper's resilience argument (§6.1): a new server can fetch the
    // log from *any* server, so one unreachable donor must not block the
    // reconfiguration.
    let mut c = warmed_cluster(60);
    c.add_joiner(4);
    let leader = c.leader_pid().unwrap();
    let dead_donor = (1..=3).find(|&p| p != leader).unwrap();
    // The joiner cannot talk to one old server at all.
    c.cut_link(4, dead_donor);
    let new_nodes: Vec<NodeId> = (1..=4).filter(|&p| p != dead_donor).collect();
    c.server(leader).reconfigure(new_nodes).unwrap();
    c.run_until(2000, |c| {
        c.servers[3].role() == ServerRole::Active && c.servers[3].log().len() == 60
    });
    c.assert_log_prefixes();
}

#[test]
fn chained_reconfigurations() {
    let mut c = warmed_cluster(10);
    c.add_joiner(4);
    c.add_joiner(5);
    let leader = c.leader_pid().unwrap();
    let keep: Vec<NodeId> = (1..=3).filter(|&p| p != leader).collect();
    // c_1 {1,2,3} -> c_2 {keep[0], keep[1], 4}.
    let second = vec![keep[0], keep[1], 4];
    c.server(leader).reconfigure(second.clone()).unwrap();
    c.run_until(800, |c| {
        second
            .iter()
            .all(|&p| c.servers[p as usize - 1].config_id() == 2)
    });
    // c_2 -> c_3 {keep[0], 4, 5}.
    c.run_until(SETTLE, |c| {
        c.servers
            .iter()
            .filter(|s| second.contains(&s.pid()))
            .any(|s| s.is_leader())
    });
    let l2 = c
        .servers
        .iter()
        .filter(|s| second.contains(&s.pid()) && s.is_leader())
        .max_by_key(|s| s.leader())
        .unwrap()
        .pid();
    let third = vec![keep[0], 4, 5];
    c.server(l2).reconfigure(third.clone()).unwrap();
    c.run_until(1200, |c| {
        third
            .iter()
            .all(|&p| c.servers[p as usize - 1].config_id() == 3)
    });
    assert_eq!(c.server(5).log().len(), 10);
    c.assert_log_prefixes();
}

#[test]
fn proposals_during_migration_are_buffered_and_flushed() {
    let mut c = warmed_cluster(20);
    c.add_joiner(4);
    let leader = c.leader_pid().unwrap();
    let replaced = (1..=3).find(|&p| p != leader).unwrap();
    let new_nodes: Vec<NodeId> = (1..=4).filter(|&p| p != replaced).collect();
    c.server(leader).reconfigure(new_nodes.clone()).unwrap();
    // Keep proposing at the leader throughout the switch.
    for v in 1000..1020 {
        c.server(leader).propose(v).unwrap();
        c.step();
    }
    c.run_until(1200, |c| {
        c.servers
            .iter()
            .filter(|s| new_nodes.contains(&s.pid()))
            .all(|s| s.log().len() == 40)
    });
    let log = c.servers[leader as usize - 1].log().to_vec();
    assert_eq!(&log[20..], &(1000..1020).collect::<Vec<u64>>()[..]);
}
