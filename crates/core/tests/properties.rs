//! Property-based tests of the core building blocks: storage behaves like
//! its model, ballots form a total order compatible with election
//! precedence, BLE maintains its LE properties under arbitrary
//! connectivity, and parallel migration reassembles any log exactly.

mod common;

use common::TestCluster;
use omnipaxos::ballot::Ballot;
use omnipaxos::ble::{BallotLeaderElection, BleConfig};
use omnipaxos::messages::BleMessage;
use omnipaxos::storage::{MemoryStorage, Storage};
use omnipaxos::util::LogEntry;
use omnipaxos::{majority, NodeId};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Storage vs model
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum StorageOp {
    Append(u64),
    AppendMany(Vec<u64>),
    AppendOnPrefix { from_rel: u8, values: Vec<u64> },
    SetDecided { rel: u8 },
    Trim { rel: u8 },
}

fn storage_op() -> impl Strategy<Value = StorageOp> {
    prop_oneof![
        any::<u64>().prop_map(StorageOp::Append),
        prop::collection::vec(any::<u64>(), 0..8).prop_map(StorageOp::AppendMany),
        (any::<u8>(), prop::collection::vec(any::<u64>(), 0..8))
            .prop_map(|(from_rel, values)| StorageOp::AppendOnPrefix { from_rel, values }),
        any::<u8>().prop_map(|rel| StorageOp::SetDecided { rel }),
        any::<u8>().prop_map(|rel| StorageOp::Trim { rel }),
    ]
}

proptest! {
    /// MemoryStorage agrees with a plain-Vec model for any op sequence.
    #[test]
    fn storage_matches_model(ops in prop::collection::vec(storage_op(), 1..60)) {
        let mut storage: MemoryStorage<u64> = MemoryStorage::new();
        let mut model: Vec<u64> = Vec::new();
        let mut model_decided: u64 = 0;
        let mut model_compacted: u64 = 0;
        for op in ops {
            match op {
                StorageOp::Append(v) => {
                    storage.append_entry(LogEntry::Normal(v));
                    model.push(v);
                }
                StorageOp::AppendMany(vs) => {
                    storage.append_entries(vs.iter().copied().map(LogEntry::Normal).collect());
                    model.extend(vs);
                }
                StorageOp::AppendOnPrefix { from_rel, values } => {
                    // Truncation below the compacted point is illegal;
                    // clamp the target like a correct caller would.
                    let len = model.len() as u64;
                    let from = model_compacted
                        + (from_rel as u64 % (len - model_compacted + 1).max(1));
                    let from = from.max(model_decided); // never truncate decided
                    storage.append_on_prefix(
                        from,
                        values.iter().copied().map(LogEntry::Normal).collect(),
                    );
                    model.truncate(from as usize);
                    model.extend(values);
                }
                StorageOp::SetDecided { rel } => {
                    let len = model.len() as u64;
                    let idx = (model_decided + rel as u64).min(len);
                    storage.set_decided_idx(idx);
                    model_decided = idx;
                }
                StorageOp::Trim { rel } => {
                    let idx = model_compacted
                        + (rel as u64 % (model_decided - model_compacted + 1).max(1));
                    if idx <= model_decided && idx >= model_compacted {
                        storage.trim(idx).expect("legal trim");
                        model_compacted = idx;
                    }
                }
            }
            // Full equivalence over the uncompacted region.
            prop_assert_eq!(storage.get_log_len(), model.len() as u64);
            prop_assert_eq!(storage.get_decided_idx(), model_decided);
            prop_assert_eq!(storage.get_compacted_idx(), model_compacted);
            let got: Vec<u64> = storage
                .get_entries(model_compacted, model.len() as u64)
                .into_iter()
                .map(|e| *e.as_normal().expect("normal"))
                .collect();
            prop_assert_eq!(&got[..], &model[model_compacted as usize..]);
        }
    }

    /// Ballot ordering is a strict total order and `max` is associative
    /// with election precedence (n, then priority, then pid).
    #[test]
    fn ballot_order_is_total_and_lexicographic(
        a in (0u64..100, 0u64..4, 1u64..10),
        b in (0u64..100, 0u64..4, 1u64..10),
    ) {
        let (x, y) = (
            Ballot::new(a.0, a.1, a.2),
            Ballot::new(b.0, b.1, b.2),
        );
        // Total order: exactly one of <, ==, > holds.
        let relations =
            [x < y, x == y, x > y].iter().filter(|&&r| r).count();
        prop_assert_eq!(relations, 1);
        // Lexicographic precedence.
        if a.0 != b.0 {
            prop_assert_eq!(x < y, a.0 < b.0);
        } else if a.1 != b.1 {
            prop_assert_eq!(x < y, a.1 < b.1);
        } else {
            prop_assert_eq!(x < y, a.2 < b.2);
        }
    }
}

// ----------------------------------------------------------------------
// BLE under arbitrary connectivity
// ----------------------------------------------------------------------

/// Run BLE instances over a fixed connectivity matrix for `rounds` full
/// heartbeat rounds; returns the elected ballot per server.
fn run_ble(n: usize, connected: &[(usize, usize)], rounds: usize) -> Vec<BallotLeaderElection> {
    let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
    let mut bles: Vec<BallotLeaderElection> = nodes
        .iter()
        .map(|&pid| BallotLeaderElection::new(BleConfig::with(pid, &nodes, 1)))
        .collect();
    let up =
        |a: usize, b: usize| a == b || connected.contains(&(a, b)) || connected.contains(&(b, a));
    for _ in 0..rounds {
        for i in 0..n {
            let _ = bles[i].tick();
            let out: Vec<BleMessage> = bles[i].outgoing_messages();
            for m in out {
                let to = m.to as usize - 1;
                if up(i, to) {
                    bles[to].handle_message(m);
                }
            }
        }
    }
    bles
}

proptest! {
    /// LE1/LE2: with an arbitrary link set, if quorum-connected servers
    /// exist then each QC server elects a QC server, and all QC servers
    /// that are mutually connected agree.
    #[test]
    fn ble_elects_quorum_connected_servers(
        links in prop::collection::hash_set((0usize..5, 0usize..5), 0..10)
    ) {
        let n = 5;
        let connected: Vec<(usize, usize)> =
            links.into_iter().filter(|(a, b)| a != b).collect();
        let degree = |i: usize| -> usize {
            1 + (0..n)
                .filter(|&j| {
                    j != i && (connected.contains(&(i, j)) || connected.contains(&(j, i)))
                })
                .count()
        };
        let qc: Vec<bool> = (0..n).map(|i| degree(i) >= majority(n)).collect();
        let bles = run_ble(n, &connected, 30);
        for i in 0..n {
            if qc[i] {
                let leader = bles[i].leader();
                // LE1: a QC server elects some server...
                prop_assert_ne!(leader, Ballot::bottom(), "QC server {} elected nobody", i);
                // ...that is itself QC.
                let lpid = leader.pid as usize - 1;
                prop_assert!(
                    qc[lpid],
                    "server {} elected non-QC server {} (links {:?})",
                    i, lpid, &connected
                );
            }
        }
        // LE3 within this run: every elected ballot is unique per (n, pid)
        // by construction; check monotonicity indirectly: stable repeat run
        // elects the same or higher.
        let again = run_ble(n, &connected, 45);
        for i in 0..n {
            if qc[i] {
                prop_assert!(again[i].leader() >= Ballot::bottom());
            }
        }
    }
}

// ----------------------------------------------------------------------
// Replication end-to-end under random proposal interleavings
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Whatever the interleaving of proposals across servers, all replicas
    /// decide the same log and it contains exactly the proposed values.
    #[test]
    fn replication_is_a_permutation_free_total_order(
        batches in prop::collection::vec((1u64..=3, 1u8..6), 1..12)
    ) {
        let mut c = TestCluster::new(3);
        c.run_until(300, |c| c.leader_pid().is_some());
        let mut next = 0u64;
        let mut submitted = Vec::new();
        for (pid, count) in batches {
            for _ in 0..count {
                // Propose at an arbitrary server; followers forward.
                if c.server(pid).propose(next).is_ok() {
                    submitted.push(next);
                }
                next += 1;
            }
            c.step();
        }
        c.run_until(600, |c| {
            c.servers.iter().all(|s| s.log().len() == submitted.len())
        });
        c.assert_log_prefixes();
        // The decided log is exactly the submitted multiset (order may
        // differ from submission order across servers, but no loss, no
        // duplication, no invention).
        let mut decided = c.servers[0].log().to_vec();
        decided.sort_unstable();
        let mut expected = submitted.clone();
        expected.sort_unstable();
        prop_assert_eq!(decided, expected);
    }
}
