//! Randomized property tests of the core building blocks: storage behaves
//! like its model, ballots form a total order compatible with election
//! precedence, BLE maintains its LE properties under arbitrary
//! connectivity, and replication decides a permutation-free total order.
//!
//! Cases are generated with the in-tree seedable PRNG (`simulator::Rng`)
//! from fixed seeds, so every run explores the same schedules — failures
//! reproduce by construction, with no external fuzzing framework.

mod common;

use common::TestCluster;
use omnipaxos::ballot::Ballot;
use omnipaxos::ble::{BallotLeaderElection, BleConfig};
use omnipaxos::messages::BleMessage;
use omnipaxos::storage::{MemoryStorage, Storage};
use omnipaxos::util::LogEntry;
use omnipaxos::wal::WalStorage;
use omnipaxos::{majority, NodeId};
use simulator::Rng;

// ----------------------------------------------------------------------
// Storage vs model
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum StorageOp {
    Append(u64),
    AppendMany(Vec<u64>),
    AppendOnPrefix { from_rel: u8, values: Vec<u64> },
    SetDecided { rel: u8 },
    Trim { rel: u8 },
}

fn gen_values(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let len = rng.below_usize(max_len);
    (0..len).map(|_| rng.next_u64()).collect()
}

fn gen_storage_op(rng: &mut Rng) -> StorageOp {
    match rng.below(5) {
        0 => StorageOp::Append(rng.next_u64()),
        1 => StorageOp::AppendMany(gen_values(rng, 8)),
        2 => StorageOp::AppendOnPrefix {
            from_rel: rng.below(256) as u8,
            values: gen_values(rng, 8),
        },
        3 => StorageOp::SetDecided {
            rel: rng.below(256) as u8,
        },
        _ => StorageOp::Trim {
            rel: rng.below(256) as u8,
        },
    }
}

/// Drive `storage` with a random op sequence and check full equivalence
/// with a plain-Vec model after every op — through both the owning Vec
/// API (`get_entries`/`get_suffix`) and the borrowed/shared zero-copy API
/// (`entries_ref`/`shared_suffix`), which must agree at every boundary
/// (empty ranges, the compaction point, past-the-end clamping).
fn check_storage_matches_model<S: Storage<u64>>(seed: u64, mut storage: S) {
    {
        let mut rng = Rng::seed_from_u64(seed);
        let ops: Vec<StorageOp> = (0..rng.range_inclusive(1, 60))
            .map(|_| gen_storage_op(&mut rng))
            .collect();
        let mut model: Vec<u64> = Vec::new();
        let mut model_decided: u64 = 0;
        let mut model_compacted: u64 = 0;
        for op in ops {
            match op {
                StorageOp::Append(v) => {
                    storage.append_entry(LogEntry::Normal(v)).expect("append");
                    model.push(v);
                }
                StorageOp::AppendMany(vs) => {
                    storage
                        .append_entries(vs.iter().copied().map(LogEntry::Normal).collect())
                        .expect("append");
                    model.extend(vs);
                }
                StorageOp::AppendOnPrefix { from_rel, values } => {
                    // Truncation below the compacted point is illegal;
                    // clamp the target like a correct caller would.
                    let len = model.len() as u64;
                    let from =
                        model_compacted + (from_rel as u64 % (len - model_compacted + 1).max(1));
                    let from = from.max(model_decided); // never truncate decided
                    storage
                        .append_on_prefix(
                            from,
                            values.iter().copied().map(LogEntry::Normal).collect(),
                        )
                        .expect("append_on_prefix");
                    model.truncate(from as usize);
                    model.extend(values);
                }
                StorageOp::SetDecided { rel } => {
                    let len = model.len() as u64;
                    let idx = (model_decided + rel as u64).min(len);
                    storage.set_decided_idx(idx).expect("set_decided");
                    model_decided = idx;
                }
                StorageOp::Trim { rel } => {
                    let idx = model_compacted
                        + (rel as u64 % (model_decided - model_compacted + 1).max(1));
                    if idx <= model_decided && idx >= model_compacted {
                        storage.trim(idx).expect("legal trim");
                        model_compacted = idx;
                    }
                }
            }
            // Full equivalence over the uncompacted region.
            assert_eq!(storage.get_log_len(), model.len() as u64);
            assert_eq!(storage.get_decided_idx(), model_decided);
            assert_eq!(storage.get_compacted_idx(), model_compacted);
            let got: Vec<u64> = storage
                .get_entries(model_compacted, model.len() as u64)
                .into_iter()
                .map(|e| *e.as_normal().expect("normal"))
                .collect();
            assert_eq!(&got[..], &model[model_compacted as usize..]);
            // The zero-copy API must agree with the Vec API for every
            // range boundary: the compaction point, interior cuts, the
            // log end, and past-the-end (clamped) / empty ranges.
            let len = model.len() as u64;
            let probes = [
                (model_compacted, len),
                (model_compacted, model_compacted),
                ((model_compacted + len).div_ceil(2), len),
                (model_decided.max(model_compacted), len),
                (len, len + 3),
                (model_compacted, len + 7),
            ];
            for (from, to) in probes {
                assert_eq!(
                    storage.entries_ref(from, to),
                    &storage.get_entries(from, to)[..],
                    "entries_ref vs get_entries at [{from}, {to})"
                );
            }
            for from in [model_compacted, model_decided.max(model_compacted), len] {
                let shared = storage.shared_suffix(from);
                assert_eq!(
                    &shared[..],
                    &storage.get_suffix(from)[..],
                    "shared_suffix vs get_suffix at {from}"
                );
            }
        }
    }
}

/// MemoryStorage agrees with a plain-Vec model for any op sequence.
#[test]
fn storage_matches_model() {
    for case in 0..64u64 {
        check_storage_matches_model(0xA11CE + case, MemoryStorage::<u64>::new());
    }
}

/// WalStorage agrees with the same model — including through the borrowed
/// and shared read APIs, and across trim/compaction boundaries.
#[test]
fn wal_storage_matches_model() {
    for case in 0..64u64 {
        let mut path = std::env::temp_dir();
        path.push(format!("omnipaxos-props-wal-{}-{case}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let storage: WalStorage<u64> = WalStorage::open(&path).expect("open wal");
        check_storage_matches_model(0xA11CE + case, storage);
        let _ = std::fs::remove_file(&path);
    }
}

/// Ballot ordering is a strict total order and `max` is associative
/// with election precedence (n, then priority, then pid).
#[test]
fn ballot_order_is_total_and_lexicographic() {
    let mut rng = Rng::seed_from_u64(0xBA110);
    for _ in 0..2_000 {
        let a = (rng.below(100), rng.below(4), rng.range_inclusive(1, 9));
        let b = (rng.below(100), rng.below(4), rng.range_inclusive(1, 9));
        let (x, y) = (Ballot::new(a.0, a.1, a.2), Ballot::new(b.0, b.1, b.2));
        // Total order: exactly one of <, ==, > holds.
        let relations = [x < y, x == y, x > y].iter().filter(|&&r| r).count();
        assert_eq!(relations, 1);
        // Lexicographic precedence.
        if a.0 != b.0 {
            assert_eq!(x < y, a.0 < b.0);
        } else if a.1 != b.1 {
            assert_eq!(x < y, a.1 < b.1);
        } else {
            assert_eq!(x < y, a.2 < b.2);
        }
    }
}

// ----------------------------------------------------------------------
// BLE under arbitrary connectivity
// ----------------------------------------------------------------------

/// Run BLE instances over a fixed connectivity matrix for `rounds` full
/// heartbeat rounds; returns the elected ballot per server.
fn run_ble(n: usize, connected: &[(usize, usize)], rounds: usize) -> Vec<BallotLeaderElection> {
    let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
    let mut bles: Vec<BallotLeaderElection> = nodes
        .iter()
        .map(|&pid| BallotLeaderElection::new(BleConfig::with(pid, &nodes, 1)))
        .collect();
    let up =
        |a: usize, b: usize| a == b || connected.contains(&(a, b)) || connected.contains(&(b, a));
    for _ in 0..rounds {
        for i in 0..n {
            let _ = bles[i].tick();
            let out: Vec<BleMessage> = bles[i].outgoing_messages();
            for m in out {
                let to = m.to as usize - 1;
                if up(i, to) {
                    bles[to].handle_message(m);
                }
            }
        }
    }
    bles
}

/// LE1/LE2: with an arbitrary link set, if quorum-connected servers
/// exist then each QC server elects a QC server, and all QC servers
/// that are mutually connected agree.
#[test]
fn ble_elects_quorum_connected_servers() {
    let n = 5;
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xB1E + case);
        let mut connected: Vec<(usize, usize)> = Vec::new();
        for _ in 0..rng.below(10) {
            let (a, b) = (rng.below_usize(n), rng.below_usize(n));
            if a != b && !connected.contains(&(a, b)) {
                connected.push((a, b));
            }
        }
        let degree = |i: usize| -> usize {
            1 + (0..n)
                .filter(|&j| j != i && (connected.contains(&(i, j)) || connected.contains(&(j, i))))
                .count()
        };
        let qc: Vec<bool> = (0..n).map(|i| degree(i) >= majority(n)).collect();
        let bles = run_ble(n, &connected, 30);
        for i in 0..n {
            if qc[i] {
                let leader = bles[i].leader();
                // LE1: a QC server elects some server...
                assert_ne!(leader, Ballot::bottom(), "QC server {i} elected nobody");
                // ...that is itself QC.
                let lpid = leader.pid as usize - 1;
                assert!(
                    qc[lpid],
                    "server {i} elected non-QC server {lpid} (links {connected:?})"
                );
            }
        }
        // LE3 within this run: every elected ballot is unique per (n, pid)
        // by construction; check monotonicity indirectly: stable repeat run
        // elects the same or higher.
        let again = run_ble(n, &connected, 45);
        for i in 0..n {
            if qc[i] {
                assert!(again[i].leader() >= Ballot::bottom());
            }
        }
    }
}

// ----------------------------------------------------------------------
// Replication end-to-end under random proposal interleavings
// ----------------------------------------------------------------------

/// Whatever the interleaving of proposals across servers, all replicas
/// decide the same log and it contains exactly the proposed values.
#[test]
fn replication_is_a_permutation_free_total_order() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x10607 + case);
        let batches: Vec<(NodeId, u8)> = (0..rng.range_inclusive(1, 11))
            .map(|_| (rng.range_inclusive(1, 3), rng.range_inclusive(1, 5) as u8))
            .collect();
        let mut c = TestCluster::new(3);
        c.run_until(300, |c| c.leader_pid().is_some());
        let mut next = 0u64;
        let mut submitted = Vec::new();
        for (pid, count) in batches {
            for _ in 0..count {
                // Propose at an arbitrary server; followers forward.
                if c.server(pid).propose(next).is_ok() {
                    submitted.push(next);
                }
                next += 1;
            }
            c.step();
        }
        c.run_until(600, |c| {
            c.servers.iter().all(|s| s.log().len() == submitted.len())
        });
        c.assert_log_prefixes();
        // The decided log is exactly the submitted multiset (order may
        // differ from submission order across servers, but no loss, no
        // duplication, no invention).
        let mut decided = c.servers[0].log().to_vec();
        decided.sort_unstable();
        let mut expected = submitted.clone();
        expected.sort_unstable();
        assert_eq!(decided, expected);
    }
}
