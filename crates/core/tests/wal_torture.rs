//! WAL crash-point torture: truncate a recorded run at **every byte
//! boundary** and flip bits at **every byte**, and demand that every
//! single outcome is either full recovery of the flushed state or a typed
//! [`WalError::Corrupt`] — never a panic, never silent loss of state that
//! was covered by a completed fsync.
//!
//! The oracle is exact. The run syncs after every mutation, so the file
//! is a sequence of `[record][commit-marker]` cells whose boundaries we
//! learn by measuring the file after each sync; for any truncation point
//! the recovered state must equal the state at a specific recorded sync
//! point (torn cells roll back to the previous one, whole cells apply).
//! Bit flips split at the durable point: a flip before the final commit
//! marker mangles fsynced — and therefore possibly acknowledged — bytes
//! and must surface as `WalError::Corrupt { offset }` pointing at (or
//! before) the flipped byte; a flip inside the final marker only tears
//! the unsynced assertion and recovery must still produce the full
//! flushed state.

use omnipaxos::wal::{WalError, WalStorage};
use omnipaxos::{Ballot, LogEntry, SnapshotData, Storage};
use std::path::PathBuf;

/// On-disk size of a durable-point (COMMIT) marker:
/// `[tag: u8][len: u32][offset: u64][crc: u32]`.
const MARKER_LEN: u64 = 17;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("omnipaxos-torture-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

fn norm(v: u64) -> LogEntry<u64> {
    LogEntry::Normal(v)
}

/// Full observable state of a WAL, for exact-equality oracles.
#[derive(Debug, Clone, PartialEq)]
struct WalState {
    compacted: u64,
    len: u64,
    decided: u64,
    promise: Ballot,
    accepted: Ballot,
    entries: Vec<LogEntry<u64>>,
    snapshot: Option<(u64, Vec<u8>)>,
}

fn capture(w: &WalStorage<u64>) -> WalState {
    WalState {
        compacted: w.get_compacted_idx(),
        len: w.get_log_len(),
        decided: w.get_decided_idx(),
        promise: w.get_promise(),
        accepted: w.get_accepted_round(),
        entries: w.get_entries(w.get_compacted_idx(), w.get_log_len()),
        snapshot: w.get_snapshot().map(|s| (s.idx, s.data.to_vec())),
    }
}

fn empty_state() -> WalState {
    WalState {
        compacted: 0,
        len: 0,
        decided: 0,
        promise: Ballot::bottom(),
        accepted: Ballot::bottom(),
        entries: Vec::new(),
        snapshot: None,
    }
}

/// A recorded run: the final file image, the file length after each sync
/// (`lens[k]`), and the expected state at that point (`states[k]`).
/// `lens[0] == 0` / `states[0]` describe the file before any mutation.
struct Recorded {
    path: PathBuf,
    full: Vec<u8>,
    lens: Vec<u64>,
    states: Vec<WalState>,
}

impl Recorded {
    /// Largest sync point whose cell is complete within a `cut`-byte
    /// prefix: cell `k`'s record ends at `lens[k] - MARKER_LEN`, and a
    /// complete record applies even when its trailing marker is torn.
    fn sync_point_at(&self, cut: u64) -> usize {
        (0..self.lens.len())
            .rev()
            .find(|&k| self.lens[k].saturating_sub(MARKER_LEN) <= cut)
            .expect("lens[0] = 0 always qualifies")
    }
}

/// One recorded mutation of the torture run.
type Mutation<'a> = &'a dyn Fn(&mut WalStorage<u64>);

/// Drive one mutation per sync and record the (length, state) ladder.
fn record_run(name: &str, muts: &[Mutation<'_>]) -> Recorded {
    let path = tmp(name);
    let mut w: WalStorage<u64> = WalStorage::open(&path).expect("fresh wal");
    w.checkpoint_every = 0; // boundaries below assume no auto-rewrite
    let mut lens = vec![0u64];
    let mut states = vec![capture(&w)];
    for m in muts {
        m(&mut w);
        w.sync().expect("sync");
        lens.push(std::fs::metadata(&path).expect("stat").len());
        states.push(capture(&w));
    }
    drop(w); // nothing buffered: every mutation was synced
    let full = std::fs::read(&path).expect("read recorded wal");
    assert_eq!(full.len() as u64, *lens.last().expect("non-empty run"));
    Recorded {
        path,
        full,
        lens,
        states,
    }
}

/// The main recorded run: every record type the replication layer emits —
/// appends, ballot updates, decided-index moves, a truncating overwrite,
/// a trim, a local snapshot, a snapshot install — one sync per mutation.
fn varied_run(name: &str) -> Recorded {
    let snap: SnapshotData = vec![9u8, 9, 9].into();
    let snap2: SnapshotData = (0u8..32).collect::<Vec<u8>>().into();
    record_run(
        // Tests run on parallel threads of one process: the caller's
        // name keeps their backing files from racing on one path.
        name,
        &[
            &|w| {
                w.append_entries((1..=3).map(norm).collect())
                    .expect("append");
            },
            &|w| w.set_promise(Ballot::new(2, 0, 1)).expect("promise"),
            &|w| {
                w.append_entries((4..=5).map(norm).collect())
                    .expect("append");
            },
            &|w| {
                w.set_accepted_round(Ballot::new(2, 0, 1))
                    .expect("accepted")
            },
            &|w| w.set_decided_idx(4).expect("decided"),
            // Two records in one sync (TRUNCATE + APPEND) — the one
            // multi-record cell, handled specially by the oracle.
            &|w| {
                w.append_on_prefix(4, vec![norm(40), norm(50)])
                    .expect("aop");
            },
            &|w| w.set_decided_idx(6).expect("decided"),
            &|w| w.trim(2).expect("trim"),
            &move |w| w.set_snapshot(4, snap.clone()).expect("snapshot"),
            &|w| {
                w.append_entries(vec![norm(70)]).expect("append");
            },
            &move |w| w.install_snapshot(100, snap2.clone()).expect("install"),
            &|w| {
                w.append_entries(vec![norm(101)]).expect("append");
            },
            &|w| w.set_decided_idx(101).expect("decided"),
        ],
    )
}

/// Index (into `lens`/`states`) of the `append_on_prefix` cell above.
const AOP_CELL: usize = 6;

/// Truncate the recorded run at every byte boundary: recovery must
/// always succeed (a shorter file is a crashed write, never corruption)
/// and must reconstruct exactly the state of the last complete cell.
#[test]
fn every_byte_truncation_recovers_a_flushed_state() {
    let run = varied_run("truncation");
    // The append_on_prefix cell's intermediate state: the truncate
    // record applied, its paired append still torn.
    let mid = {
        let mut s = run.states[AOP_CELL - 1].clone();
        s.entries.truncate((4 - s.compacted) as usize);
        s.len = 4;
        s
    };
    let mut seen = vec![false; run.states.len()];
    for cut in 0..=run.full.len() {
        std::fs::write(&run.path, &run.full[..cut]).expect("write prefix");
        let w: WalStorage<u64> = WalStorage::open(&run.path)
            .unwrap_or_else(|e| panic!("cut at {cut}: truncation must recover, got {e}"));
        let got = capture(&w);
        let k = run.sync_point_at(cut as u64);
        seen[k] = true;
        if k == AOP_CELL - 1 && cut as u64 > run.lens[k] {
            assert!(
                got == run.states[k] || got == mid,
                "cut at {cut}: expected state {k} or its truncate-only half, got {got:?}"
            );
        } else {
            assert_eq!(
                got, run.states[k],
                "cut at {cut}: wrong recovered state (expected sync point {k})"
            );
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "the byte sweep must visit every sync point: {seen:?}"
    );
    std::fs::remove_file(&run.path).expect("cleanup");
}

/// Flip every byte of the recorded run (two masks per byte). Before the
/// final durable-point marker the flip mangles fsynced state and must be
/// loud: `WalError::Corrupt` whose offset is at or before the flip, and
/// never a silent rollback. At or after the final marker only the
/// unsynced durable-point assertion tears, and recovery must still
/// produce the complete flushed state.
#[test]
fn every_byte_bitflip_is_loud_or_harmless() {
    let run = varied_run("bitflip");
    let durable = run.full.len() as u64 - MARKER_LEN;
    let final_state = run.states.last().expect("states");
    let mut loud = 0u64;
    for i in 0..run.full.len() {
        for mask in [0x01u8, 0x80] {
            let mut bytes = run.full.clone();
            bytes[i] ^= mask;
            std::fs::write(&run.path, &bytes).expect("write flipped");
            match WalStorage::<u64>::open(&run.path) {
                Ok(w) => {
                    assert!(
                        i as u64 >= durable,
                        "flip {mask:#04x} at {i}: corruption before the durable \
                         point ({durable}) was silently absorbed"
                    );
                    assert_eq!(
                        capture(&w),
                        *final_state,
                        "flip {mask:#04x} at {i}: a torn final marker must \
                         still recover the full flushed state"
                    );
                }
                Err(WalError::Corrupt { offset }) => {
                    loud += 1;
                    assert!(
                        (i as u64) < durable,
                        "flip {mask:#04x} at {i}: tail past the durable point \
                         must be treated as torn, not corrupt"
                    );
                    assert!(
                        offset <= i as u64,
                        "flip {mask:#04x} at {i}: corrupt offset {offset} \
                         past the flipped byte"
                    );
                }
                Err(WalError::Io(e)) => {
                    panic!("flip {mask:#04x} at {i}: unexpected i/o error {e}")
                }
            }
        }
    }
    // Every flipped byte below the durable point must have been loud.
    assert_eq!(
        loud,
        2 * durable,
        "every pre-durable-point flip must produce WalError::Corrupt"
    );
    std::fs::remove_file(&run.path).expect("cleanup");
}

/// The same two tortures against a file that starts with a checkpoint
/// record — the other on-disk layout a long-lived replica recovers from.
/// Cuts inside the checkpoint record itself roll all the way back to the
/// empty state (the rename discipline means a torn checkpoint can only
/// exist for a file that held nothing acknowledged); cuts and flips past
/// it follow the same rules as the plain log.
#[test]
fn checkpointed_file_survives_the_same_torture() {
    let path = tmp("ckpt");
    let snap: SnapshotData = vec![7u8; 16].into();
    let mut w: WalStorage<u64> = WalStorage::open(&path).expect("fresh wal");
    w.checkpoint_every = 0;
    w.append_entries((1..=10).map(norm).collect())
        .expect("append");
    w.set_decided_idx(10).expect("decided");
    w.set_snapshot(5, snap).expect("snapshot");
    w.sync().expect("sync");
    w.checkpoint().expect("checkpoint");
    let mut lens = vec![std::fs::metadata(&path).expect("stat").len()];
    let mut states = vec![capture(&w)];
    let tail_muts: [Mutation<'_>; 2] = [
        &|w| {
            w.append_entries(vec![norm(11)]).expect("append");
        },
        &|w| w.set_decided_idx(11).expect("decided"),
    ];
    for m in tail_muts {
        m(&mut w);
        w.sync().expect("sync");
        lens.push(std::fs::metadata(&path).expect("stat").len());
        states.push(capture(&w));
    }
    drop(w);
    let full = std::fs::read(&path).expect("read");
    assert_eq!(full.len() as u64, *lens.last().expect("lens"));
    // The checkpoint record ends where its own trailing marker begins.
    let ckpt_end = lens[0] - MARKER_LEN;

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).expect("write prefix");
        let w: WalStorage<u64> = WalStorage::open(&path)
            .unwrap_or_else(|e| panic!("cut at {cut}: truncation must recover, got {e}"));
        let got = capture(&w);
        if (cut as u64) < ckpt_end {
            assert_eq!(got, empty_state(), "cut at {cut}: torn checkpoint");
        } else {
            let k = (0..lens.len())
                .rev()
                .find(|&k| lens[k] - MARKER_LEN <= cut as u64)
                .expect("cut covers the checkpoint record");
            assert_eq!(got, states[k], "cut at {cut}: wrong recovered state");
        }
    }

    let durable = full.len() as u64 - MARKER_LEN;
    for i in 0..full.len() {
        let mut bytes = full.clone();
        bytes[i] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write flipped");
        match WalStorage::<u64>::open(&path) {
            Ok(w) => {
                assert!(i as u64 >= durable, "flip at {i} silently absorbed");
                assert_eq!(capture(&w), *states.last().expect("states"));
            }
            Err(WalError::Corrupt { offset }) => {
                assert!((i as u64) < durable, "flip at {i}: torn tail turned loud");
                assert!(offset <= i as u64);
            }
            Err(WalError::Io(e)) => panic!("flip at {i}: unexpected i/o error {e}"),
        }
    }
    std::fs::remove_file(&path).expect("cleanup");
}
