//! The service layer: cross-configuration log, reconfiguration, and log
//! migration (§6).
//!
//! A configuration `c_i` is a fixed set of servers running one
//! [`OmniPaxos`] instance. To reconfigure, a stop-sign is decided in `c_i`
//! through normal Sequence Paxos; the service layer then starts `c_{i+1}`:
//! servers in both configurations switch over immediately (they already hold
//! the whole log), while **new** servers first *migrate* the decided log and
//! only then start their BLE and Sequence Paxos components — that is the
//! safety rule of §6.
//!
//! Migration runs entirely in the service layer, decoupled from log
//! replication, which enables the paper's headline reconfiguration results
//! (§6.1, §7.3):
//!
//! * **Parallel migration** ([`MigrationScheme::Parallel`]): the missing log
//!   range is split across *all* reachable donors, so no single server — in
//!   particular not the leader — becomes an IO bottleneck.
//! * **Leader-only migration** ([`MigrationScheme::LeaderOnly`]): the scheme
//!   used by Raft-like protocols, provided for ablation; the notifying
//!   server transfers the whole log alone.
//!
//! Donors serve decided entries even if they have not reached the stop-sign
//! themselves — decided entries can never be retracted (§6.1, Fig. 6b).

use crate::ballot::{Ballot, NodeId};
use crate::omni::{OmniMessage, OmniPaxos, OmniPaxosConfig};
use crate::sequence_paxos::{ProposeErr, ReadIndexErr};
use crate::snapshot::SnapshotData;
use crate::storage::{MemoryStorage, Storage, StorageError, TrimError};
use crate::util::{Entry, LogEntry, StopSign};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// How a new server sources the log during reconfiguration (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationScheme {
    /// Split the missing range across all donors (Omni-Paxos default).
    Parallel,
    /// Fetch everything from the server that announced the configuration
    /// (models leader-driven migration; ablation baseline).
    LeaderOnly,
}

/// Service-layer message alphabet.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceMsg<T> {
    /// A protocol message of configuration `config_id`.
    Omni { config_id: u32, msg: OmniMessage<T> },
    /// Tell a new server that `ss.config_id` is starting and it must first
    /// migrate `log_len` entries of history. `snap_idx` is the notifier's
    /// compaction point: entries below it are no longer available as log
    /// segments and must be sourced as a state-machine snapshot (0 = the
    /// notifier holds the full log).
    StartConfig {
        ss: StopSign,
        old_nodes: Vec<NodeId>,
        log_len: u64,
        snap_idx: u64,
    },
    /// Ack: the new server has started (stop re-notifying it).
    ConfigStarted { config_id: u32 },
    /// Request decided entries `[from, to)` of the service-layer log.
    SegmentReq { from: u64, to: u64 },
    /// A chunk of decided entries starting at `start`. `served_to` reports
    /// how far the donor could serve of the `requested_to` range, so the
    /// requester can re-plan a shortfall onto another donor. The chunk is a
    /// shared `Arc<[T]>`: when several joiners pull the same stripe-aligned
    /// range (replace-majority reconfigurations), the donor materializes it
    /// once and every response is a refcount bump.
    SegmentResp {
        start: u64,
        entries: Arc<[T]>,
        served_to: u64,
        requested_to: u64,
    },
    /// Request the donor's state-machine snapshot from byte `offset`
    /// (snapshot-first migration; the transfer is pull-based and resumable
    /// like segment migration).
    SnapReq { offset: u64 },
    /// A chunk of the snapshot covering service-log entries `[0, idx)`,
    /// `total` bytes overall. `total == 0` means the donor has no snapshot
    /// and the requester must fall back to full log migration. The chunk is
    /// a shared `Arc<[u8]>` so fan-out to several joiners is a refcount
    /// bump per response.
    SnapResp {
        idx: u64,
        offset: u64,
        chunk: Arc<[u8]>,
        total: u64,
    },
    /// Multi-group envelope (§ multigroup): `msg` belongs to consensus
    /// group `group`. Groups multiplex many independent Omni-Paxos
    /// instances (e.g. keyspace shards) over one session; a bare
    /// un-enveloped message is, by convention, group 0, so single-group
    /// deployments keep their pre-envelope wire format.
    Group { group: u32, msg: Box<ServiceMsg<T>> },
    /// Shared-BLE heartbeat carrier: all groups' ballot-leader-election
    /// traffic to one peer, coalesced into a single frame per flush.
    /// Each beat is `(group, config_id, ble message)` — per-group ballots
    /// over one amortized failure-detector stream.
    GroupBle {
        beats: Vec<(u32, u32, crate::messages::BleMessage)>,
    },
}

impl<T> ServiceMsg<T> {
    /// Stable wire discriminant (append-only; forward-compatibility rules
    /// in [`crate::messages::PaxosMsg`] docs).
    pub const fn discriminant(&self) -> u8 {
        match self {
            ServiceMsg::Omni { .. } => 0,
            ServiceMsg::StartConfig { .. } => 1,
            ServiceMsg::ConfigStarted { .. } => 2,
            ServiceMsg::SegmentReq { .. } => 3,
            ServiceMsg::SegmentResp { .. } => 4,
            ServiceMsg::SnapReq { .. } => 5,
            ServiceMsg::SnapResp { .. } => 6,
            ServiceMsg::Group { .. } => 7,
            ServiceMsg::GroupBle { .. } => 8,
        }
    }
}

impl<T: Entry> ServiceMsg<T> {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        use crate::messages::HEADER_BYTES;
        match self {
            ServiceMsg::Omni { msg, .. } => msg.size_bytes(),
            ServiceMsg::StartConfig { ss, old_nodes, .. } => {
                HEADER_BYTES + ss.size_bytes() + old_nodes.len() * 8
            }
            ServiceMsg::ConfigStarted { .. } => HEADER_BYTES,
            ServiceMsg::SegmentReq { .. } => HEADER_BYTES,
            ServiceMsg::SegmentResp { entries, .. } => {
                HEADER_BYTES + entries.iter().map(Entry::size_bytes).sum::<usize>()
            }
            ServiceMsg::SnapReq { .. } => HEADER_BYTES,
            ServiceMsg::SnapResp { chunk, .. } => HEADER_BYTES + chunk.len(),
            // Envelope adds the 4-byte group id to the inner message.
            ServiceMsg::Group { msg, .. } => 4 + msg.size_bytes(),
            ServiceMsg::GroupBle { beats } => {
                HEADER_BYTES
                    + beats
                        .iter()
                        .map(|(_, _, b)| 8 + b.msg.size_bytes())
                        .sum::<usize>()
            }
        }
    }
}

/// Configuration of an [`OmniPaxosServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server.
    pub pid: NodeId,
    /// BLE heartbeat round length in ticks.
    pub hb_timeout_ticks: u64,
    /// Retransmission sweep period in ticks.
    pub resend_ticks: u64,
    /// Migration scheme (§6.1).
    pub scheme: MigrationScheme,
    /// Max entries per migration chunk message.
    pub chunk_entries: u64,
    /// Max bytes per migration chunk message (whichever bound hits first).
    pub chunk_bytes: usize,
    /// Stripe length for assigning migration ranges to donors. Striping
    /// balances donors by *position* in the log, so a history with mixed
    /// entry sizes still spreads bytes roughly evenly.
    pub stripe_entries: u64,
    /// Ticks between migration/notification retries.
    pub retry_ticks: u64,
    /// Ballot priority for tie-breaking (§8).
    pub priority: u64,
    /// Stamp takeover ballots with connectivity (§8's optimization).
    pub connectivity_priority: bool,
    /// Leader-lease duration in ticks; `0` disables lease reads (see
    /// [`OmniPaxosConfig::lease_ticks`] and DESIGN.md §14).
    pub lease_ticks: u64,
    /// Clock-skew safety margin for leases (see
    /// [`OmniPaxosConfig::lease_epsilon_ticks`]).
    pub lease_epsilon_ticks: u64,
}

impl ServerConfig {
    /// Defaults matching the evaluation harness.
    pub fn with(pid: NodeId) -> Self {
        ServerConfig {
            pid,
            hb_timeout_ticks: 5,
            resend_ticks: 50,
            scheme: MigrationScheme::Parallel,
            chunk_entries: 64 * 1024,
            chunk_bytes: 2 * 1024 * 1024,
            stripe_entries: 64 * 1024,
            retry_ticks: 100,
            priority: 0,
            connectivity_priority: false,
            lease_ticks: 0,
            lease_epsilon_ticks: 0,
        }
    }
}

/// What this server is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// Waiting to be told about a configuration (fresh joiner).
    Idle,
    /// Running an active configuration.
    Active,
    /// Migrating the log before joining a configuration.
    Migrating,
    /// Was in an old configuration and is not part of the new one; keeps
    /// donating log segments.
    Retired,
}

struct ActiveConfig<T: Entry, S: Storage<T>> {
    nodes: Vec<NodeId>,
    omni: OmniPaxos<T, S>,
    /// How many entries of this instance's decided log have been applied to
    /// the service-layer log.
    applied_idx: u64,
    /// Absolute service-log index where this configuration's own log
    /// begins: entry `i` of the instance is service entry `base + i` (until
    /// the stop-sign). Maps instance-level snapshots to service indices.
    base: u64,
    /// Handled the decided stop-sign already?
    stopped: bool,
}

/// An in-flight snapshot pull during migration (snapshot-first catch-up):
/// one donor streams the state-machine snapshot while the log tail above
/// `idx` is striped across the other donors in parallel.
struct SnapPull {
    donor: NodeId,
    /// The snapshot covers service-log entries `[0, idx)`.
    idx: u64,
    /// Total snapshot bytes; 0 until the first response arrives.
    total: u64,
    buf: Vec<u8>,
}

struct MigrationState<T> {
    ss: StopSign,
    donors: Vec<NodeId>,
    target_len: u64,
    /// Out-of-order received chunks, keyed by absolute start index.
    chunks: BTreeMap<u64, Arc<[T]>>,
    next_donor: usize,
    /// Ranges assigned to each donor, fetched front to back.
    assigned: HashMap<NodeId, VecDeque<(u64, u64)>>,
    /// Progress marker at the last retry sweep; a stalled migration (no
    /// growth between sweeps) re-requests its missing ranges.
    last_progress: u64,
    /// Snapshot transfer replacing the compacted log prefix, if the
    /// notifier's log no longer reaches back to what we are missing.
    snap: Option<SnapPull>,
}

/// A complete Omni-Paxos server: the service layer plus the per-
/// configuration protocol components (Fig. 2).
///
/// Generic over the replication storage `S` (defaulting to
/// [`MemoryStorage`]): the deterministic harnesses run it over
/// [`crate::faults::FaultyStorage`] to inject disk faults, deployments can
/// run it over [`crate::wal::WalStorage`]. New configurations start on
/// `S::default()` unless a storage factory is installed
/// ([`OmniPaxosServer::with_storage_factory`]), which is how durable or
/// multi-group deployments namespace each configuration's storage.
pub struct OmniPaxosServer<T: Entry, S: Storage<T> = MemoryStorage<T>> {
    config: ServerConfig,
    /// The replicated log across all configurations (decided entries only).
    /// `log[0]` is service entry `log_start`: the prefix below it has been
    /// compacted away and is superseded by `snapshot`.
    log: Vec<T>,
    /// Absolute index of `log[0]` (0 until the owner compacts).
    log_start: u64,
    /// State-machine snapshot covering entries `[0, idx)` where
    /// `idx == log_start`; served to joiners instead of the trimmed prefix.
    snapshot: Option<(u64, SnapshotData)>,
    /// A snapshot adopted from a peer (migration or replication-layer
    /// transfer) that the owner has not yet restored; see
    /// [`OmniPaxosServer::take_snapshot_event`].
    snapshot_event: Option<(u64, SnapshotData)>,
    /// Cursor for [`OmniPaxosServer::poll_applied`] (absolute index).
    polled_idx: u64,
    config_id: u32,
    role: ServerRole,
    active: Option<ActiveConfig<T, S>>,
    migration: Option<MigrationState<T>>,
    /// New servers we must keep notifying until they ack.
    notify_pending: Vec<(NodeId, StopSign, Vec<NodeId>, u64)>,
    /// Proposals buffered while the configuration is switching (§7.3: they
    /// are proposed in a batch when the new configuration starts).
    pending: Vec<T>,
    ticks_since_retry: u64,
    outgoing: Vec<(NodeId, ServiceMsg<T>)>,
    /// Number of reconfigurations completed at this server.
    reconfigurations: u32,
    /// Donor-side cache of recently served segments, keyed by start index.
    /// Decided entries are immutable, so a cached chunk never goes stale;
    /// joiners issue stripe-aligned requests, so during a reconfiguration
    /// with several joiners each chunk is materialized once and every
    /// further response to the same range is a refcount bump.
    segment_cache: HashMap<u64, (u64, Arc<[T]>)>,
    /// Builds the replication storage for a newly started configuration
    /// (argument: its `config_id`). Defaults to `S::default()`; durable
    /// deployments install a factory that opens a namespaced WAL, so each
    /// group/configuration keeps its own on-disk log.
    make_storage: Box<dyn Fn(u32) -> S + Send>,
}

/// Bound on [`OmniPaxosServer::segment_cache`]: enough for the in-flight
/// window of every concurrent joiner, small enough that the cache never
/// holds more than a few chunks' worth of memory after migration ends.
const SEGMENT_CACHE_MAX: usize = 64;

impl<T: Entry, S: Storage<T> + Default> OmniPaxosServer<T, S> {
    /// Start a server of the initial configuration (`config_id` 1) with
    /// membership `nodes`.
    pub fn new(config: ServerConfig, nodes: Vec<NodeId>) -> Self {
        Self::with_storage(config, nodes, S::default())
    }

    /// Start an initial-configuration server whose replication storage is
    /// pre-existing (experiments that begin with a long history, or a WAL
    /// reopened after a crash).
    pub fn with_storage(config: ServerConfig, nodes: Vec<NodeId>, storage: S) -> Self {
        Self::with_storage_factory(config, nodes, storage, |_| S::default())
    }

    /// Create a fresh joiner: it stays [`ServerRole::Idle`] until an
    /// existing server announces a configuration that includes it.
    pub fn new_joiner(config: ServerConfig) -> Self {
        Self::new_joiner_with_factory(config, |_| S::default())
    }
}

impl<T: Entry, S: Storage<T>> OmniPaxosServer<T, S> {
    /// Like [`OmniPaxosServer::with_storage`], but with an explicit
    /// factory producing the storage of each *later* configuration
    /// (keyed by its `config_id`). This is how storage without a
    /// meaningful `Default` — a [`crate::wal::WalStorage`] that must open
    /// a file — survives reconfigurations: the factory opens a fresh,
    /// namespaced log per configuration.
    pub fn with_storage_factory(
        config: ServerConfig,
        nodes: Vec<NodeId>,
        storage: S,
        make_storage: impl Fn(u32) -> S + Send + 'static,
    ) -> Self {
        assert!(nodes.contains(&config.pid));
        let mut server = OmniPaxosServer::empty(config, Box::new(make_storage));
        server.config_id = 1;
        server.role = ServerRole::Active;
        let omni_config = server.omni_config(1, nodes.clone());
        let omni = OmniPaxos::new(omni_config, storage);
        server.active = Some(ActiveConfig {
            nodes,
            omni,
            applied_idx: 0,
            base: 0,
            stopped: false,
        });
        server
    }

    /// A joiner whose eventual configurations build their storage through
    /// `make_storage` (see [`OmniPaxosServer::with_storage_factory`]).
    pub fn new_joiner_with_factory(
        config: ServerConfig,
        make_storage: impl Fn(u32) -> S + Send + 'static,
    ) -> Self {
        OmniPaxosServer::empty(config, Box::new(make_storage))
    }

    fn empty(config: ServerConfig, make_storage: Box<dyn Fn(u32) -> S + Send>) -> Self {
        OmniPaxosServer {
            config,
            log: Vec::new(),
            log_start: 0,
            snapshot: None,
            snapshot_event: None,
            polled_idx: 0,
            config_id: 0,
            role: ServerRole::Idle,
            active: None,
            migration: None,
            notify_pending: Vec::new(),
            pending: Vec::new(),
            ticks_since_retry: 0,
            outgoing: Vec::new(),
            reconfigurations: 0,
            segment_cache: HashMap::new(),
            make_storage,
        }
    }

    fn omni_config(&self, config_id: u32, nodes: Vec<NodeId>) -> OmniPaxosConfig {
        OmniPaxosConfig {
            config_id,
            pid: self.config.pid,
            nodes,
            hb_timeout_ticks: self.config.hb_timeout_ticks,
            resend_ticks: self.config.resend_ticks,
            priority: self.config.priority,
            connectivity_priority: self.config.connectivity_priority,
            buffer_size: 1_000_000,
            // One knob sizes both bulk transfers: migration segments and
            // replication-layer snapshot chunks.
            snapshot_chunk_bytes: self.config.chunk_bytes,
            lease_ticks: self.config.lease_ticks,
            lease_epsilon_ticks: self.config.lease_epsilon_ticks,
        }
    }

    /// This server's id.
    pub fn pid(&self) -> NodeId {
        self.config.pid
    }

    /// The current configuration id (0 while idle).
    pub fn config_id(&self) -> u32 {
        self.config_id
    }

    /// Current role in the system.
    pub fn role(&self) -> ServerRole {
        self.role
    }

    /// The decided service-layer log above the compaction point: entry `i`
    /// of the slice is service entry `log_start() + i`.
    pub fn log(&self) -> &[T] {
        &self.log
    }

    /// Absolute index of the first retained log entry (0 until the owner
    /// compacts via [`OmniPaxosServer::provide_snapshot`]).
    pub fn log_start(&self) -> u64 {
        self.log_start
    }

    /// Total decided service-log length, counting the compacted prefix.
    pub fn decided_len(&self) -> u64 {
        self.log_start + self.log.len() as u64
    }

    /// The state-machine snapshot superseding the compacted prefix, if any:
    /// `(idx, data)` where `data` reproduces the state after entries
    /// `[0, idx)`.
    pub fn snapshot(&self) -> Option<(u64, SnapshotData)> {
        self.snapshot.clone()
    }

    /// Compact the service log: `data` must be the owner's state-machine
    /// snapshot covering entries `[0, upto)`. The prefix below `upto` is
    /// dropped from the service log (joiners migrating it receive the
    /// snapshot instead), and the active replication instance compacts and
    /// checkpoints its own log up to the same point. Fails with
    /// [`TrimError`] if `upto` exceeds the decided length or does not
    /// advance the compaction point.
    pub fn provide_snapshot(&mut self, upto: u64, data: SnapshotData) -> Result<(), TrimError> {
        let len = self.decided_len();
        if upto > len {
            return Err(TrimError::BeyondDecided {
                decided_idx: len,
                requested: upto,
            });
        }
        if upto <= self.log_start {
            return Err(TrimError::AlreadyTrimmed {
                compacted_idx: self.log_start,
                requested: upto,
            });
        }
        // Compact the replication instance first so its validation (and its
        // durable checkpoint) runs before the service log forgets the
        // prefix; any error surfaces with nothing mutated.
        if let Some(active) = &mut self.active {
            if upto > active.base {
                let omni_idx = upto - active.base;
                if omni_idx > active.omni.compacted_idx() {
                    active.omni.compact(omni_idx, data.clone())?;
                }
            }
        }
        self.log.drain(..(upto - self.log_start) as usize);
        self.log_start = upto;
        self.polled_idx = self.polled_idx.max(upto);
        self.segment_cache.clear();
        self.snapshot = Some((upto, data));
        Ok(())
    }

    /// A snapshot adopted from a peer since the last call (snapshot-first
    /// migration, or a replication-layer transfer after this server's
    /// prefix was compacted away cluster-wide). The owner must restore its
    /// state machine from it before applying further
    /// [`OmniPaxosServer::poll_applied`] entries; those entries resume
    /// above the snapshot index.
    pub fn take_snapshot_event(&mut self) -> Option<(u64, SnapshotData)> {
        self.snapshot_event.take()
    }

    /// Entries applied since the last call (client notifications).
    pub fn poll_applied(&mut self) -> Vec<T> {
        let from = (self.polled_idx.max(self.log_start) - self.log_start) as usize;
        self.polled_idx = self.decided_len();
        self.log[from..].to_vec()
    }

    /// Absolute service-log index of the first entry the next
    /// [`OmniPaxosServer::poll_applied`] call will return. Jumps forward
    /// when a snapshot is adopted (the covered prefix is never delivered as
    /// entries); the chaos harness uses it to position drained entries in
    /// the cluster-wide decided history.
    pub fn applied_cursor(&self) -> u64 {
        self.polled_idx.max(self.log_start)
    }

    /// The active instance's ballot audit log (every ballot this server
    /// elected in its current BLE lifetime, strictly increasing under LE3).
    /// Empty while no configuration is active.
    pub fn ballot_audit(&self) -> &[Ballot] {
        self.active
            .as_ref()
            .map(|a| a.omni.ballot_audit())
            .unwrap_or(&[])
    }

    /// How many reconfigurations this server has completed.
    pub fn reconfigurations(&self) -> u32 {
        self.reconfigurations
    }

    /// Progress of an in-flight log migration, if one is running:
    /// `(target_len, have, snapshot_pull_pending)`. `None` while not
    /// migrating. For observability (metrics, the chaos harness debug dump).
    pub fn migration_status(&self) -> Option<(u64, u64, bool)> {
        self.migration.as_ref().map(|m| {
            (
                m.target_len,
                self.log_start + self.log.len() as u64,
                m.snap.is_some(),
            )
        })
    }

    /// Is this server the leader of the active configuration?
    pub fn is_leader(&self) -> bool {
        self.active.as_ref().is_some_and(|a| a.omni.is_leader())
    }

    /// The leader ballot of the active configuration, if known.
    pub fn leader(&self) -> Option<Ballot> {
        let b = self.active.as_ref()?.omni.leader();
        (b != Ballot::bottom()).then_some(b)
    }

    /// Members of the active configuration.
    pub fn nodes(&self) -> &[NodeId] {
        self.active
            .as_ref()
            .map(|a| a.nodes.as_slice())
            .unwrap_or(&[])
    }

    /// Propose a client command. While the configuration is switching the
    /// proposal is buffered and flushed as a batch into the next
    /// configuration (§7.3).
    pub fn propose(&mut self, entry: T) -> Result<(), ProposeErr> {
        match &mut self.active {
            Some(active) => match active.omni.append(entry.clone()) {
                Err(ProposeErr::PendingReconfig) => {
                    self.pending.push(entry);
                    Ok(())
                }
                other => other,
            },
            None => {
                self.pending.push(entry);
                Ok(())
            }
        }
    }

    /// Propose a whole batch of client commands as one contiguous append
    /// run. Entries are appended back to back with no message processing
    /// in between, so the next [`OmniPaxosServer::outgoing`] drain ships
    /// them as a single `AcceptDecide` per follower (sharing one batch
    /// allocation across the fan-out) and the storage layer group-commits
    /// them under one flush. Stops at the first hard error, reporting how
    /// many entries were accepted.
    pub fn propose_batch(
        &mut self,
        entries: impl IntoIterator<Item = T>,
    ) -> Result<usize, (usize, ProposeErr)> {
        let mut accepted = 0;
        for entry in entries {
            match self.propose(entry) {
                Ok(()) => accepted += 1,
                Err(e) => return Err((accepted, e)),
            }
        }
        Ok(accepted)
    }

    /// Propose replacing the membership with `new_nodes` (§6). Proposing
    /// the *same* membership is allowed: a new configuration with unchanged
    /// members is how in-place software upgrades roll out (§6.1).
    pub fn reconfigure(&mut self, new_nodes: Vec<NodeId>) -> Result<(), ProposeErr> {
        let active = self.active.as_mut().ok_or(ProposeErr::PendingReconfig)?;
        let ss = StopSign::new(self.config_id + 1, new_nodes);
        active.omni.reconfigure(ss)
    }

    /// Feed one incoming service-layer message.
    pub fn handle(&mut self, from: NodeId, msg: ServiceMsg<T>) {
        // Fail-stop: a server halted on a storage fault behaves like a
        // crashed process — it ignores every message (replication *and*
        // service-layer) until `fail_recovery` succeeds. Senders retransmit,
        // so dropping here is safe.
        if self.is_halted() {
            return;
        }
        match msg {
            ServiceMsg::Omni { config_id, msg } => {
                if let Some(active) = &mut self.active {
                    if config_id == self.config_id {
                        active.omni.handle_message(msg);
                        self.pump_active();
                    }
                }
                // Messages for other configurations are dropped: their
                // senders retransmit (heartbeats are periodic, Prepare is
                // re-sent) so no buffering is needed.
            }
            ServiceMsg::StartConfig {
                ss,
                old_nodes,
                log_len,
                snap_idx,
            } => self.handle_start_config(from, ss, old_nodes, log_len, snap_idx),
            ServiceMsg::ConfigStarted { config_id } => {
                self.notify_pending
                    .retain(|(pid, ss, _, _)| !(*pid == from && ss.config_id <= config_id));
            }
            ServiceMsg::SegmentReq { from: lo, to } => self.handle_segment_req(from, lo, to),
            ServiceMsg::SegmentResp {
                start,
                entries,
                served_to,
                requested_to,
            } => self.handle_segment_resp(from, start, entries, served_to, requested_to),
            ServiceMsg::SnapReq { offset } => self.handle_snap_req(from, offset),
            ServiceMsg::SnapResp {
                idx,
                offset,
                chunk,
                total,
            } => self.handle_snap_resp(from, idx, offset, chunk, total),
            // A single-group server is group 0: accept envelopes addressed
            // to it (a multi-group peer may envelope everything), drop the
            // rest — senders retransmit, exactly like the cross-config case.
            ServiceMsg::Group { group, msg } => {
                if group == 0 {
                    self.handle(from, *msg);
                }
            }
            ServiceMsg::GroupBle { beats } => {
                for (group, config_id, ble) in beats {
                    if group == 0 {
                        self.handle(
                            from,
                            ServiceMsg::Omni {
                                config_id,
                                msg: OmniMessage::Ble(ble),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Advance logical time by one tick.
    pub fn tick(&mut self) {
        if let Some(active) = &mut self.active {
            active.omni.tick();
        }
        self.pump_active();
        self.ticks_since_retry += 1;
        if self.ticks_since_retry >= self.config.retry_ticks {
            self.ticks_since_retry = 0;
            // A storage-halted server emits nothing, so queueing migration
            // or reconfiguration retries would only pile up messages to be
            // discarded; `fail_recovery` restarts the migration itself.
            if !self.is_halted() {
                self.retry_migration();
                self.retry_notifications();
            }
        }
    }

    /// Drain queued outgoing messages.
    pub fn outgoing(&mut self) -> Vec<(NodeId, ServiceMsg<T>)> {
        self.drain_omni();
        if self.is_halted() {
            // Fail-stop darkness extends to the service layer: segment
            // responses, stop-sign handover traffic, and notification
            // retries queued before (or while) the halt are dropped, same
            // as a crash losing its in-flight messages. Peers retransmit.
            self.outgoing.clear();
            return Vec::new();
        }
        std::mem::take(&mut self.outgoing)
    }

    /// Crash-recover this server: protocol state is rebuilt from the
    /// (simulated) persistent storage; the service-layer log survives.
    pub fn fail_recovery(&mut self) {
        self.outgoing.clear();
        if let Some(active) = &mut self.active {
            active.omni.fail_recovery();
        }
        // A migrating server restarts its migration from what it has.
        if self.migration.is_some() {
            self.retry_migration();
        }
    }

    /// Notify that the link to `pid` has been re-established (§4.1.3).
    pub fn reconnected(&mut self, pid: NodeId) {
        if let Some(active) = &mut self.active {
            active.omni.reconnected(pid);
        }
    }

    // ------------------------------------------------------------------
    // Linearizable local reads (leases + read index) — DESIGN.md §14
    // ------------------------------------------------------------------

    /// May this server serve a lease-protected local read right now? True
    /// only when it is the Accept-phase leader holding live lease grants
    /// from a majority AND its configuration is not ending: once the
    /// stop-sign is decided the next configuration may already be running
    /// elsewhere, so a lease must never span a reconfiguration boundary.
    /// (While the lease is valid, only its holder can have decided the
    /// stop-sign — no higher ballot can complete a Prepare phase at a
    /// majority — so checking our own decided stop-sign suffices.)
    ///
    /// Non-sticky: re-check per read or per admission batch, never cache.
    pub fn lease_valid(&self) -> bool {
        self.active.as_ref().is_some_and(|a| {
            !a.stopped && a.omni.decided_stopsign().is_none() && a.omni.lease_valid()
        })
    }

    /// The absolute service-log index a lease read must wait for: serve
    /// only once [`OmniPaxosServer::applied_cursor`] has reached it (and
    /// the owner has applied everything polled). `None` when this server
    /// is not an Accept-phase leader or its configuration is ending.
    pub fn read_barrier(&self) -> Option<u64> {
        let a = self.active.as_ref()?;
        if a.stopped || a.omni.decided_stopsign().is_some() {
            return None;
        }
        Some(a.base + a.omni.read_barrier()?)
    }

    /// Request a linearizable read index from any replica (the read-index
    /// protocol; no lease required). The confirmed grant arrives via
    /// [`OmniPaxosServer::take_read_grants`] as an absolute service-log
    /// index. Fire-and-forget: a leader change or reconfiguration in
    /// flight drops the request — the owner retries on a deadline (in the
    /// next configuration, if one started meanwhile).
    pub fn request_read_index(&mut self, token: u64) -> Result<(), ReadIndexErr> {
        let Some(a) = &mut self.active else {
            return Err(ReadIndexErr::NoLeader);
        };
        if a.stopped || a.omni.decided_stopsign().is_some() {
            return Err(ReadIndexErr::NoLeader);
        }
        a.omni.request_read_index(token)
    }

    /// Drain confirmed read-index grants: `(token, absolute_idx)` pairs.
    /// Grants die with their configuration's instance, so nothing here can
    /// refer to a superseded configuration's log positions.
    pub fn take_read_grants(&mut self) -> Vec<(u64, u64)> {
        let Some(a) = &mut self.active else {
            return Vec::new();
        };
        let base = a.base;
        a.omni
            .take_read_grants()
            .into_iter()
            .map(|(token, idx)| (token, base + idx))
            .collect()
    }

    /// Direct access to the active protocol instance (tests, invariants).
    pub fn omni(&mut self) -> Option<&mut OmniPaxos<T, S>> {
        self.active.as_mut().map(|a| &mut a.omni)
    }

    /// Is this server halted on a storage failure (fail-stop)? A halted
    /// server is indistinguishable from a crashed one: it ignores every
    /// incoming message and emits nothing — replication traffic *and*
    /// service-layer traffic (segment serving, migration/notification
    /// retries) — until [`OmniPaxosServer::fail_recovery`] succeeds.
    pub fn is_halted(&self) -> bool {
        self.active.as_ref().is_some_and(|a| a.omni.is_halted())
    }

    /// The storage failure the active instance halted on, if any.
    pub fn storage_error(&self) -> Option<StorageError> {
        self.active.as_ref().and_then(|a| a.omni.storage_error())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Apply newly decided entries of the active instance to the service
    /// log, and run the reconfiguration handover when a stop-sign decides.
    fn pump_active(&mut self) {
        // A snapshot installed by the replication layer (chunked transfer
        // from the leader after this follower's missing prefix was
        // compacted away) supersedes the service log below its index:
        // adopt it before applying entries, and skip the apply cursor past
        // it — the owner restores the state machine from the snapshot.
        let installed = self.active.as_mut().and_then(|a| {
            let (omni_idx, data) = a.omni.take_installed_snapshot()?;
            a.applied_idx = a.applied_idx.max(omni_idx);
            Some((a.base + omni_idx, data))
        });
        if let Some((abs, data)) = installed {
            self.adopt_snapshot(abs, data);
        }
        let Some(active) = &mut self.active else {
            return;
        };
        // Borrow the decided suffix in place (disjoint field borrows:
        // `active.omni` is read, `self.log` is extended) — applying a large
        // decided batch allocates nothing beyond the log's own growth.
        let log = &mut self.log;
        let decided = active.omni.decided_ref(active.applied_idx);
        if decided.is_empty() {
            return;
        }
        active.applied_idx += decided.len() as u64;
        let mut stopsign = None;
        log.reserve(decided.len());
        for entry in decided {
            match entry {
                LogEntry::Normal(t) => log.push(t.clone()),
                LogEntry::StopSign(ss) => stopsign = Some(ss.clone()),
            }
        }
        if let Some(ss) = stopsign {
            if !active.stopped {
                active.stopped = true;
                self.handover(*ss);
            }
        }
    }

    /// Adopt a peer's snapshot as the new service-log prefix: entries below
    /// `idx` are superseded, the owner is handed the snapshot to restore
    /// from, and applied/polled cursors jump past it.
    fn adopt_snapshot(&mut self, idx: u64, data: SnapshotData) {
        if idx <= self.log_start {
            return; // stale: already compacted at least this far
        }
        if idx >= self.decided_len() {
            self.log.clear();
        } else {
            self.log.drain(..(idx - self.log_start) as usize);
        }
        self.log_start = idx;
        self.polled_idx = self.polled_idx.max(idx);
        self.segment_cache.clear();
        self.snapshot = Some((idx, data.clone()));
        self.snapshot_event = Some((idx, data));
    }

    /// The stop-sign has been decided in the current configuration (§6):
    /// start the next configuration and notify new servers.
    fn handover(&mut self, ss: StopSign) {
        let old_nodes = self
            .active
            .as_ref()
            .map(|a| a.nodes.clone())
            .unwrap_or_default();
        let log_len = self.decided_len();
        // Notify every other server involved in the switch: new servers of
        // c_{i+1} missed the stop-sign entirely, and old servers may not
        // have seen it *decided* before this server tore c_i down (the
        // leader switches as soon as the stop-sign is chosen, so a lagging
        // follower can no longer learn it from the replication protocol).
        let mut targets: Vec<NodeId> = ss.next_nodes.clone();
        for &p in &old_nodes {
            if !targets.contains(&p) {
                targets.push(p);
            }
        }
        targets.retain(|&p| p != self.config.pid);
        for pid in targets {
            self.notify_pending
                .push((pid, ss.clone(), old_nodes.clone(), log_len));
            self.outgoing.push((
                pid,
                ServiceMsg::StartConfig {
                    ss: ss.clone(),
                    old_nodes: old_nodes.clone(),
                    log_len,
                    snap_idx: self.log_start,
                },
            ));
        }
        if ss.next_nodes.contains(&self.config.pid) {
            // We hold the complete log: start the next configuration
            // directly (§6).
            self.start_config(ss, log_len);
        } else {
            self.role = ServerRole::Retired;
            self.active = None;
        }
    }

    fn handle_start_config(
        &mut self,
        from: NodeId,
        ss: StopSign,
        old_nodes: Vec<NodeId>,
        log_len: u64,
        snap_idx: u64,
    ) {
        if self.config_id >= ss.config_id {
            // Already there (duplicate notification): just ack.
            self.outgoing.push((
                from,
                ServiceMsg::ConfigStarted {
                    config_id: self.config_id,
                },
            ));
            return;
        }
        if !ss.next_nodes.contains(&self.config.pid) {
            // We are being told our configuration ended and we are not part
            // of the next one: retire (keep donating segments).
            if self.config_id == ss.config_id - 1 {
                self.role = ServerRole::Retired;
                self.active = None;
                self.outgoing.push((
                    from,
                    ServiceMsg::ConfigStarted {
                        config_id: self.config_id,
                    },
                ));
            }
            return;
        }
        if self.migration.is_some() {
            // Already migrating this configuration. The notifier retries
            // `StartConfig` until we ack, and each retry carries its
            // *current* compaction point: if the donor compacted past what
            // we hold since the migration started, the entries we are
            // striping no longer exist anywhere as segments — upgrade the
            // in-flight migration with a snapshot pull or it deadlocks
            // (segment requests below the donor's `log_start` report a
            // shortfall forever).
            let have = self.decided_len();
            let needs_snap = self.migration.as_ref().is_some_and(|m| {
                m.ss.config_id == ss.config_id
                    && m.snap.is_none()
                    && snap_idx > have
                    && snap_idx > self.log_start
            });
            if needs_snap {
                self.outgoing
                    .push((from, ServiceMsg::SnapReq { offset: 0 }));
                if let Some(mig) = &mut self.migration {
                    mig.snap = Some(SnapPull {
                        donor: from,
                        idx: snap_idx,
                        total: 0,
                        buf: Vec::new(),
                    });
                    // Chunks below the snapshot are superseded.
                    mig.chunks
                        .retain(|&start, c| start + c.len() as u64 > snap_idx);
                }
                self.request_missing();
            }
            return;
        }
        if self.decided_len() >= log_len {
            // Nothing to migrate (fresh system or we somehow have it all).
            self.start_config(ss, log_len);
            self.ack_started(&old_nodes);
            return;
        }
        // Safety rule of §6: do not start BLE/Sequence Paxos until the
        // complete log has been fetched. A continuing-but-lagging old
        // server also takes this path for its missing suffix; its old
        // instance is stopped (c_i can decide nothing after the stop-sign).
        self.active = None;
        self.role = ServerRole::Migrating;
        let donors = match self.config.scheme {
            MigrationScheme::Parallel => old_nodes.clone(),
            MigrationScheme::LeaderOnly => vec![from],
        };
        // Snapshot-first catch-up (the tentpole of the snapshot subsystem):
        // if the notifier compacted past what we are missing, the prefix
        // below its `snap_idx` no longer exists as log entries anywhere we
        // can rely on — pull the state-machine snapshot from the notifier
        // while the tail above `snap_idx` is striped across the other
        // donors in parallel. The local log is only rewritten once the
        // snapshot actually arrives (a donor without one answers
        // `total == 0` and we fall back to full log migration).
        let snap = (snap_idx > self.decided_len() && snap_idx > self.log_start).then(|| {
            self.outgoing
                .push((from, ServiceMsg::SnapReq { offset: 0 }));
            SnapPull {
                donor: from,
                idx: snap_idx,
                total: 0,
                buf: Vec::new(),
            }
        });
        // The migration's end state is known up front: reserve the log once
        // instead of re-copying it through capacity doublings as chunks
        // fold in.
        let floor = snap.as_ref().map_or(self.decided_len(), |s| s.idx);
        self.log.reserve(log_len.saturating_sub(floor) as usize);
        self.migration = Some(MigrationState {
            ss,
            donors,
            target_len: log_len,
            chunks: BTreeMap::new(),
            next_donor: 0,
            assigned: HashMap::new(),
            last_progress: u64::MAX,
            snap,
        });
        self.request_missing();
    }

    /// Compute the ranges still missing, stripe them round-robin over the
    /// donors, and start one pull stream per donor. Striping spreads byte
    /// volume evenly even when entry sizes vary across the log.
    fn request_missing(&mut self) {
        let stripe = self.config.stripe_entries.max(1);
        let have = self.decided_len();
        let Some(mig) = &mut self.migration else {
            return;
        };
        let mut missing: Vec<(u64, u64)> = Vec::new();
        // Entries below an in-flight snapshot pull arrive as the snapshot,
        // not as log segments: stripe only the tail above it.
        let mut cursor = have.max(mig.snap.as_ref().map_or(0, |s| s.idx));
        for (&start, chunk) in &mig.chunks {
            let end = start + chunk.len() as u64;
            if start > cursor {
                missing.push((cursor, start));
            }
            cursor = cursor.max(end);
        }
        if cursor < mig.target_len {
            missing.push((cursor, mig.target_len));
        }
        if missing.is_empty() {
            return;
        }
        let n_donors = mig.donors.len().max(1);
        mig.assigned.clear();
        for (mut lo, hi) in missing {
            while lo < hi {
                let take = stripe.min(hi - lo);
                // Rotate the starting donor across sweeps so retries move
                // away from a dead donor.
                let donor = mig.donors[mig.next_donor % n_donors];
                mig.next_donor += 1;
                mig.assigned
                    .entry(donor)
                    .or_insert_with(VecDeque::new)
                    .push_back((lo, lo + take));
                lo += take;
            }
        }
        let firsts: Vec<(NodeId, u64, u64)> = mig
            .assigned
            .iter()
            .filter_map(|(&d, q)| q.front().map(|&(lo, hi)| (d, lo, hi)))
            .collect();
        for (donor, lo, hi) in firsts {
            self.outgoing
                .push((donor, ServiceMsg::SegmentReq { from: lo, to: hi }));
        }
    }

    fn handle_segment_req(&mut self, from: NodeId, lo: u64, to: u64) {
        // Serve what we have decided; decided entries cannot be retracted
        // (§6.1) so this is safe even mid-configuration. Only ONE chunk is
        // sent per request: the requester pulls the next chunk when this
        // one arrives, so the transfer is self-clocked at the path rate and
        // bulk migration cannot monopolize the donor's NIC (the flow
        // control a TCP stream would provide).
        let have = self.decided_len();
        let served_to = to.min(have);
        if lo < self.log_start || lo >= served_to {
            // Nothing to serve: the range is beyond what we have decided,
            // or below our compaction point (those entries only exist as
            // the snapshot now — the requester must pull that instead).
            // Report the shortfall immediately.
            self.outgoing.push((
                from,
                ServiceMsg::SegmentResp {
                    start: lo,
                    entries: Vec::new().into(),
                    served_to: lo.min(have),
                    requested_to: to,
                },
            ));
            return;
        }
        // Decided entries are immutable, so a chunk computed once can be
        // handed to every joiner asking for the same range (requests are
        // stripe-aligned, so concurrent joiners ask for identical ranges):
        // a hit skips both the byte-bounding scan and the copy, and the
        // response is a refcount bump. The hit is only valid if the cached
        // chunk does not overshoot what this request may be served
        // (`served_to` can be smaller if the requester asked for less).
        let entries = match self.segment_cache.get(&lo) {
            Some((cached_end, batch)) if *cached_end <= served_to => Arc::clone(batch),
            _ => {
                let mut end = lo;
                let mut bytes = 0usize;
                while end < served_to
                    && end - lo < self.config.chunk_entries
                    && bytes < self.config.chunk_bytes
                {
                    bytes += self.log[(end - self.log_start) as usize].size_bytes();
                    end += 1;
                }
                let batch: Arc<[T]> = self.log
                    [(lo - self.log_start) as usize..(end - self.log_start) as usize]
                    .into();
                if self.segment_cache.len() >= SEGMENT_CACHE_MAX {
                    self.segment_cache.clear();
                }
                self.segment_cache.insert(lo, (end, Arc::clone(&batch)));
                batch
            }
        };
        self.outgoing.push((
            from,
            ServiceMsg::SegmentResp {
                start: lo,
                entries,
                served_to,
                requested_to: to,
            },
        ));
    }

    fn handle_segment_resp(
        &mut self,
        from: NodeId,
        start: u64,
        entries: Arc<[T]>,
        _served_to: u64,
        requested_to: u64,
    ) {
        let log_start = self.log_start;
        let Some(mig) = &mut self.migration else {
            return;
        };
        let chunk_end = start + entries.len() as u64;
        let cursor = log_start + self.log.len() as u64;
        if !entries.is_empty() && chunk_end > cursor {
            if start <= cursor {
                // In-order arrival (the common case of a healthy donor
                // stream): fold directly, skipping the out-of-order map.
                self.log
                    .extend_from_slice(&entries[(cursor - start) as usize..]);
            } else {
                mig.chunks.insert(start, entries);
            }
        }
        if chunk_end > start && chunk_end < requested_to {
            // Pull the next chunk of this donor's current range.
            self.outgoing.push((
                from,
                ServiceMsg::SegmentReq {
                    from: chunk_end,
                    to: requested_to,
                },
            ));
        } else if chunk_end >= requested_to && requested_to > 0 {
            // Range complete: move to the donor's next assigned range.
            if let Some(queue) = mig.assigned.get_mut(&from) {
                if queue.front().is_some_and(|&(_, hi)| hi == requested_to) {
                    queue.pop_front();
                }
                if let Some(&(lo, hi)) = queue.front() {
                    self.outgoing
                        .push((from, ServiceMsg::SegmentReq { from: lo, to: hi }));
                }
            }
        }
        self.fold_chunks();
        self.maybe_finish_migration();
        // Shortfalls (served_to < requested_to) are re-planned by the
        // periodic retry, which recomputes all missing ranges.
    }

    /// Fold out-of-order chunks that have become contiguous with the log.
    fn fold_chunks(&mut self) {
        let Some(mig) = &mut self.migration else {
            return;
        };
        loop {
            let cursor = self.log_start + self.log.len() as u64;
            let Some((&start, _)) = mig.chunks.range(..=cursor).next_back() else {
                break;
            };
            let chunk = mig.chunks.remove(&start).expect("key exists");
            let end = start + chunk.len() as u64;
            if end <= cursor {
                continue; // fully duplicate (or superseded by a snapshot)
            }
            let skip = (cursor - start) as usize;
            self.log.extend_from_slice(&chunk[skip..]);
        }
    }

    /// Start the configuration once the log is complete: both the snapshot
    /// (if one is being pulled) and every entry up to the target length
    /// must have arrived.
    fn maybe_finish_migration(&mut self) {
        let done = self.migration.as_ref().is_some_and(|mig| {
            mig.snap.is_none() && self.log_start + self.log.len() as u64 >= mig.target_len
        });
        if done {
            let mig = self.migration.take().expect("checked above");
            let donors = mig.donors.clone();
            let base = mig.target_len;
            self.start_config(mig.ss, base);
            self.ack_started(&donors);
        }
    }

    /// Donor side of the snapshot transfer: serve one bounded chunk of our
    /// snapshot from `offset`; the requester pulls the next chunk when this
    /// one arrives (self-clocked, like segment migration).
    fn handle_snap_req(&mut self, from: NodeId, offset: u64) {
        let Some((idx, data)) = &self.snapshot else {
            // No snapshot here: tell the requester to fall back to full
            // log migration.
            self.outgoing.push((
                from,
                ServiceMsg::SnapResp {
                    idx: 0,
                    offset,
                    chunk: Vec::new().into(),
                    total: 0,
                },
            ));
            return;
        };
        let total = data.len() as u64;
        let lo = offset.min(total);
        let hi = total.min(lo + self.config.chunk_bytes as u64);
        let chunk: Arc<[u8]> = data[lo as usize..hi as usize].into();
        self.outgoing.push((
            from,
            ServiceMsg::SnapResp {
                idx: *idx,
                offset: lo,
                chunk,
                total,
            },
        ));
    }

    /// Joiner side of the snapshot transfer.
    fn handle_snap_resp(
        &mut self,
        from: NodeId,
        idx: u64,
        offset: u64,
        chunk: Arc<[u8]>,
        total: u64,
    ) {
        let Some(mig) = &mut self.migration else {
            return;
        };
        let Some(snap) = &mut mig.snap else {
            return;
        };
        if snap.donor != from {
            return;
        }
        if total == 0 {
            // The donor has no snapshot after all: fall back to migrating
            // the full missing range as log segments.
            mig.snap = None;
            self.request_missing();
            return;
        }
        if idx != snap.idx {
            // The donor compacted further while we were pulling: its
            // snapshot now covers more of the log. Restart the pull at the
            // new index and re-plan the tail stripes (fetched segments
            // below the new index are dropped when folding).
            snap.idx = idx;
            snap.total = total;
            snap.buf.clear();
            self.outgoing
                .push((from, ServiceMsg::SnapReq { offset: 0 }));
            self.request_missing();
            return;
        }
        snap.total = total;
        if offset == snap.buf.len() as u64 && !chunk.is_empty() {
            snap.buf.extend_from_slice(&chunk);
        }
        if (snap.buf.len() as u64) < total {
            let next = snap.buf.len() as u64;
            self.outgoing
                .push((from, ServiceMsg::SnapReq { offset: next }));
            return;
        }
        // Complete: adopt it as the service-log prefix, hand it to the
        // owner to restore from, and fold any tail chunks that became
        // contiguous with the new start.
        let data: SnapshotData = std::mem::take(&mut snap.buf).into();
        let snap_idx = snap.idx;
        mig.snap = None;
        self.adopt_snapshot(snap_idx, data);
        self.fold_chunks();
        self.maybe_finish_migration();
    }

    fn ack_started(&mut self, peers: &[NodeId]) {
        for &pid in peers {
            if pid != self.config.pid {
                self.outgoing.push((
                    pid,
                    ServiceMsg::ConfigStarted {
                        config_id: self.config_id,
                    },
                ));
            }
        }
    }

    /// Start the protocol components of configuration `ss.config_id` (§6).
    ///
    /// `base` is the absolute service-log index where the new
    /// configuration's log begins — the total length of the old
    /// configuration's log. It must come from the stop-sign handover, not
    /// from `self.decided_len()`: a joiner that caught up via
    /// snapshot-first catch-up may hold a snapshot extending *past* the
    /// boundary (the donor had compacted into the new configuration's
    /// entries), in which case its decided length already includes a
    /// prefix of the new instance's log. That prefix is recorded in
    /// `applied_idx` so it is not delivered a second time at shifted
    /// positions.
    fn start_config(&mut self, ss: StopSign, base: u64) {
        debug_assert!(ss.next_nodes.contains(&self.config.pid));
        self.config_id = ss.config_id;
        self.role = ServerRole::Active;
        self.migration = None;
        let omni_config = self.omni_config(ss.config_id, ss.next_nodes.clone());
        let mut omni = OmniPaxos::new(omni_config, (self.make_storage)(ss.config_id));
        // Flush proposals buffered during the switch as one batch (§7.3).
        for entry in std::mem::take(&mut self.pending) {
            let _ = omni.append(entry);
        }
        self.active = Some(ActiveConfig {
            nodes: ss.next_nodes,
            omni,
            applied_idx: self.decided_len().saturating_sub(base),
            base,
            stopped: false,
        });
        self.reconfigurations += 1;
    }

    fn retry_migration(&mut self) {
        let progress = self.decided_len()
            + self.migration.as_ref().map_or(0, |m| {
                m.chunks.len() as u64 + m.snap.as_ref().map_or(0, |s| s.buf.len() as u64)
            });
        let Some(mig) = &mut self.migration else {
            return;
        };
        let stalled = mig.last_progress == progress;
        mig.last_progress = progress;
        if stalled {
            // Nothing arrived since the last sweep: a donor died or a
            // request was lost — re-plan the missing ranges and resume the
            // snapshot pull from where it stopped.
            if let Some(snap) = &mig.snap {
                let (donor, offset) = (snap.donor, snap.buf.len() as u64);
                self.outgoing.push((donor, ServiceMsg::SnapReq { offset }));
            }
            self.request_missing();
        }
    }

    fn retry_notifications(&mut self) {
        let pending = self.notify_pending.clone();
        let snap_idx = self.log_start;
        for (pid, ss, old_nodes, log_len) in pending {
            self.outgoing.push((
                pid,
                ServiceMsg::StartConfig {
                    ss,
                    old_nodes,
                    log_len,
                    snap_idx,
                },
            ));
        }
    }

    fn drain_omni(&mut self) {
        let config_id = self.config_id;
        if let Some(active) = &mut self.active {
            for msg in active.omni.outgoing_messages() {
                let to = msg.to();
                self.outgoing
                    .push((to, ServiceMsg::Omni { config_id, msg }));
            }
        }
    }
}

impl<T: Entry, S: Storage<T>> std::fmt::Debug for OmniPaxosServer<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmniPaxosServer")
            .field("pid", &self.config.pid)
            .field("config_id", &self.config_id)
            .field("role", &self.role)
            .field("log_len", &self.log.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(pid: NodeId) -> OmniPaxosServer<u64> {
        OmniPaxosServer::new(ServerConfig::with(pid), vec![1, 2, 3])
    }

    #[test]
    fn initial_server_is_active_in_config_one() {
        let s = server(1);
        assert_eq!(s.config_id(), 1);
        assert_eq!(s.role(), ServerRole::Active);
        assert_eq!(s.nodes(), &[1, 2, 3]);
    }

    #[test]
    fn joiner_is_idle_and_buffers_proposals() {
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(9));
        assert_eq!(j.role(), ServerRole::Idle);
        assert_eq!(j.config_id(), 0);
        // Proposals while idle are parked, not lost or errored.
        j.propose(5).expect("buffered");
        assert!(j.log().is_empty());
    }

    #[test]
    fn start_config_not_addressed_to_us_is_ignored_by_joiner() {
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(9));
        j.handle(
            1,
            ServiceMsg::StartConfig {
                ss: StopSign::new(2, vec![4, 5, 6]),
                old_nodes: vec![1, 2, 3],
                log_len: 10,
                snap_idx: 0,
            },
        );
        assert_eq!(j.role(), ServerRole::Idle, "not in next_nodes: ignore");
    }

    #[test]
    fn start_config_with_empty_history_starts_immediately() {
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(4));
        j.handle(
            1,
            ServiceMsg::StartConfig {
                ss: StopSign::new(2, vec![1, 2, 4]),
                old_nodes: vec![1, 2, 3],
                log_len: 0,
                snap_idx: 0,
            },
        );
        assert_eq!(j.role(), ServerRole::Active);
        assert_eq!(j.config_id(), 2);
        // It also acked the donors so they stop re-notifying.
        let acks: Vec<NodeId> = j
            .outgoing()
            .into_iter()
            .filter(|(_, m)| matches!(m, ServiceMsg::ConfigStarted { .. }))
            .map(|(to, _)| to)
            .collect();
        assert!(acks.contains(&1));
    }

    #[test]
    fn start_config_with_history_enters_migration_and_requests_stripes() {
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(4));
        j.handle(
            2,
            ServiceMsg::StartConfig {
                ss: StopSign::new(2, vec![1, 2, 4]),
                old_nodes: vec![1, 2, 3],
                log_len: 100,
                snap_idx: 0,
            },
        );
        assert_eq!(j.role(), ServerRole::Migrating);
        let reqs: Vec<(NodeId, u64, u64)> = j
            .outgoing()
            .into_iter()
            .filter_map(|(to, m)| match m {
                ServiceMsg::SegmentReq { from, to: hi } => Some((to, from, hi)),
                _ => None,
            })
            .collect();
        assert!(!reqs.is_empty(), "must request the missing history");
        // Ranges jointly start at 0.
        assert!(reqs.iter().any(|&(_, lo, _)| lo == 0));
    }

    #[test]
    fn duplicate_start_config_is_acked_not_restarted() {
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(4));
        let ss = StopSign::new(2, vec![1, 2, 4]);
        j.handle(
            1,
            ServiceMsg::StartConfig {
                ss: ss.clone(),
                old_nodes: vec![1, 2, 3],
                log_len: 0,
                snap_idx: 0,
            },
        );
        assert_eq!(j.config_id(), 2);
        let _ = j.outgoing();
        j.handle(
            3,
            ServiceMsg::StartConfig {
                ss,
                old_nodes: vec![1, 2, 3],
                log_len: 0,
                snap_idx: 0,
            },
        );
        assert_eq!(j.config_id(), 2, "no restart");
        let out = j.outgoing();
        assert!(
            out.iter()
                .any(|(to, m)| *to == 3 && matches!(m, ServiceMsg::ConfigStarted { .. })),
            "duplicate notifier gets an ack: {out:?}"
        );
    }

    #[test]
    fn segment_req_serves_one_bounded_chunk() {
        let mut cfg = ServerConfig::with(1);
        cfg.chunk_entries = 4;
        let mut s = OmniPaxosServer::with_storage(
            cfg,
            vec![1, 2, 3],
            crate::storage::MemoryStorage::with_decided_log((0..20u64).collect()),
        );
        s.tick(); // absorb the pre-loaded history into the service log
        let _ = s.outgoing();
        s.handle(9, ServiceMsg::SegmentReq { from: 0, to: 20 });
        let resps: Vec<(u64, usize, u64)> = s
            .outgoing()
            .into_iter()
            .filter_map(|(_, m)| match m {
                ServiceMsg::SegmentResp {
                    start,
                    entries,
                    served_to,
                    ..
                } => Some((start, entries.len(), served_to)),
                _ => None,
            })
            .collect();
        assert_eq!(resps.len(), 1, "one chunk per request (pull streaming)");
        assert_eq!(resps[0], (0, 4, 20), "chunk bounded by chunk_entries");
    }

    #[test]
    fn segment_req_beyond_decided_reports_shortfall() {
        let mut s = server(1);
        s.handle(9, ServiceMsg::SegmentReq { from: 5, to: 10 });
        let out = s.outgoing();
        let resp = out
            .iter()
            .find_map(|(_, m)| match m {
                ServiceMsg::SegmentResp {
                    entries, served_to, ..
                } => Some((entries.len(), *served_to)),
                _ => None,
            })
            .expect("shortfall response");
        assert_eq!(resp, (0, 0), "nothing served, shortfall reported");
    }

    #[test]
    fn reconfigure_requires_an_active_configuration() {
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(4));
        assert!(j.reconfigure(vec![4, 5, 6]).is_err());
    }

    #[test]
    fn service_msg_sizes_scale_with_content() {
        let small: ServiceMsg<u64> = ServiceMsg::SegmentReq { from: 0, to: 10 };
        let big: ServiceMsg<u64> = ServiceMsg::SegmentResp {
            start: 0,
            entries: vec![1; 100].into(),
            served_to: 100,
            requested_to: 100,
        };
        assert!(big.size_bytes() > small.size_bytes() + 700);
        let sc: ServiceMsg<u64> = ServiceMsg::StartConfig {
            ss: StopSign::new(2, vec![1, 2, 3]),
            old_nodes: vec![1, 2, 3],
            log_len: 10,
            snap_idx: 0,
        };
        assert!(sc.size_bytes() > 32);
    }

    /// A donor of configuration 1 with entries `0..20` applied and the
    /// prefix below 15 compacted into a snapshot.
    fn compacted_donor(pid: NodeId) -> (OmniPaxosServer<u64>, SnapshotData) {
        let mut s = OmniPaxosServer::with_storage(
            ServerConfig::with(pid),
            vec![1, 2, 3],
            crate::storage::MemoryStorage::with_decided_log((0..20u64).collect()),
        );
        s.tick(); // absorb the pre-loaded history into the service log
        let _ = s.outgoing();
        let snap: SnapshotData = vec![0xAB; 64].into();
        s.provide_snapshot(15, snap.clone()).expect("compact");
        (s, snap)
    }

    #[test]
    fn provide_snapshot_compacts_log_and_replication_instance() {
        let (mut s, snap) = compacted_donor(1);
        assert_eq!(s.log_start(), 15);
        assert_eq!(s.decided_len(), 20);
        assert_eq!(s.log(), &[15, 16, 17, 18, 19]);
        assert_eq!(s.snapshot(), Some((15, snap.clone())));
        assert_eq!(s.omni().unwrap().compacted_idx(), 15);
        // Errors surface instead of silently trimming.
        assert_eq!(
            s.provide_snapshot(25, snap.clone()),
            Err(TrimError::BeyondDecided {
                decided_idx: 20,
                requested: 25
            })
        );
        assert_eq!(
            s.provide_snapshot(10, snap),
            Err(TrimError::AlreadyTrimmed {
                compacted_idx: 15,
                requested: 10
            })
        );
    }

    #[test]
    fn segment_req_below_the_compaction_point_reports_shortfall() {
        let (mut s, _) = compacted_donor(1);
        s.handle(9, ServiceMsg::SegmentReq { from: 5, to: 20 });
        let out = s.outgoing();
        let resp = out
            .iter()
            .find_map(|(_, m)| match m {
                ServiceMsg::SegmentResp {
                    entries, served_to, ..
                } => Some((entries.len(), *served_to)),
                _ => None,
            })
            .expect("shortfall response");
        assert_eq!(resp, (0, 5), "compacted prefix is not served as entries");
    }

    #[test]
    fn snap_req_serves_the_snapshot_in_bounded_chunks() {
        let (mut s, snap) = compacted_donor(1);
        s.handle(9, ServiceMsg::SnapReq { offset: 0 });
        let out = s.outgoing();
        let (idx, offset, chunk, total) = out
            .iter()
            .find_map(|(to, m)| match m {
                ServiceMsg::SnapResp {
                    idx,
                    offset,
                    chunk,
                    total,
                } if *to == 9 => Some((*idx, *offset, chunk.clone(), *total)),
                _ => None,
            })
            .expect("snapshot chunk");
        assert_eq!((idx, offset, total), (15, 0, 64));
        assert_eq!(chunk[..], snap[..]);
    }

    #[test]
    fn snap_req_without_a_snapshot_signals_fallback() {
        let mut s = server(1);
        s.handle(9, ServiceMsg::SnapReq { offset: 0 });
        let out = s.outgoing();
        assert!(
            out.iter()
                .any(|(to, m)| *to == 9 && matches!(m, ServiceMsg::SnapResp { total: 0, .. })),
            "no snapshot: fallback signal: {out:?}"
        );
    }

    #[test]
    fn joiner_migrates_snapshot_first_with_parallel_tail() {
        let (mut donor, snap) = compacted_donor(1);
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(4));
        j.handle(
            1,
            ServiceMsg::StartConfig {
                ss: StopSign::new(2, vec![1, 2, 4]),
                old_nodes: vec![1, 2, 3],
                log_len: 20,
                snap_idx: 15,
            },
        );
        assert_eq!(j.role(), ServerRole::Migrating);
        let out = j.outgoing();
        // The snapshot is pulled from the notifier...
        assert!(
            out.iter()
                .any(|(to, m)| *to == 1 && matches!(m, ServiceMsg::SnapReq { offset: 0 })),
            "snapshot requested from the notifier: {out:?}"
        );
        // ...while the tail above the snapshot is requested as segments (in
        // parallel, from the donor set).
        let seg_reqs: Vec<(NodeId, u64, u64)> = out
            .iter()
            .filter_map(|(to, m)| match m {
                ServiceMsg::SegmentReq { from, to: hi } => Some((*to, *from, *hi)),
                _ => None,
            })
            .collect();
        assert_eq!(seg_reqs.iter().map(|&(_, lo, _)| lo).min(), Some(15));
        assert!(seg_reqs.iter().all(|&(_, lo, _)| lo >= 15));
        // Deliver the tail segment FIRST (out of order w.r.t. the
        // snapshot): it must be buffered, not applied at position 0.
        let (seg_donor, lo, hi) = seg_reqs[0];
        donor.handle(4, ServiceMsg::SegmentReq { from: lo, to: hi });
        let seg_resp = donor
            .outgoing()
            .into_iter()
            .find_map(|(to, m)| (to == 4).then_some(m))
            .expect("segment response");
        assert_eq!(seg_donor, 1, "single-donor test setup");
        j.handle(1, seg_resp);
        assert_eq!(j.role(), ServerRole::Migrating, "snapshot still missing");
        // Now the snapshot chunk arrives and completes the migration.
        donor.handle(4, ServiceMsg::SnapReq { offset: 0 });
        let snap_resp = donor
            .outgoing()
            .into_iter()
            .find_map(|(to, m)| (to == 4 && matches!(m, ServiceMsg::SnapResp { .. })).then_some(m))
            .expect("snapshot response");
        j.handle(1, snap_resp);
        assert_eq!(j.role(), ServerRole::Active);
        assert_eq!(j.config_id(), 2);
        assert_eq!(j.log_start(), 15);
        assert_eq!(j.decided_len(), 20);
        assert_eq!(j.log(), &[15, 16, 17, 18, 19]);
        assert_eq!(
            j.take_snapshot_event(),
            Some((15, snap)),
            "owner is handed the snapshot to restore from"
        );
    }

    #[test]
    fn joiner_falls_back_to_log_migration_when_donor_lost_its_snapshot() {
        let mut j: OmniPaxosServer<u64> = OmniPaxosServer::new_joiner(ServerConfig::with(4));
        j.handle(
            1,
            ServiceMsg::StartConfig {
                ss: StopSign::new(2, vec![1, 2, 4]),
                old_nodes: vec![1, 2, 3],
                log_len: 20,
                snap_idx: 15,
            },
        );
        let _ = j.outgoing();
        // The supposed snapshot donor answers `total == 0`: re-plan the
        // whole range as log segments.
        j.handle(
            1,
            ServiceMsg::SnapResp {
                idx: 0,
                offset: 0,
                chunk: Vec::new().into(),
                total: 0,
            },
        );
        let reqs: Vec<u64> = j
            .outgoing()
            .into_iter()
            .filter_map(|(_, m)| match m {
                ServiceMsg::SegmentReq { from, .. } => Some(from),
                _ => None,
            })
            .collect();
        assert_eq!(
            reqs.iter().min(),
            Some(&0),
            "full range re-planned: {reqs:?}"
        );
    }
}
