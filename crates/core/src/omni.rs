//! The combined Omni-Paxos node of one configuration: a [`SequencePaxos`]
//! replica plus its accompanying [`BallotLeaderElection`] (Fig. 2).
//!
//! The two components run concurrently and in isolation (§3): BLE elects a
//! quorum-connected ballot and its output is fed into Sequence Paxos as a
//! leader event; nothing else is shared. [`OmniPaxos`] is the glue that
//! multiplexes their messages and timers behind one interface.

use crate::ballot::{Ballot, NodeId};
use crate::ble::{BallotLeaderElection, BleConfig};
use crate::messages::{BleMessage, Message, PaxosMsg};
use crate::sequence_paxos::{
    Phase, ProposeErr, ReadIndexErr, Role, SequencePaxos, SequencePaxosConfig,
};
use crate::snapshot::SnapshotData;
use crate::storage::{Storage, StorageError, TrimError};
use crate::util::{Entry, LogEntry, StopSign};

/// A message of either component, addressed between servers.
#[derive(Debug, Clone, PartialEq)]
pub enum OmniMessage<T> {
    Paxos(Message<T>),
    Ble(BleMessage),
}

impl<T: Entry> OmniMessage<T> {
    /// The destination server.
    pub fn to(&self) -> NodeId {
        match self {
            OmniMessage::Paxos(m) => m.to,
            OmniMessage::Ble(m) => m.to,
        }
    }

    /// The source server.
    pub fn from(&self) -> NodeId {
        match self {
            OmniMessage::Paxos(m) => m.from,
            OmniMessage::Ble(m) => m.from,
        }
    }

    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            OmniMessage::Paxos(m) => m.size_bytes(),
            OmniMessage::Ble(m) => m.msg.size_bytes(),
        }
    }
}

impl<T> OmniMessage<T> {
    /// Stable wire discriminant (append-only; forward-compatibility rules
    /// in [`crate::messages::PaxosMsg`] docs).
    pub const fn discriminant(&self) -> u8 {
        match self {
            OmniMessage::Paxos(_) => 0,
            OmniMessage::Ble(_) => 1,
        }
    }
}

/// Configuration of an [`OmniPaxos`] node.
#[derive(Debug, Clone)]
pub struct OmniPaxosConfig {
    /// Configuration (log segment) id.
    pub config_id: u32,
    /// This server.
    pub pid: NodeId,
    /// All servers of the configuration (including `pid`).
    pub nodes: Vec<NodeId>,
    /// Ticks per BLE heartbeat round; one tick is the owner's timer
    /// granularity. The paper's election timeout corresponds to
    /// `hb_timeout_ticks` × tick-interval.
    pub hb_timeout_ticks: u64,
    /// Ticks between retransmission sweeps (lost `Prepare`s etc.).
    pub resend_ticks: u64,
    /// Ballot priority for tie-breaking (§8).
    pub priority: u64,
    /// Stamp takeover ballots with connectivity so better-connected
    /// candidates win ties (§8's proposed optimization).
    pub connectivity_priority: bool,
    /// Proposal buffer size while no leader is known.
    pub buffer_size: usize,
    /// Max bytes per chunk of a snapshot transfer to a lagging follower.
    pub snapshot_chunk_bytes: usize,
    /// Leader-lease duration in ticks; `0` disables leases entirely (the
    /// default). When enabled, followers piggyback lease grants on BLE
    /// heartbeat replies and the leader may serve linearizable reads
    /// locally while a majority of grants is live (see DESIGN.md §14).
    pub lease_ticks: u64,
    /// Clock-skew safety margin subtracted from the leader's view of each
    /// grant: the leader stops serving lease reads `lease_epsilon_ticks`
    /// before the follower's suppression window can possibly end. Must
    /// cover the worst-case tick-rate drift between any two servers over
    /// one lease duration.
    pub lease_epsilon_ticks: u64,
}

impl OmniPaxosConfig {
    /// Sensible defaults: 5-tick heartbeat rounds, resend every 50 ticks.
    pub fn with(config_id: u32, pid: NodeId, nodes: Vec<NodeId>) -> Self {
        OmniPaxosConfig {
            config_id,
            pid,
            nodes,
            hb_timeout_ticks: 5,
            resend_ticks: 50,
            priority: 0,
            connectivity_priority: false,
            buffer_size: 1_000_000,
            snapshot_chunk_bytes: 256 * 1024,
            lease_ticks: 0,
            lease_epsilon_ticks: 0,
        }
    }
}

/// One Omni-Paxos node: Sequence Paxos + BLE for a single configuration.
pub struct OmniPaxos<T: Entry, S: Storage<T>> {
    sp: SequencePaxos<T, S>,
    ble: BallotLeaderElection,
    config: OmniPaxosConfig,
    ticks_since_resend: u64,
    /// Ticks spent in the Recover phase (see `tick` for the viability
    /// timeout).
    recover_ticks: u64,
    /// Audit log of every ballot this node elected, in election order — the
    /// observation hook behind the chaos harness's LE3 check (elected
    /// ballots must increase strictly within one BLE lifetime). Volatile:
    /// cleared on [`OmniPaxos::fail_recovery`], like the BLE state it
    /// observes.
    ballot_audit: Vec<Ballot>,
}

impl<T: Entry, S: Storage<T>> OmniPaxos<T, S> {
    /// Create a node from its configuration and (possibly pre-existing)
    /// storage.
    pub fn new(config: OmniPaxosConfig, storage: S) -> Self {
        let mut sp_config = SequencePaxosConfig::with(config.config_id, config.pid, &config.nodes);
        sp_config.buffer_size = config.buffer_size;
        sp_config.snapshot_chunk_bytes = config.snapshot_chunk_bytes;
        let mut ble_config = BleConfig::with(config.pid, &config.nodes, config.hb_timeout_ticks);
        ble_config.priority = config.priority;
        ble_config.connectivity_priority = config.connectivity_priority;
        ble_config.lease_ticks = config.lease_ticks;
        ble_config.lease_epsilon_ticks = config.lease_epsilon_ticks;
        OmniPaxos {
            sp: SequencePaxos::new(sp_config, storage),
            ble: BallotLeaderElection::new(ble_config),
            config,
            ticks_since_resend: 0,
            recover_ticks: 0,
            ballot_audit: Vec::new(),
        }
    }

    /// This server's id.
    pub fn pid(&self) -> NodeId {
        self.config.pid
    }

    /// The configuration id.
    pub fn config_id(&self) -> u32 {
        self.config.config_id
    }

    /// Propose a client command.
    pub fn append(&mut self, entry: T) -> Result<(), ProposeErr> {
        self.sp.append(entry)
    }

    /// Propose a reconfiguration (stop-sign).
    pub fn reconfigure(&mut self, ss: StopSign) -> Result<(), ProposeErr> {
        self.sp.reconfigure(ss)
    }

    /// Advance logical time by one tick: drives BLE rounds and periodic
    /// retransmission. Call at a fixed interval.
    pub fn tick(&mut self) {
        // A halted replica looks crashed to the cluster: no heartbeats, no
        // elections, no retransmissions. BLE must go quiet too — heartbeat
        // replies from a node that can no longer persist anything would
        // keep electing it.
        if self.sp.halted().is_some() {
            return;
        }
        // A replica that is still resynchronizing after a crash should not
        // be a leader candidate: if the current leader is healthy it will
        // re-sync us shortly, and candidacy would only churn leadership.
        // But if *no* leader above our persisted promise exists (e.g. the
        // high-ballot servers all crashed), waiting would deadlock — so
        // viability times out and the recovering server competes with its
        // above-promise ballot; winning is safe because the Prepare phase
        // synchronizes the leader's log (§5.2).
        if self.sp.state().1 == Phase::Recover {
            self.recover_ticks += 1;
            let patience = self.config.hb_timeout_ticks * 4;
            self.ble.set_viable(self.recover_ticks > patience);
        } else {
            self.recover_ticks = 0;
            self.ble.set_viable(true);
        }
        if let Some(elected) = self.ble.tick() {
            self.ballot_audit.push(elected);
            self.sp.handle_leader(elected);
        }
        self.ticks_since_resend += 1;
        if self.ticks_since_resend >= self.config.resend_ticks {
            self.ticks_since_resend = 0;
            self.sp.resend_timeout();
        }
    }

    /// Feed one incoming message. Dropped entirely while halted.
    ///
    /// When leases are enabled, this is also the *prepare gate*: BLE elects
    /// by quorum connectivity alone (no votes), so a partitioned candidate
    /// can be elected while some follower's lease grant to the old leader
    /// is still live. Election suppression in BLE is not enough — the
    /// candidate only becomes dangerous once a majority *promises* its
    /// ballot. So a follower holding an active grant refuses to promise any
    /// higher ballot other than the grantee's own: the `Prepare` is dropped
    /// here, indistinguishable from message loss, and the candidate's
    /// `resend_timeout` re-delivers it once the grant has expired.
    pub fn handle_message(&mut self, msg: OmniMessage<T>) {
        if self.sp.halted().is_some() {
            return;
        }
        match msg {
            OmniMessage::Paxos(m) => {
                if let PaxosMsg::Prepare(ref p) = m.msg {
                    if self.ble.grant_blocks(p.n, self.sp.promised()) {
                        return;
                    }
                }
                self.sp.handle_message(m)
            }
            OmniMessage::Ble(m) => self.ble.handle_message(m),
        }
    }

    /// Drain all queued outgoing messages of both components. The drain is
    /// the group-commit point: if the flush inside it fails, the node halts
    /// and *nothing* leaves — including BLE heartbeats queued earlier, which
    /// would otherwise advertise a replica that can no longer persist.
    pub fn outgoing_messages(&mut self) -> Vec<OmniMessage<T>> {
        let sp_out = self.sp.outgoing_messages();
        if self.sp.halted().is_some() {
            let _ = self.ble.outgoing_messages();
            return Vec::new();
        }
        let mut out: Vec<OmniMessage<T>> = sp_out.into_iter().map(OmniMessage::Paxos).collect();
        out.extend(
            self.ble
                .outgoing_messages()
                .into_iter()
                .map(OmniMessage::Ble),
        );
        out
    }

    /// Index up to which the log is decided.
    pub fn decided_idx(&self) -> u64 {
        self.sp.decided_idx()
    }

    /// Read decided entries from `from`.
    pub fn read_decided(&self, from: u64) -> Vec<LogEntry<T>> {
        self.sp.read_decided(from)
    }

    /// Borrow decided entries from `from` without copying. The hot path for
    /// applying decided entries: callers iterate the slice in place.
    pub fn decided_ref(&self, from: u64) -> &[LogEntry<T>] {
        self.sp.decided_ref(from)
    }

    /// Absolute log length (accepted, not necessarily decided).
    pub fn log_len(&self) -> u64 {
        self.sp.log_len()
    }

    /// Index below which the log has been compacted away (snapshot/trim).
    pub fn compacted_idx(&self) -> u64 {
        self.sp.compacted_idx()
    }

    /// Compact the log at `idx` in one safe operation: record `data` as the
    /// state-machine snapshot covering `[0, idx)`, trim the superseded
    /// prefix, and checkpoint durable storage so recovery restarts from the
    /// snapshot plus the log tail. Fails with [`TrimError`] if `idx` exceeds
    /// the decided index or does not advance the compaction frontier.
    pub fn compact(&mut self, idx: u64, data: SnapshotData) -> Result<(), TrimError> {
        self.sp.compact(idx, data)
    }

    /// Take the snapshot this replica installed from a leader transfer (or
    /// Prepare-phase sync) since the last call. The owner must restore its
    /// state machine from it before applying entries above the snapshot
    /// index.
    pub fn take_installed_snapshot(&mut self) -> Option<(u64, SnapshotData)> {
        self.sp.take_installed_snapshot()
    }

    /// The ballot this node believes is the current leader.
    pub fn leader(&self) -> Ballot {
        self.sp.leader()
    }

    /// Is this node the elected leader in the Accept phase? A halted node
    /// never is — it cannot persist, so it cannot lead.
    pub fn is_leader(&self) -> bool {
        self.sp.halted().is_none()
            && (self.sp.state() == (Role::Leader, Phase::Accept)
                || self.sp.state() == (Role::Leader, Phase::Prepare))
    }

    /// `(role, phase)` of the replication component.
    pub fn state(&self) -> (Role, Phase) {
        self.sp.state()
    }

    /// Was this node quorum-connected at the end of the last BLE round?
    pub fn is_quorum_connected(&self) -> bool {
        self.ble.is_quorum_connected()
    }

    /// Is this node halted on a storage failure (fail-stop)? A halted node
    /// accepts and emits nothing until [`OmniPaxos::fail_recovery`]
    /// succeeds.
    pub fn is_halted(&self) -> bool {
        self.sp.halted().is_some()
    }

    /// The storage failure this node halted on, if any.
    pub fn storage_error(&self) -> Option<StorageError> {
        self.sp.halted()
    }

    /// The decided stop-sign, if this configuration is finished.
    pub fn decided_stopsign(&self) -> Option<StopSign> {
        self.sp.decided_stopsign()
    }

    /// Recover after a crash: volatile protocol state is rebuilt from
    /// storage and peers are asked for the current leader (§4.1.3). The
    /// fresh BLE instance starts with its election floor at the persisted
    /// promise: a healthy leader at that ballot keeps leading undisturbed,
    /// while anything lower is treated as lost leadership and taken over
    /// with a higher ballot — so a stale pre-crash ballot can neither
    /// masquerade as the current leader nor block re-election.
    pub fn fail_recovery(&mut self) {
        self.sp.fail_recovery();
        if self.sp.halted().is_some() {
            // Storage could not re-establish a durable view; the node stays
            // down (fail-stop) and BLE state is left untouched.
            return;
        }
        let promise = self.sp.promised();
        let mut ble_config = BleConfig::with(
            self.config.pid,
            &self.config.nodes,
            self.config.hb_timeout_ticks,
        );
        ble_config.priority = self.config.priority;
        ble_config.connectivity_priority = self.config.connectivity_priority;
        ble_config.initial_leader = promise;
        ble_config.lease_ticks = self.config.lease_ticks;
        ble_config.lease_epsilon_ticks = self.config.lease_epsilon_ticks;
        if self.config.lease_ticks > 0 && promise.pid == self.config.pid {
            // We crashed while we were the promised leader. A crash brief
            // enough to fit inside our followers' lease grants is invisible
            // to them — their grants keep renewing off our heartbeats, the
            // grant-postponed takeover never fires, and no other server
            // will ever Prepare us out of the Recover phase (we ARE the
            // leader they follow). Recovery must therefore be a
            // self-takeover: compete above our own promise. The holdoff
            // below still silences promises to anyone else, and a promise
            // pid of our own proves any pre-crash grant we issued was to
            // ourselves, so outbidding it betrays no other grantee.
            ble_config.initial_n = promise.n + 1;
            ble_config.initial_leader = Ballot::bottom();
        }
        // Grant memory is volatile, but an outstanding grant is a *promise
        // of silence* to its grantee: after a crash the node must assume it
        // had granted a lease moments before and sit out one full lease
        // window (promising only the persisted-promise ballot, which a live
        // grant would have permitted anyway) before promising anything
        // higher. Without this holdoff, crash + instant restart would let a
        // candidate steal a majority while the old leader still reads.
        ble_config.initial_grant_holdoff_ticks = self.config.lease_ticks;
        self.ble = BallotLeaderElection::new(ble_config);
        self.ticks_since_resend = 0;
        self.recover_ticks = 0;
        // The audit observes one BLE lifetime; the fresh instance starts a
        // new (empty) history, so a post-recovery election that re-learns a
        // pre-crash leader is not misread as a monotonicity violation.
        self.ballot_audit.clear();
    }

    /// Notify that the session to `pid` was re-established (§4.1.3).
    pub fn reconnected(&mut self, pid: NodeId) {
        self.sp.reconnected(pid);
    }

    // ------------------------------------------------------------------
    // Linearizable local reads (leases + read index) — DESIGN.md §14
    // ------------------------------------------------------------------

    /// May this node serve a linearizable read from its local state machine
    /// *right now*, without any message round? True only when it is the
    /// leader in the Accept phase AND holds live lease grants from a
    /// majority — which guarantees (via the prepare gate) that no higher
    /// ballot can have completed a Prepare phase at a majority, so no write
    /// this node has not seen can have committed. The caller must still
    /// wait for its applied index to reach [`OmniPaxos::read_barrier`].
    ///
    /// The answer is instantaneous and non-sticky: re-check per read (or
    /// per admission batch), never cache across ticks.
    pub fn lease_valid(&self) -> bool {
        self.sp.halted().is_none()
            && self.sp.state() == (Role::Leader, Phase::Accept)
            && self.ble.lease_valid(self.sp.leader())
    }

    /// The log index a lease-protected local read must wait for before
    /// serving (see [`SequencePaxos::read_barrier`]). `None` when this node
    /// is not an Accept-phase leader.
    pub fn read_barrier(&self) -> Option<u64> {
        self.sp.read_barrier()
    }

    /// Request a linearizable read index via the read-index protocol
    /// (works on any replica, no lease required). The confirmed
    /// `(token, idx)` grant arrives via [`OmniPaxos::take_read_grants`];
    /// the owner then waits for local apply to reach `idx` and serves from
    /// its own state machine. Fire-and-forget across leader changes — the
    /// owner retries on a deadline.
    pub fn request_read_index(&mut self, token: u64) -> Result<(), ReadIndexErr> {
        self.sp.request_read_index(token)
    }

    /// Drain confirmed read-index grants for reads this node requested.
    pub fn take_read_grants(&mut self) -> Vec<(u64, u64)> {
        self.sp.take_read_grants()
    }

    /// Access the replication component (for tests and invariants).
    pub fn sequence_paxos(&mut self) -> &mut SequencePaxos<T, S> {
        &mut self.sp
    }

    /// Access the election component (for tests and invariants).
    pub fn ble(&mut self) -> &mut BallotLeaderElection {
        &mut self.ble
    }

    /// Every ballot this node elected since creation (or since the last
    /// [`OmniPaxos::fail_recovery`]), in election order. LE3 requires the
    /// sequence to be strictly increasing; the chaos harness asserts exactly
    /// that after every step.
    pub fn ballot_audit(&self) -> &[Ballot] {
        &self.ballot_audit
    }
}

impl<T: Entry, S: Storage<T>> std::fmt::Debug for OmniPaxos<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmniPaxos")
            .field("pid", &self.config.pid)
            .field("config_id", &self.config.config_id)
            .field("sp", &self.sp)
            .field("ble_leader", &self.ble.leader())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;

    type Node = OmniPaxos<u64, MemoryStorage<u64>>;

    fn cluster(n: usize) -> Vec<Node> {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        nodes
            .iter()
            .map(|&pid| {
                OmniPaxos::new(
                    OmniPaxosConfig::with(1, pid, nodes.clone()),
                    MemoryStorage::new(),
                )
            })
            .collect()
    }

    fn settle(nodes: &mut [Node], rounds: usize) {
        for _ in 0..rounds {
            for i in 0..nodes.len() {
                nodes[i].tick();
                for m in nodes[i].outgoing_messages() {
                    let to = m.to() as usize - 1;
                    nodes[to].handle_message(m);
                }
            }
        }
    }

    #[test]
    fn ticks_drive_election_and_replication() {
        let mut nodes = cluster(3);
        settle(&mut nodes, 40);
        let leaders: Vec<NodeId> = nodes
            .iter()
            .filter(|n| n.is_leader())
            .map(|n| n.pid())
            .collect();
        assert_eq!(leaders.len(), 1);
        // The highest pid wins the first election (max initial ballot).
        assert_eq!(leaders[0], 3);
        let li = 2;
        nodes[li].append(9).unwrap();
        settle(&mut nodes, 40);
        for n in &nodes {
            assert_eq!(n.read_decided(0), vec![LogEntry::Normal(9)]);
        }
    }

    #[test]
    fn recovered_node_rejoins_without_stealing_leadership() {
        let mut nodes = cluster(3);
        settle(&mut nodes, 40);
        let leader_ballot = nodes[0].leader();
        // A *follower* crash-recovers while the leader stays healthy: it
        // must re-sync without a leader change (viability gating).
        nodes[0].fail_recovery();
        settle(&mut nodes, 60);
        assert_eq!(nodes[0].state().1, Phase::Accept, "resynced");
        assert_eq!(
            nodes[2].leader(),
            leader_ballot,
            "no leadership churn on follower recovery"
        );
    }

    #[test]
    fn recovery_viability_times_out_when_no_leader_exists() {
        // Everyone crashes: promises exceed every live ballot, so only the
        // viability timeout can restore the cluster.
        let mut nodes = cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        nodes[li].append(1).unwrap();
        settle(&mut nodes, 40);
        for n in nodes.iter_mut() {
            n.fail_recovery();
        }
        settle(&mut nodes, 200);
        let leader = nodes.iter().position(|n| n.is_leader());
        assert!(leader.is_some(), "a leader re-emerges: {nodes:?}");
        let li = leader.unwrap();
        nodes[li].append(2).unwrap();
        settle(&mut nodes, 60);
        for n in &nodes {
            assert_eq!(
                n.read_decided(0),
                vec![LogEntry::Normal(1), LogEntry::Normal(2)],
                "decided history survives a full-cluster restart"
            );
        }
    }

    #[test]
    fn quorum_connectivity_flag_is_exposed() {
        let mut nodes = cluster(3);
        settle(&mut nodes, 40);
        assert!(nodes.iter_mut().all(|n| n.is_quorum_connected()));
        // A node ticked in isolation loses quorum connectivity.
        let mut lone = OmniPaxos::<u64, MemoryStorage<u64>>::new(
            OmniPaxosConfig::with(1, 1, vec![1, 2, 3]),
            MemoryStorage::new(),
        );
        for _ in 0..20 {
            lone.tick();
            let _ = lone.outgoing_messages();
        }
        assert!(!lone.is_quorum_connected());
    }

    #[test]
    fn compact_trims_checkpoints_and_surfaces_trim_errors() {
        use crate::storage::TrimError;
        let mut nodes = cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=5 {
            nodes[li].append(v).unwrap();
        }
        settle(&mut nodes, 40);
        let snap: crate::snapshot::SnapshotData = vec![7u8; 4].into();
        nodes[li].compact(3, snap.clone()).unwrap();
        assert_eq!(nodes[li].compacted_idx(), 3);
        assert_eq!(
            nodes[li].read_decided(3),
            vec![LogEntry::Normal(4), LogEntry::Normal(5)]
        );
        assert_eq!(
            nodes[li].compact(99, snap.clone()),
            Err(TrimError::BeyondDecided {
                decided_idx: 5,
                requested: 99
            })
        );
        assert_eq!(
            nodes[li].compact(2, snap),
            Err(TrimError::AlreadyTrimmed {
                compacted_idx: 3,
                requested: 2
            })
        );
    }

    #[test]
    fn halted_node_goes_dark_until_recovery() {
        use crate::faults::{FaultyStorage, StorageFaultKind};
        type FaultyNode = OmniPaxos<u64, FaultyStorage<u64, MemoryStorage<u64>>>;
        let nodes_ids: Vec<NodeId> = vec![1, 2, 3];
        let mut nodes: Vec<FaultyNode> = nodes_ids
            .iter()
            .map(|&pid| {
                OmniPaxos::new(
                    OmniPaxosConfig::with(1, pid, nodes_ids.clone()),
                    FaultyStorage::new(MemoryStorage::new()),
                )
            })
            .collect();
        let settle = |nodes: &mut Vec<FaultyNode>, rounds: usize| {
            for _ in 0..rounds {
                for i in 0..nodes.len() {
                    nodes[i].tick();
                    for m in nodes[i].outgoing_messages() {
                        let to = m.to() as usize - 1;
                        nodes[to].handle_message(m);
                    }
                }
            }
        };
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        nodes[li].append(1).unwrap();
        settle(&mut nodes, 40);
        // A follower's disk starts failing fsync: it halts at its next
        // group-commit and goes completely dark.
        let fi = (li + 1) % 3;
        nodes[fi]
            .sequence_paxos()
            .storage()
            .arm(StorageFaultKind::SyncFailed);
        nodes[fi].append(2).ok(); // forwarded proposal forces a flush
        settle(&mut nodes, 10);
        assert!(nodes[fi].is_halted());
        assert!(nodes[fi].outgoing_messages().is_empty());
        // The rest of the cluster keeps deciding without it.
        nodes[li].append(3).unwrap();
        settle(&mut nodes, 40);
        assert!(nodes[li].decided_idx() >= 2);
        // Recovery re-syncs the halted node through the crash path.
        nodes[fi].fail_recovery();
        assert!(!nodes[fi].is_halted());
        settle(&mut nodes, 80);
        assert_eq!(nodes[fi].read_decided(0), nodes[li].read_decided(0));
    }

    fn lease_cluster(n: usize) -> Vec<Node> {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        nodes
            .iter()
            .map(|&pid| {
                let mut config = OmniPaxosConfig::with(1, pid, nodes.clone());
                config.lease_ticks = 20;
                config.lease_epsilon_ticks = 2;
                OmniPaxos::new(config, MemoryStorage::new())
            })
            .collect()
    }

    #[test]
    fn lease_holder_serves_local_reads_and_followers_do_not() {
        let mut nodes = lease_cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        assert!(nodes[li].lease_valid(), "heartbeat acks grant the lease");
        assert!(nodes[li].read_barrier().is_some());
        for (i, n) in nodes.iter().enumerate() {
            if i != li {
                assert!(!n.lease_valid(), "only the leader holds the lease");
                assert!(n.read_barrier().is_none());
            }
        }
    }

    #[test]
    fn isolated_leader_lease_expires() {
        let mut nodes = lease_cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        assert!(nodes[li].lease_valid());
        // The leader is cut off: it keeps ticking but no heartbeat replies
        // arrive, so its grants age out within one lease duration even
        // though it still believes it is the leader.
        for _ in 0..40 {
            nodes[li].tick();
            let _ = nodes[li].outgoing_messages();
        }
        assert!(nodes[li].is_leader(), "still leader in its own view");
        assert!(
            !nodes[li].lease_valid(),
            "an isolated leader must stop serving local reads"
        );
    }

    #[test]
    fn lease_dies_on_fail_recovery() {
        let mut nodes = lease_cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        assert!(nodes[li].lease_valid());
        nodes[li].fail_recovery();
        assert!(!nodes[li].lease_valid(), "grants are volatile");
        assert!(nodes[li].read_barrier().is_none());
    }

    #[test]
    fn read_index_grants_follow_the_commit_index() {
        let mut nodes = lease_cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        nodes[li].append(7).unwrap();
        nodes[li].append(8).unwrap();
        settle(&mut nodes, 40);
        let decided = nodes[li].decided_idx();
        assert_eq!(decided, 2);
        // A follower asks for a read index: one round later it holds a
        // grant at (at least) the leader's commit index.
        let fi = (li + 1) % 3;
        nodes[fi].request_read_index(42).unwrap();
        settle(&mut nodes, 10);
        let grants = nodes[fi].take_read_grants();
        assert_eq!(grants, vec![(42, decided)]);
        // The leader-local path works too, without any message round
        // needed to confirm (its own ack counts toward the majority, but a
        // 3-node majority still needs one follower ack).
        nodes[li].request_read_index(43).unwrap();
        settle(&mut nodes, 10);
        assert_eq!(nodes[li].take_read_grants(), vec![(43, decided)]);
    }

    #[test]
    fn live_grant_blocks_higher_prepare_until_expiry() {
        use crate::messages::{PaxosMsg, Prepare};
        let mut nodes = lease_cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        let fi = (li + 1) % 3;
        let promised_before = nodes[fi].sequence_paxos().promised();
        // BLE elects with no votes, so a quorum-connected candidate can
        // start a higher round while this follower's grant to the current
        // leader is live. The prepare gate must drop its Prepare.
        let high = Ballot::new(promised_before.n + 10, 0, (fi as u64 + 1) % 3 + 1);
        let prep = Prepare {
            n: high,
            decided_idx: 0,
            accepted_rnd: Ballot::bottom(),
            log_idx: 0,
        };
        nodes[fi].handle_message(OmniMessage::Paxos(Message::with(
            high.pid,
            fi as NodeId + 1,
            PaxosMsg::Prepare(prep.clone()),
        )));
        assert_eq!(
            nodes[fi].sequence_paxos().promised(),
            promised_before,
            "an active grant refuses to promise a higher ballot"
        );
        // Once the grant expires (no refresh for a full lease window), the
        // same Prepare goes through.
        for _ in 0..40 {
            nodes[fi].tick();
            let _ = nodes[fi].outgoing_messages();
        }
        nodes[fi].handle_message(OmniMessage::Paxos(Message::with(
            high.pid,
            fi as NodeId + 1,
            PaxosMsg::Prepare(prep),
        )));
        assert_eq!(
            nodes[fi].sequence_paxos().promised(),
            high,
            "an expired grant no longer blocks"
        );
    }

    #[test]
    fn deposed_but_connected_leader_refuses_local_lease_reads() {
        use crate::messages::{PaxosMsg, Prepare};
        let mut nodes = lease_cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        assert!(nodes[li].lease_valid());
        // A higher ballot's Prepare reaches the leader itself. The old
        // leader stays quorum-connected and its leader-side grant
        // bookkeeping still holds unexpired anchors from the last
        // heartbeat round — but the instant it promises the successor it
        // is deposed, and serving a local read off those anchors could
        // miss the successor's commits.
        let promised = nodes[li].sequence_paxos().promised();
        let high = Ballot::new(promised.n + 10, 0, (li as u64 + 1) % 3 + 1);
        let prep = Prepare {
            n: high,
            decided_idx: 0,
            accepted_rnd: Ballot::bottom(),
            log_idx: 0,
        };
        nodes[li].handle_message(OmniMessage::Paxos(Message::with(
            high.pid,
            li as NodeId + 1,
            PaxosMsg::Prepare(prep),
        )));
        assert!(!nodes[li].is_leader(), "a promised higher ballot deposes");
        assert!(
            !nodes[li].lease_valid(),
            "a deposed leader must refuse local lease reads"
        );
        assert!(nodes[li].read_barrier().is_none());
    }

    #[test]
    fn recovered_node_holds_off_promising_above_its_promise() {
        use crate::messages::{PaxosMsg, Prepare};
        let mut nodes = lease_cluster(3);
        settle(&mut nodes, 40);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        let fi = (li + 1) % 3;
        // Crash + instant restart: grant memory is gone, but the follower
        // may have granted a lease moments before the crash — it must sit
        // out one full lease window before promising anything higher.
        nodes[fi].fail_recovery();
        let promised = nodes[fi].sequence_paxos().promised();
        let high = Ballot::new(promised.n + 10, 0, (fi as u64 + 1) % 3 + 1);
        let prep = Prepare {
            n: high,
            decided_idx: 0,
            accepted_rnd: Ballot::bottom(),
            log_idx: 0,
        };
        nodes[fi].handle_message(OmniMessage::Paxos(Message::with(
            high.pid,
            fi as NodeId + 1,
            PaxosMsg::Prepare(prep.clone()),
        )));
        assert_eq!(
            nodes[fi].sequence_paxos().promised(),
            promised,
            "the recovery holdoff blocks higher ballots"
        );
        // Re-promising the persisted-promise ballot itself stays allowed
        // (a live grant to that leader would have permitted it anyway), so
        // a healthy leader re-syncs the recovering follower immediately.
        for _ in 0..40 {
            nodes[fi].tick();
            let _ = nodes[fi].outgoing_messages();
        }
        nodes[fi].handle_message(OmniMessage::Paxos(Message::with(
            high.pid,
            fi as NodeId + 1,
            PaxosMsg::Prepare(prep),
        )));
        assert_eq!(
            nodes[fi].sequence_paxos().promised(),
            high,
            "the holdoff expires after one lease window"
        );
    }

    #[test]
    fn message_metadata_is_consistent() {
        let mut nodes = cluster(3);
        nodes[0].tick();
        for m in nodes[0].outgoing_messages() {
            assert_eq!(m.from(), 1);
            assert!(m.to() >= 2 && m.to() <= 3);
            assert!(m.size_bytes() >= 32);
        }
    }
}
