//! Log storage abstraction and the in-memory reference implementation.
//!
//! The paper assumes the fail-recovery model (§3): state written to
//! non-volatile storage survives crashes. A [`Storage`] holds everything a
//! Sequence Paxos replica must persist — the promised round, the accepted
//! round, the decided index and the log itself — so that
//! `SequencePaxos::fail_recovery` can rebuild a correct replica from it.
//!
//! Storage is **fallible**: disks run out of space, fsync fails, writes
//! tear. Every mutating operation returns a [`StorageError`] on failure,
//! and the replica reacts fail-stop (never ack what did not persist; see
//! `SequencePaxos` and the never-ack-after-failed-flush rule). After an
//! error the implementation must be *poisoned*: buffered-but-unsynced
//! state is in an unknown condition on disk, so further mutations keep
//! failing until [`Storage::recover`] re-establishes a consistent durable
//! state — the fsyncgate lesson (retrying fsync and acking anyway loses
//! acknowledged data).
//!
//! The log stores [`LogEntry`] values: either a client command or the
//! *stop-sign* that ends a configuration (§6). Storage additionally supports
//! **trimming** (compaction): a decided prefix that has been applied and,
//! where relevant, migrated, can be discarded while absolute log indices
//! remain stable.

use crate::ballot::Ballot;
use crate::snapshot::{SnapshotData, SnapshotRef};
use crate::util::{Entry, LogEntry};
use std::sync::Arc;

/// A reference-counted, immutable batch of log entries.
///
/// This is the unit of zero-copy replication: the leader materializes a
/// suffix once and fans it out to every follower (and every retransmission)
/// by bumping a refcount instead of deep-copying the entries.
pub type EntryBatch<T> = Arc<[LogEntry<T>]>;

/// The storage operation that failed (for diagnostics; the reaction is the
/// same for all of them: halt, never ack, recover via the crash path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageOp {
    Append,
    SetPromise,
    SetAcceptedRound,
    SetDecidedIdx,
    Flush,
    Trim,
    Snapshot,
    Checkpoint,
    Recover,
}

/// A storage-layer I/O failure.
///
/// Deliberately `Copy` and shallow: it carries the failed operation and the
/// OS error class, which is everything the protocol layer may act on. The
/// full `std::io::Error` (message, raw os error) stays at the storage
/// implementation for logging; the replica only needs to know *that*
/// persistence failed, because the only safe reaction is fail-stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageError {
    /// Which operation failed.
    pub op: StorageOp,
    /// OS error class (`WriteZero` for short writes, `StorageFull` is not
    /// stable, so ENOSPC maps to `Other`/`QuotaExceeded` per platform —
    /// callers must not dispatch on the kind for correctness).
    pub kind: std::io::ErrorKind,
}

impl StorageError {
    /// Build an error for `op` from an underlying I/O error.
    pub fn io(op: StorageOp, e: &std::io::Error) -> Self {
        StorageError { op, kind: e.kind() }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage {:?} failed: {:?}", self.op, self.kind)
    }
}

impl std::error::Error for StorageError {}

/// Error returned by [`Storage::trim`] and [`Storage::set_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrimError {
    /// Tried to trim beyond the decided index; undecided entries may still
    /// be overwritten by a future leader and must be kept.
    BeyondDecided { decided_idx: u64, requested: u64 },
    /// Tried to trim below the already-compacted index.
    AlreadyTrimmed { compacted_idx: u64, requested: u64 },
    /// The trim was valid but persisting it failed; the storage is poisoned
    /// and the replica must halt (fail-stop) and recover.
    Storage(StorageError),
}

impl From<StorageError> for TrimError {
    fn from(e: StorageError) -> Self {
        TrimError::Storage(e)
    }
}

impl std::fmt::Display for TrimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrimError::BeyondDecided {
                decided_idx,
                requested,
            } => write!(
                f,
                "cannot trim to {requested}: only {decided_idx} entries are decided"
            ),
            TrimError::AlreadyTrimmed {
                compacted_idx,
                requested,
            } => write!(
                f,
                "cannot trim to {requested}: already compacted to {compacted_idx}"
            ),
            TrimError::Storage(e) => write!(f, "trim failed to persist: {e}"),
        }
    }
}

impl std::error::Error for TrimError {}

/// Persistent state of one Sequence Paxos replica.
///
/// All indices are *absolute*: they keep counting across trims. `get_entries`
/// and `get_suffix` panic if asked for compacted entries — callers are
/// responsible for never needing entries below the decided index of every
/// peer before trimming (the service layer enforces this).
///
/// # Failure contract
///
/// Mutating operations return `Err(StorageError)` when the mutation could
/// not be made recoverable. After any error the implementation is poisoned:
/// it must keep failing every further mutation (state on disk is unknown)
/// until [`Storage::recover`] rebuilds a consistent durable state — at
/// which point the *unsynced tail is gone*, exactly as if the process had
/// crashed. The replica pairs this with fail-stop behaviour: it never
/// acknowledges state that did not flush, and re-enters via the crash
/// recovery path (`fail_recovery`, paper §4.1.3).
pub trait Storage<T: Entry> {
    /// Append one entry; returns the new log length (absolute).
    fn append_entry(&mut self, entry: LogEntry<T>) -> Result<u64, StorageError>;

    /// Append many entries; returns the new log length (absolute).
    fn append_entries(&mut self, entries: Vec<LogEntry<T>>) -> Result<u64, StorageError>;

    /// Truncate the log to `from_idx` (absolute) and append `entries` there.
    /// Used by log synchronization (`AcceptSync`, §4.1.1) where a follower's
    /// non-chosen suffix may be overwritten. Returns the new log length.
    fn append_on_prefix(
        &mut self,
        from_idx: u64,
        entries: Vec<LogEntry<T>>,
    ) -> Result<u64, StorageError>;

    /// Persist the highest promised round.
    fn set_promise(&mut self, b: Ballot) -> Result<(), StorageError>;

    /// The highest promised round ([`Ballot::bottom`] initially).
    fn get_promise(&self) -> Ballot;

    /// Persist the round in which entries were last accepted.
    fn set_accepted_round(&mut self, b: Ballot) -> Result<(), StorageError>;

    /// The round in which entries were last accepted.
    fn get_accepted_round(&self) -> Ballot;

    /// Persist the decided index.
    fn set_decided_idx(&mut self, idx: u64) -> Result<(), StorageError>;

    /// Index up to which the log is decided (exclusive).
    fn get_decided_idx(&self) -> u64;

    /// Borrowed view of the entries in `[from, to)` (absolute indices,
    /// `to` clamped to the log length). Panics if the range reaches into
    /// the compacted prefix. This is the primitive read: every other read
    /// method is a wrapper that copies out of it.
    fn entries_ref(&self, from: u64, to: u64) -> &[LogEntry<T>];

    /// Entries in `[from, to)` as an owned `Vec` (thin wrapper over
    /// [`Storage::entries_ref`]).
    fn get_entries(&self, from: u64, to: u64) -> Vec<LogEntry<T>> {
        self.entries_ref(from, to).to_vec()
    }

    /// Entries in `[from, log_len)`.
    fn get_suffix(&self, from: u64) -> Vec<LogEntry<T>> {
        self.get_entries(from, self.get_log_len())
    }

    /// Entries in `[from, log_len)` as a shared batch: one allocation,
    /// arbitrarily many cheap clones. The default copies out of
    /// [`Storage::entries_ref`]; implementations that already hold shared
    /// batches may return them directly.
    fn shared_suffix(&self, from: u64) -> EntryBatch<T> {
        self.entries_ref(from, self.get_log_len()).into()
    }

    /// Make every mutation issued so far durable. Called by the replica
    /// right before a batch of outgoing messages is released (group
    /// commit): acknowledgements must not leave the server ahead of the
    /// state they acknowledge. On `Err` the caller MUST NOT release those
    /// messages — the state they acknowledge may not exist after a crash —
    /// and the storage is poisoned until [`Storage::recover`]. In-memory
    /// implementations need not do anything.
    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Absolute length of the log, including the compacted prefix.
    fn get_log_len(&self) -> u64;

    /// Index below which entries have been compacted away.
    fn get_compacted_idx(&self) -> u64;

    /// Discard entries below `idx` (absolute). Only decided entries may be
    /// trimmed.
    fn trim(&mut self, idx: u64) -> Result<(), TrimError>;

    /// Record a snapshot covering `[0, idx)` and trim the prefix it
    /// supersedes, as one operation. The snapshot replaces the trimmed
    /// entries as the recoverable representation of that prefix, so the
    /// same safety rules as [`Storage::trim`] apply: `idx` must not exceed
    /// the decided index and must not fall below an older compaction
    /// point. On success the log keeps only `[idx, log_len)` and
    /// [`Storage::get_snapshot`] returns the new record.
    fn set_snapshot(&mut self, idx: u64, data: SnapshotData) -> Result<(), TrimError>;

    /// Install a snapshot received from a peer, discarding the local log
    /// entirely: after this call the log is empty, `compacted_idx ==
    /// decided_idx == idx`, and the snapshot record is `data`. Volatile
    /// promise state is kept (the caller persists the accepted round of
    /// the leader that shipped the snapshot). Used by the follower side of
    /// the chunked snapshot transfer, where the local log is strictly
    /// older than the snapshot.
    fn install_snapshot(&mut self, idx: u64, data: SnapshotData) -> Result<(), StorageError>;

    /// The most recent snapshot record, if any.
    fn get_snapshot(&self) -> Option<SnapshotRef>;

    /// Rewrite persistent state into its most compact durable form (for a
    /// WAL: one checkpoint record — embedding the latest snapshot — plus
    /// the live tail). In-memory implementations need not do anything.
    fn checkpoint(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Re-establish a consistent durable state after an error (or a
    /// simulated crash): drop whatever was buffered but never synced, clear
    /// the poison, and reload from the last durable state — the storage
    /// half of the crash-recovery path. In-memory implementations (where
    /// every mutation is instantly "durable") need not do anything.
    fn recover(&mut self) -> Result<(), StorageError> {
        Ok(())
    }
}

/// The in-memory reference [`Storage`].
///
/// "Persistence" here means surviving a *simulated* crash: the harness keeps
/// the `MemoryStorage` alive across `fail_recovery`, mirroring how a real
/// deployment would reload the on-disk state. Memory never fails, so every
/// operation returns `Ok`; fault injection lives in
/// [`crate::faults::FaultyStorage`], which wraps any storage (this one
/// included) with seed-driven failpoints.
#[derive(Debug, Clone)]
pub struct MemoryStorage<T: Entry> {
    log: Vec<LogEntry<T>>,
    compacted_idx: u64,
    promise: Ballot,
    accepted_round: Ballot,
    decided_idx: u64,
    snapshot: Option<SnapshotRef>,
}

impl<T: Entry> Default for MemoryStorage<T> {
    fn default() -> Self {
        MemoryStorage {
            log: Vec::new(),
            compacted_idx: 0,
            promise: Ballot::bottom(),
            accepted_round: Ballot::bottom(),
            decided_idx: 0,
            snapshot: None,
        }
    }
}

impl<T: Entry> MemoryStorage<T> {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Storage pre-loaded with decided entries — used by experiments that
    /// start from a long history (§7.3 initializes 5 million entries).
    pub fn with_decided_log(entries: Vec<T>) -> Self {
        let log: Vec<LogEntry<T>> = entries.into_iter().map(LogEntry::Normal).collect();
        let decided_idx = log.len() as u64;
        MemoryStorage {
            log,
            compacted_idx: 0,
            promise: Ballot::bottom(),
            accepted_round: Ballot::bottom(),
            decided_idx,
            snapshot: None,
        }
    }

    fn rel(&self, abs: u64) -> usize {
        assert!(
            abs >= self.compacted_idx,
            "index {abs} reaches into compacted prefix (compacted to {})",
            self.compacted_idx
        );
        (abs - self.compacted_idx) as usize
    }
}

impl<T: Entry> Storage<T> for MemoryStorage<T> {
    fn append_entry(&mut self, entry: LogEntry<T>) -> Result<u64, StorageError> {
        self.log.push(entry);
        Ok(self.get_log_len())
    }

    fn append_entries(&mut self, mut entries: Vec<LogEntry<T>>) -> Result<u64, StorageError> {
        self.log.append(&mut entries);
        Ok(self.get_log_len())
    }

    fn append_on_prefix(
        &mut self,
        from_idx: u64,
        entries: Vec<LogEntry<T>>,
    ) -> Result<u64, StorageError> {
        let rel = self.rel(from_idx);
        self.log.truncate(rel);
        self.append_entries(entries)
    }

    fn set_promise(&mut self, b: Ballot) -> Result<(), StorageError> {
        self.promise = b;
        Ok(())
    }

    fn get_promise(&self) -> Ballot {
        self.promise
    }

    fn set_accepted_round(&mut self, b: Ballot) -> Result<(), StorageError> {
        self.accepted_round = b;
        Ok(())
    }

    fn get_accepted_round(&self) -> Ballot {
        self.accepted_round
    }

    fn set_decided_idx(&mut self, idx: u64) -> Result<(), StorageError> {
        self.decided_idx = idx;
        Ok(())
    }

    fn get_decided_idx(&self) -> u64 {
        self.decided_idx
    }

    fn entries_ref(&self, from: u64, to: u64) -> &[LogEntry<T>] {
        let to = to.min(self.get_log_len());
        if from >= to {
            return &[];
        }
        let (f, t) = (self.rel(from), self.rel(to));
        &self.log[f..t]
    }

    fn get_log_len(&self) -> u64 {
        self.compacted_idx + self.log.len() as u64
    }

    fn get_compacted_idx(&self) -> u64 {
        self.compacted_idx
    }

    fn trim(&mut self, idx: u64) -> Result<(), TrimError> {
        if idx > self.decided_idx {
            return Err(TrimError::BeyondDecided {
                decided_idx: self.decided_idx,
                requested: idx,
            });
        }
        if idx < self.compacted_idx {
            return Err(TrimError::AlreadyTrimmed {
                compacted_idx: self.compacted_idx,
                requested: idx,
            });
        }
        let rel = self.rel(idx);
        self.log.drain(..rel);
        self.compacted_idx = idx;
        Ok(())
    }

    fn set_snapshot(&mut self, idx: u64, data: SnapshotData) -> Result<(), TrimError> {
        self.trim(idx)?;
        self.snapshot = Some(SnapshotRef { idx, data });
        Ok(())
    }

    fn install_snapshot(&mut self, idx: u64, data: SnapshotData) -> Result<(), StorageError> {
        self.log.clear();
        self.compacted_idx = idx;
        self.decided_idx = idx;
        self.snapshot = Some(SnapshotRef { idx, data });
        Ok(())
    }

    fn get_snapshot(&self) -> Option<SnapshotRef> {
        self.snapshot.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(v: u64) -> LogEntry<u64> {
        LogEntry::Normal(v)
    }

    #[test]
    fn append_and_read_back() {
        let mut s = MemoryStorage::new();
        assert_eq!(s.append_entry(norm(1)), Ok(1));
        assert_eq!(s.append_entries(vec![norm(2), norm(3)]), Ok(3));
        assert_eq!(s.get_entries(0, 3), vec![norm(1), norm(2), norm(3)]);
        assert_eq!(s.get_suffix(1), vec![norm(2), norm(3)]);
        assert_eq!(s.get_log_len(), 3);
    }

    #[test]
    fn append_on_prefix_overwrites_suffix() {
        let mut s = MemoryStorage::new();
        s.append_entries(vec![norm(1), norm(2), norm(4), norm(5)])
            .unwrap();
        // A new leader syncs [3] at index 2: [4, 5] were never chosen.
        assert_eq!(s.append_on_prefix(2, vec![norm(3)]), Ok(3));
        assert_eq!(s.get_suffix(0), vec![norm(1), norm(2), norm(3)]);
    }

    #[test]
    fn rounds_and_decided_idx_persist() {
        let mut s: MemoryStorage<u64> = MemoryStorage::new();
        assert_eq!(s.get_promise(), Ballot::bottom());
        let b = Ballot::new(3, 0, 2);
        s.set_promise(b).unwrap();
        s.set_accepted_round(b).unwrap();
        s.set_decided_idx(7).unwrap();
        assert_eq!(s.get_promise(), b);
        assert_eq!(s.get_accepted_round(), b);
        assert_eq!(s.get_decided_idx(), 7);
    }

    #[test]
    fn get_entries_clamps_to_log_len() {
        let mut s = MemoryStorage::new();
        s.append_entries(vec![norm(1), norm(2)]).unwrap();
        assert_eq!(s.get_entries(1, 100), vec![norm(2)]);
        assert_eq!(s.get_entries(2, 2), vec![]);
        assert_eq!(s.get_suffix(5), vec![]);
    }

    #[test]
    fn trim_discards_prefix_but_keeps_absolute_indices() {
        let mut s = MemoryStorage::new();
        s.append_entries((1..=10).map(norm).collect()).unwrap();
        s.set_decided_idx(8).unwrap();
        s.trim(5).expect("trim decided prefix");
        assert_eq!(s.get_compacted_idx(), 5);
        assert_eq!(s.get_log_len(), 10);
        assert_eq!(s.get_entries(5, 7), vec![norm(6), norm(7)]);
        assert_eq!(s.get_suffix(8), vec![norm(9), norm(10)]);
    }

    #[test]
    fn trim_rejects_undecided_and_double_trim() {
        let mut s = MemoryStorage::new();
        s.append_entries((1..=10).map(norm).collect()).unwrap();
        s.set_decided_idx(4).unwrap();
        assert_eq!(
            s.trim(6),
            Err(TrimError::BeyondDecided {
                decided_idx: 4,
                requested: 6
            })
        );
        s.trim(4).unwrap();
        assert_eq!(
            s.trim(2),
            Err(TrimError::AlreadyTrimmed {
                compacted_idx: 4,
                requested: 2
            })
        );
        // Trimming to the same index is a no-op, not an error.
        assert_eq!(s.trim(4), Ok(()));
    }

    #[test]
    #[should_panic(expected = "compacted prefix")]
    fn reading_compacted_entries_panics() {
        let mut s = MemoryStorage::new();
        s.append_entries((1..=4).map(norm).collect()).unwrap();
        s.set_decided_idx(4).unwrap();
        s.trim(3).unwrap();
        let _ = s.get_entries(1, 4);
    }

    #[test]
    fn with_decided_log_initializes_history() {
        let s = MemoryStorage::with_decided_log((0..100u64).collect());
        assert_eq!(s.get_log_len(), 100);
        assert_eq!(s.get_decided_idx(), 100);
        assert_eq!(s.get_promise(), Ballot::bottom());
    }

    #[test]
    fn set_snapshot_supersedes_the_trimmed_prefix() {
        let mut s = MemoryStorage::new();
        s.append_entries((1..=10).map(norm).collect()).unwrap();
        s.set_decided_idx(8).unwrap();
        let snap: crate::snapshot::SnapshotData = vec![1u8, 2, 3].into();
        // Beyond decided: rejected, nothing changes.
        assert!(matches!(
            s.set_snapshot(9, snap.clone()),
            Err(TrimError::BeyondDecided { .. })
        ));
        assert_eq!(s.get_snapshot(), None);
        s.set_snapshot(6, snap.clone())
            .expect("snapshot decided prefix");
        assert_eq!(s.get_compacted_idx(), 6);
        assert_eq!(s.get_log_len(), 10);
        let r = s.get_snapshot().expect("snapshot recorded");
        assert_eq!(r.idx, 6);
        assert_eq!(&r.data[..], &[1, 2, 3]);
        // Regressing below the compaction point is rejected.
        assert!(matches!(
            s.set_snapshot(4, snap),
            Err(TrimError::AlreadyTrimmed { .. })
        ));
    }

    #[test]
    fn install_snapshot_resets_the_log() {
        let mut s = MemoryStorage::new();
        s.append_entries((1..=5).map(norm).collect()).unwrap();
        s.set_decided_idx(3).unwrap();
        s.set_promise(Ballot::new(2, 0, 1)).unwrap();
        let snap: crate::snapshot::SnapshotData = vec![9u8; 4].into();
        s.install_snapshot(100, snap).unwrap();
        assert_eq!(s.get_log_len(), 100);
        assert_eq!(s.get_compacted_idx(), 100);
        assert_eq!(s.get_decided_idx(), 100);
        assert_eq!(s.get_snapshot().expect("installed").idx, 100);
        // Promise survives: the install is log state, not ballot state.
        assert_eq!(s.get_promise(), Ballot::new(2, 0, 1));
        // The log continues above the snapshot.
        assert_eq!(s.append_entry(norm(7)), Ok(101));
        assert_eq!(s.get_suffix(100), vec![norm(7)]);
    }

    #[test]
    fn append_on_prefix_at_compaction_boundary() {
        let mut s = MemoryStorage::new();
        s.append_entries((1..=6).map(norm).collect()).unwrap();
        s.set_decided_idx(6).unwrap();
        s.trim(6).unwrap();
        assert_eq!(s.append_on_prefix(6, vec![norm(7)]), Ok(7));
        assert_eq!(s.get_suffix(6), vec![norm(7)]);
    }

    #[test]
    fn trim_error_wraps_storage_error() {
        // The Storage variant threads I/O failures through the same error
        // type compaction callers already handle.
        let e = StorageError {
            op: StorageOp::Trim,
            kind: std::io::ErrorKind::Other,
        };
        let t: TrimError = e.into();
        assert_eq!(t, TrimError::Storage(e));
        assert!(format!("{t}").contains("failed to persist"));
    }
}
