//! Deterministic storage fault injection.
//!
//! [`FaultyStorage`] wraps any [`Storage`] with seed-driven failpoints so
//! the chaos harness can attack the disk the same way it attacks the
//! network: arm a fault, run the schedule, assert that no acknowledged
//! entry is ever lost and no replica panics. The wrapper also models what
//! a crash does to *unsynced* state: when a fault fires, everything
//! mutated since the last successful flush is rolled back on
//! [`Storage::recover`], exactly like a process that died before fsync
//! returned.
//!
//! Unarmed, the wrapper is free: it keeps no shadow copy and forwards
//! every call, so benches and tests that never inject faults pay nothing.

use crate::storage::{Storage, StorageError, StorageOp, TrimError};
use crate::util::{Entry, LogEntry};
use crate::EntryBatch;
use std::io::ErrorKind;

/// The class of disk fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// fsync returns an error: buffered writes are in an unknown state on
    /// disk (the fsyncgate scenario). Fails the next `flush`.
    SyncFailed,
    /// A write persists only partially. Fails the next append.
    ShortWrite,
    /// The device is full. Fails the next mutating operation.
    NoSpace,
    /// The medium returned garbage — detected via checksums, surfaced as
    /// an `InvalidData` flush failure. (Silent, *undetected* corruption is
    /// exercised at the WAL layer by the bit-flip torture tests.)
    Corruption,
    /// Power loss mid-checkpoint: the checkpoint fails and the unsynced
    /// tail is lost. Fails the next `checkpoint` (or `flush` if the
    /// implementation checkpoints implicitly).
    CheckpointCrash,
}

impl StorageFaultKind {
    fn error_kind(self) -> ErrorKind {
        match self {
            StorageFaultKind::SyncFailed => ErrorKind::Other,
            StorageFaultKind::ShortWrite => ErrorKind::WriteZero,
            StorageFaultKind::NoSpace => ErrorKind::OutOfMemory, // closest stable ENOSPC analogue
            StorageFaultKind::Corruption => ErrorKind::InvalidData,
            StorageFaultKind::CheckpointCrash => ErrorKind::Interrupted,
        }
    }

    /// Does an armed fault of this kind fire on `op`?
    fn fires_on(self, op: StorageOp) -> bool {
        match self {
            StorageFaultKind::SyncFailed | StorageFaultKind::Corruption => {
                matches!(op, StorageOp::Flush)
            }
            StorageFaultKind::ShortWrite => matches!(op, StorageOp::Append),
            StorageFaultKind::NoSpace => matches!(
                op,
                StorageOp::Append | StorageOp::Flush | StorageOp::Snapshot | StorageOp::Checkpoint
            ),
            StorageFaultKind::CheckpointCrash => {
                matches!(op, StorageOp::Checkpoint | StorageOp::Flush)
            }
        }
    }
}

/// A [`Storage`] wrapper with armable failpoints and crash-faithful
/// recovery semantics.
///
/// * [`FaultyStorage::arm`] schedules one fault; the next matching
///   operation fails with a [`StorageError`] and the storage becomes
///   **poisoned** — every further mutation fails too, as the fail-stop
///   contract requires.
/// * [`Storage::recover`] clears the poison and rolls the inner storage
///   back to its state at the last successful `flush` before arming: the
///   unsynced tail is gone, as after a real crash. The replica then
///   re-syncs via `PrepareReq`, which is exactly the path under test.
///
/// The shadow copy (`synced`) is taken lazily at arm time, so an unarmed
/// wrapper adds zero overhead and no memory.
#[derive(Debug, Clone)]
pub struct FaultyStorage<T: Entry, S: Storage<T> + Clone> {
    inner: S,
    /// State as of the last successful flush at/after arm time; what
    /// `recover` rolls back to. `None` while unarmed (no overhead).
    synced: Option<S>,
    armed: Option<StorageFaultKind>,
    poisoned: Option<StorageError>,
    faults_fired: u64,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Entry, S: Storage<T> + Clone + Default> Default for FaultyStorage<T, S> {
    fn default() -> Self {
        Self::new(S::default())
    }
}

impl<T: Entry, S: Storage<T> + Clone> FaultyStorage<T, S> {
    pub fn new(inner: S) -> Self {
        FaultyStorage {
            inner,
            synced: None,
            armed: None,
            poisoned: None,
            faults_fired: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Arm one fault: the next matching operation fails and poisons the
    /// storage. Takes the shadow "on disk" copy now — everything mutated
    /// after this point and not flushed is lost on recovery.
    pub fn arm(&mut self, kind: StorageFaultKind) {
        self.synced = Some(self.inner.clone());
        self.armed = Some(kind);
    }

    /// The error that poisoned this storage, if any.
    pub fn poisoned(&self) -> Option<StorageError> {
        self.poisoned
    }

    /// How many injected faults have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired
    }

    /// Direct access to the wrapped storage (tests/benches only).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Fail `op` if poisoned or if an armed fault matches it.
    fn failpoint(&mut self, op: StorageOp) -> Result<(), StorageError> {
        if let Some(e) = self.poisoned {
            return Err(StorageError { op, kind: e.kind });
        }
        if let Some(kind) = self.armed {
            if kind.fires_on(op) {
                self.armed = None;
                self.faults_fired += 1;
                let err = StorageError {
                    op,
                    kind: kind.error_kind(),
                };
                self.poisoned = Some(err);
                return Err(err);
            }
        }
        Ok(())
    }
}

impl<T: Entry, S: Storage<T> + Clone> Storage<T> for FaultyStorage<T, S> {
    fn append_entry(&mut self, entry: LogEntry<T>) -> Result<u64, StorageError> {
        self.failpoint(StorageOp::Append)?;
        self.inner.append_entry(entry)
    }

    fn append_entries(&mut self, entries: Vec<LogEntry<T>>) -> Result<u64, StorageError> {
        self.failpoint(StorageOp::Append)?;
        self.inner.append_entries(entries)
    }

    fn append_on_prefix(
        &mut self,
        from_idx: u64,
        entries: Vec<LogEntry<T>>,
    ) -> Result<u64, StorageError> {
        self.failpoint(StorageOp::Append)?;
        self.inner.append_on_prefix(from_idx, entries)
    }

    fn set_promise(&mut self, b: crate::Ballot) -> Result<(), StorageError> {
        self.failpoint(StorageOp::SetPromise)?;
        self.inner.set_promise(b)
    }

    fn get_promise(&self) -> crate::Ballot {
        self.inner.get_promise()
    }

    fn set_accepted_round(&mut self, b: crate::Ballot) -> Result<(), StorageError> {
        self.failpoint(StorageOp::SetAcceptedRound)?;
        self.inner.set_accepted_round(b)
    }

    fn get_accepted_round(&self) -> crate::Ballot {
        self.inner.get_accepted_round()
    }

    fn set_decided_idx(&mut self, idx: u64) -> Result<(), StorageError> {
        self.failpoint(StorageOp::SetDecidedIdx)?;
        self.inner.set_decided_idx(idx)
    }

    fn get_decided_idx(&self) -> u64 {
        self.inner.get_decided_idx()
    }

    fn entries_ref(&self, from: u64, to: u64) -> &[LogEntry<T>] {
        self.inner.entries_ref(from, to)
    }

    fn shared_suffix(&self, from: u64) -> EntryBatch<T> {
        self.inner.shared_suffix(from)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.failpoint(StorageOp::Flush)?;
        self.inner.flush()?;
        // Everything flushed is durable: advance the shadow copy so a
        // later fault only rolls back the genuinely unsynced tail.
        if self.synced.is_some() {
            self.synced = Some(self.inner.clone());
        }
        Ok(())
    }

    fn get_log_len(&self) -> u64 {
        self.inner.get_log_len()
    }

    fn get_compacted_idx(&self) -> u64 {
        self.inner.get_compacted_idx()
    }

    fn trim(&mut self, idx: u64) -> Result<(), TrimError> {
        self.failpoint(StorageOp::Trim)?;
        self.inner.trim(idx)
    }

    fn set_snapshot(&mut self, idx: u64, data: crate::SnapshotData) -> Result<(), TrimError> {
        self.failpoint(StorageOp::Snapshot)?;
        self.inner.set_snapshot(idx, data)
    }

    fn install_snapshot(
        &mut self,
        idx: u64,
        data: crate::SnapshotData,
    ) -> Result<(), StorageError> {
        self.failpoint(StorageOp::Snapshot)?;
        self.inner.install_snapshot(idx, data)
    }

    fn get_snapshot(&self) -> Option<crate::SnapshotRef> {
        self.inner.get_snapshot()
    }

    fn checkpoint(&mut self) -> Result<(), StorageError> {
        self.failpoint(StorageOp::Checkpoint)?;
        self.inner.checkpoint()
    }

    fn recover(&mut self) -> Result<(), StorageError> {
        // Crash semantics: reload "from disk" — the state at the last
        // successful flush. Mutations since then never became durable.
        if let Some(synced) = self.synced.take() {
            self.inner = synced;
        }
        self.armed = None;
        self.poisoned = None;
        self.inner.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;

    fn norm(v: u64) -> LogEntry<u64> {
        LogEntry::Normal(v)
    }

    #[test]
    fn unarmed_wrapper_is_transparent() {
        let mut s: FaultyStorage<u64, MemoryStorage<u64>> = FaultyStorage::default();
        assert_eq!(s.append_entry(norm(1)), Ok(1));
        assert_eq!(s.flush(), Ok(()));
        assert!(s.synced.is_none(), "no shadow copy while unarmed");
        assert_eq!(s.faults_fired(), 0);
    }

    #[test]
    fn sync_fault_fires_on_flush_and_poisons() {
        let mut s: FaultyStorage<u64, MemoryStorage<u64>> = FaultyStorage::default();
        s.append_entry(norm(1)).unwrap();
        s.flush().unwrap();
        s.arm(StorageFaultKind::SyncFailed);
        s.append_entry(norm(2)).unwrap(); // buffered writes still succeed
        let err = s.flush().unwrap_err();
        assert_eq!(err.op, StorageOp::Flush);
        assert_eq!(s.poisoned(), Some(err));
        // Poisoned: everything fails now, including retried flushes
        // (fsyncgate: a retry that succeeded would ack lost data).
        assert!(s.append_entry(norm(3)).is_err());
        assert!(s.flush().is_err());
        assert_eq!(s.faults_fired(), 1);
    }

    #[test]
    fn recover_rolls_back_to_last_flush() {
        let mut s: FaultyStorage<u64, MemoryStorage<u64>> = FaultyStorage::default();
        s.append_entry(norm(1)).unwrap();
        s.set_decided_idx(1).unwrap();
        s.flush().unwrap();
        s.arm(StorageFaultKind::SyncFailed);
        s.append_entry(norm(2)).unwrap();
        assert!(s.flush().is_err());
        s.recover().unwrap();
        // The unsynced entry is gone; the flushed state survived.
        assert_eq!(s.get_log_len(), 1);
        assert_eq!(s.get_decided_idx(), 1);
        assert_eq!(s.poisoned(), None);
        // And the storage is usable again.
        assert_eq!(s.append_entry(norm(9)), Ok(2));
        assert_eq!(s.flush(), Ok(()));
    }

    #[test]
    fn flush_between_arm_and_fault_advances_the_durable_point() {
        let mut s: FaultyStorage<u64, MemoryStorage<u64>> = FaultyStorage::default();
        s.arm(StorageFaultKind::SyncFailed);
        // Arm a second fault so the first flush below succeeds? No —
        // SyncFailed fires on the first flush. Use NoSpace on append
        // ordering instead: flush succeeds, then append fails.
        s.armed = Some(StorageFaultKind::ShortWrite);
        s.append_entry(norm(1)).unwrap_err(); // ShortWrite fires on append
        s.recover().unwrap();
        assert_eq!(s.get_log_len(), 0);

        // Now: flush after arm advances the shadow copy.
        s.arm(StorageFaultKind::SyncFailed);
        s.append_entry(norm(1)).unwrap();
        s.flush().unwrap_err(); // fires, entry 1 unsynced
        s.recover().unwrap();
        assert_eq!(s.get_log_len(), 0, "entry never flushed successfully");
    }

    #[test]
    fn short_write_fails_appends_nospace_fails_everything() {
        let mut s: FaultyStorage<u64, MemoryStorage<u64>> = FaultyStorage::default();
        s.arm(StorageFaultKind::ShortWrite);
        s.set_promise(crate::Ballot::new(1, 0, 1)).unwrap(); // not an append: passes
        let err = s.append_entries(vec![norm(1)]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::WriteZero);
        s.recover().unwrap();

        s.arm(StorageFaultKind::NoSpace);
        assert!(s.checkpoint().is_err());
        s.recover().unwrap();
        // Promise rolled back too: it was set after arm and never flushed.
        assert_eq!(s.get_promise(), crate::Ballot::bottom());
    }
}
