//! # omnipaxos — a from-scratch reproduction of Omni-Paxos
//!
//! This crate implements the complete system of *Omni-Paxos: Breaking the
//! Barriers of Partial Connectivity* (Ng, Haridi, Carbone — EuroSys 2023):
//!
//! * [`sequence_paxos`] — **Sequence Paxos** (§4), the log replication
//!   protocol satisfying the Sequence Consensus properties (validity,
//!   uniform agreement, integrity) with a Prepare phase that synchronizes a
//!   possibly-lagging new leader and an Accept phase that pipelines entries
//!   in FIFO order.
//! * [`ble`] — **Ballot Leader Election** (§5), which elects a
//!   *quorum-connected* server and guarantees progress as long as a single
//!   quorum-connected server exists, under any partial network partition.
//! * [`service`] — the **service layer** (§6): reconfiguration with
//!   stop-signs and decentralized, parallel log migration.
//!
//! The crate is **sans-IO**: replicas are passive state machines that are
//! fed messages, leader events and timer ticks, and queue outgoing
//! messages. The same code therefore runs under the deterministic simulator
//! used by the evaluation harness, in unit tests, or behind real sockets.
//!
//! ## Quick start
//!
//! ```
//! use omnipaxos::{OmniPaxos, OmniPaxosConfig, MemoryStorage, LogEntry};
//!
//! // Three replicas of configuration 1.
//! let nodes = vec![1, 2, 3];
//! let mut replicas: Vec<OmniPaxos<u64, MemoryStorage<u64>>> = nodes
//!     .iter()
//!     .map(|&pid| {
//!         OmniPaxos::new(
//!             OmniPaxosConfig::with(1, pid, nodes.clone()),
//!             MemoryStorage::new(),
//!         )
//!     })
//!     .collect();
//!
//! // Deliver every queued message to its destination until quiescent,
//! // ticking the logical clocks (drives BLE elections).
//! let mut deliver = |replicas: &mut Vec<OmniPaxos<u64, MemoryStorage<u64>>>| {
//!     for _ in 0..100 {
//!         for i in 0..replicas.len() {
//!             replicas[i].tick();
//!             for m in replicas[i].outgoing_messages() {
//!                 let to = m.to() as usize - 1;
//!                 replicas[to].handle_message(m);
//!             }
//!         }
//!     }
//! };
//! deliver(&mut replicas);
//!
//! // A leader has been elected; propose through it.
//! let leader = replicas.iter_mut().position(|r| r.is_leader()).unwrap();
//! replicas[leader].append(42).unwrap();
//! deliver(&mut replicas);
//!
//! for r in &replicas {
//!     assert_eq!(r.read_decided(0), vec![LogEntry::Normal(42)]);
//! }
//! ```

pub mod ballot;
pub mod ble;
pub mod faults;
pub mod messages;
pub mod multigroup;
pub mod omni;
pub mod sequence_paxos;
pub mod service;
pub mod snapshot;
pub mod storage;
pub mod util;
pub mod wal;
pub mod wire;

pub use ballot::{Ballot, NodeId};
pub use ble::{BallotLeaderElection, BleConfig};
pub use faults::{FaultyStorage, StorageFaultKind};
pub use messages::{BleMessage, BleMsg, Message, PaxosMsg};
pub use omni::{OmniMessage, OmniPaxos, OmniPaxosConfig};
pub use sequence_paxos::{Phase, ProposeErr, Role, SequencePaxos, SequencePaxosConfig};
pub use service::{MigrationScheme, OmniPaxosServer, ServerConfig, ServerRole, ServiceMsg};
pub use snapshot::{CounterSm, SnapshotData, SnapshotRef, Snapshottable};
pub use storage::{EntryBatch, MemoryStorage, Storage, StorageError, StorageOp, TrimError};
pub use util::{majority, Entry, LogEntry, StopSign};
pub use wal::{WalEncode, WalError, WalStorage};
pub use wire::{BatchCache, Wire, WireError, WIRE_VERSION};
