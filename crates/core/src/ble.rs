//! Ballot Leader Election (BLE) — quorum-connected leader election (§5).
//!
//! BLE elects a server that is **quorum-connected** (QC): directly linked to
//! a majority of correct servers, including itself. Unlike failure-detector
//! style election, connectivity — not mere liveness of the current leader —
//! is the election criterion, which is what makes Omni-Paxos resilient to
//! the quorum-loss, constrained-election and chained partial partitions of
//! §2.
//!
//! Servers exchange heartbeats in rounds. A heartbeat reply carries the
//! responder's ballot and a flag saying whether the responder was
//! quorum-connected in its previous round. At the end of a round a server
//! knows (1) whether it is itself QC (it received a majority of replies) and
//! (2) which peers are alive and QC. Only a QC server runs `check_leader`,
//! and only QC ballots are candidates, which yields the properties:
//!
//! * **LE1 (QC-Completeness)** — eventually every QC server elects some QC
//!   server, if one exists.
//! * **LE2 (QC-Eventual Agreement)** — eventually no two QC servers in some
//!   majority elect differently.
//! * **LE3 (Monotonic Unique Ballots)** — elected ballots increase
//!   monotonically and are unique.
//!
//! Deliberately, heartbeats do **not** gossip who the current leader is —
//! the paper shows (chained scenario, §2c) that gossiping leader identity is
//! what livelocks Multi-Paxos/Raft/Zab under partial connectivity.
//!
//! BLE is driven by a logical timer: the owner calls
//! [`BallotLeaderElection::tick`] at a fixed interval; every
//! `hb_timeout_ticks` ticks a heartbeat round closes and a new one starts.

use crate::ballot::{Ballot, NodeId};
use crate::messages::{BleMessage, BleMsg};
use crate::util::majority;
use std::collections::HashMap;

/// Static configuration for BLE.
#[derive(Debug, Clone)]
pub struct BleConfig {
    /// This server.
    pub pid: NodeId,
    /// The other servers of the configuration.
    pub peers: Vec<NodeId>,
    /// Ticks per heartbeat round (the election timeout granularity).
    pub hb_timeout_ticks: u64,
    /// Custom ballot priority for tie-breaking (§8); zero when unused.
    pub priority: u64,
    /// §8's proposed optimization: stamp the ballot's priority with this
    /// server's *connectivity* (number of reachable peers) whenever it
    /// raises its ballot to take over. Among simultaneous takeover
    /// candidates the best-connected one then wins the tie. Only applied at
    /// takeover time — an established ballot never changes — so liveness
    /// and LE3 are unaffected, exactly as §8 argues.
    pub connectivity_priority: bool,
    /// Starting round number of this server's ballot (zero for a fresh
    /// server).
    pub initial_n: u64,
    /// Election floor: ballots not exceeding this are never (re-)elected.
    /// A *recovering* server restarts with its persisted promise here —
    /// the promise is proof of the highest election it ever followed, and
    /// electing anything at or below it would wedge Sequence Paxos (it
    /// only accepts elections above the promise). The normal takeover
    /// increments then raise candidate ballots past the floor.
    pub initial_leader: Ballot,
    /// Leader-lease duration in ticks; `0` disables leases. When enabled,
    /// every heartbeat reply a follower sends to its elected leader doubles
    /// as a lease grant: the follower promises not to help elect — or
    /// promise to — any *other* ballot for `lease_ticks` of its own clock.
    /// The leader holds the lease while a majority of grants (anchored at
    /// the tick each grant's heartbeat round was *started*, i.e. strictly
    /// before the follower's own window began) are younger than
    /// `lease_ticks - lease_epsilon_ticks`.
    pub lease_ticks: u64,
    /// Maximum tolerated clock drift between any two servers over one lease
    /// window, in ticks. The leader's lease window is shortened by this
    /// amount, so a follower's clock may run fast by up to epsilon ticks
    /// per window before a follower-side early expiry could race the
    /// leader's view.
    pub lease_epsilon_ticks: u64,
    /// Grant suppression carried over from a previous incarnation of this
    /// server (crash recovery): the previous instance may have had an
    /// outstanding, unexpired grant whose identity was lost with the
    /// volatile state, so the fresh instance conservatively honors a
    /// full-length phantom grant to `initial_leader` for this many ticks.
    /// Zero for a genuinely fresh server.
    pub initial_grant_holdoff_ticks: u64,
}

impl BleConfig {
    /// Configuration for server `pid` among `nodes`.
    pub fn with(pid: NodeId, nodes: &[NodeId], hb_timeout_ticks: u64) -> Self {
        assert!(nodes.contains(&pid), "pid {pid} not in nodes {nodes:?}");
        assert!(hb_timeout_ticks > 0, "hb_timeout_ticks must be positive");
        BleConfig {
            pid,
            peers: nodes.iter().copied().filter(|&p| p != pid).collect(),
            hb_timeout_ticks,
            priority: 0,
            connectivity_priority: false,
            initial_n: 0,
            initial_leader: Ballot::bottom(),
            lease_ticks: 0,
            lease_epsilon_ticks: 0,
            initial_grant_holdoff_ticks: 0,
        }
    }
}

/// The Ballot Leader Election component (Fig. 4). One instance accompanies
/// each Sequence Paxos instance (Fig. 2).
#[derive(Debug)]
pub struct BallotLeaderElection {
    config: BleConfig,
    /// Our ballot; incremented when we attempt to take over leadership.
    current_ballot: Ballot,
    /// Were we quorum-connected in the round that just ended? Carried in
    /// our heartbeat replies during the current round.
    quorum_connected: bool,
    /// Ballot of the last elected leader ([`Ballot::bottom`] if none).
    leader: Ballot,
    /// Current heartbeat round number.
    hb_round: u64,
    /// `(ballot, quorum_connected)` replies received this round.
    ballots: Vec<(Ballot, bool)>,
    /// Peers heard from in the last completed round, including self
    /// (the connectivity measure of the §8 ballot extension).
    last_connectivity: u64,
    /// Is this server currently a viable leader candidate? False while the
    /// owning replica recovers from a crash (§4.1.3): like a leader that
    /// lost quorum-connectivity, it gives up candidacy by flagging
    /// `quorum_connected = false` until it has resynchronized.
    viable: bool,
    ticks_elapsed: u64,
    /// Monotone local clock: total ticks since this instance was created.
    /// All lease bookkeeping is anchored to it; per-node tick *rates* may
    /// drift in a real deployment, which is what `lease_epsilon_ticks`
    /// bounds.
    now: u64,
    /// Tick at which the current heartbeat round's requests were sent.
    /// Lease grants arriving in this round are anchored here: the request
    /// left strictly before the follower produced its reply, so the
    /// leader's window is contained in the follower's (up to clock drift).
    round_started_at: u64,
    /// Leader side: peer → anchor tick of its freshest lease grant.
    grants: HashMap<NodeId, u64>,
    /// Follower side: the ballot our outstanding grant (if any) was given
    /// to. While the grant is live we neither elect nor help promote any
    /// other ballot.
    granted_to: Ballot,
    /// Follower side: local tick at which our outstanding grant expires.
    grant_expiry: u64,
    /// Highest ballot observed in the last completed round (own included).
    /// Grant renewal requires our leader to still be this maximum: once a
    /// higher ballot is circulating, extending the grant would pin us to a
    /// leader the rest of the cluster has moved past — we let the existing
    /// promise run out instead (never breaking it early).
    last_top: Ballot,
    outgoing: Vec<BleMessage>,
}

impl BallotLeaderElection {
    /// Create a BLE instance and send the first round of heartbeat
    /// requests.
    pub fn new(config: BleConfig) -> Self {
        let current_ballot = Ballot::new(config.initial_n, config.priority, config.pid);
        let initial_leader = config.initial_leader;
        let holdoff = config.initial_grant_holdoff_ticks;
        let mut ble = BallotLeaderElection {
            config,
            current_ballot,
            quorum_connected: true,
            leader: initial_leader,
            hb_round: 0,
            ballots: Vec::new(),
            last_connectivity: 1,
            viable: true,
            ticks_elapsed: 0,
            now: 0,
            round_started_at: 0,
            grants: HashMap::new(),
            // The phantom post-recovery grant points at the election floor:
            // re-learning (or re-promising) that leader stays possible,
            // while anything above it waits the holdoff out.
            granted_to: initial_leader,
            grant_expiry: holdoff,
            last_top: Ballot::bottom(),
            outgoing: Vec::new(),
        };
        ble.new_round();
        ble
    }

    /// Our current ballot.
    pub fn current_ballot(&self) -> Ballot {
        self.current_ballot
    }

    /// The ballot we consider elected ([`Ballot::bottom`] if none).
    pub fn leader(&self) -> Ballot {
        self.leader
    }

    /// Were we quorum-connected at the end of the last round?
    pub fn is_quorum_connected(&self) -> bool {
        self.quorum_connected
    }

    /// Mark this server (non-)viable as a leader candidate. A recovering
    /// replica sets this to `false` so peers elect someone else instead of
    /// trusting the ghost of its pre-crash ballot; reusing a crashed
    /// leader's ballot with `qc = true` would deadlock the election.
    pub fn set_viable(&mut self, viable: bool) {
        self.viable = viable;
    }

    /// Drain queued outgoing heartbeat messages.
    pub fn outgoing_messages(&mut self) -> Vec<BleMessage> {
        std::mem::take(&mut self.outgoing)
    }

    /// Advance the logical clock by one tick. Returns `Some(ballot)` when
    /// this round elected a (new) leader; the owner forwards it to
    /// `SequencePaxos::handle_leader`.
    pub fn tick(&mut self) -> Option<Ballot> {
        self.now += 1;
        self.ticks_elapsed += 1;
        if self.ticks_elapsed >= self.config.hb_timeout_ticks {
            self.ticks_elapsed = 0;
            self.hb_timeout()
        } else {
            None
        }
    }

    /// Feed one incoming heartbeat message.
    pub fn handle_message(&mut self, m: BleMessage) {
        match m.msg {
            BleMsg::HeartbeatRequest { round } => {
                if self.config.lease_ticks == 0 {
                    self.outgoing.push(BleMessage {
                        from: self.config.pid,
                        to: m.from,
                        msg: BleMsg::HeartbeatReply {
                            round,
                            ballot: self.current_ballot,
                            quorum_connected: self.quorum_connected,
                        },
                    });
                    return;
                }
                // Leases enabled: the reply doubles as a grant when the
                // requester is our elected leader. (Re-)granting only ever
                // extends the window of the ballot we already follow, so it
                // is always safe for the granter — but we stop *renewing*
                // once a ballot above our leader's is circulating. A deposed
                // leader keeps heartbeating as a follower; renewing off
                // those beats would pin us to it forever and block us from
                // ever promising its successor. Declining to extend lets the
                // existing promise lapse within one lease window without
                // ever being broken early.
                let lease = self.leader != Ballot::bottom()
                    && self.leader.pid == m.from
                    && self.leader >= self.last_top;
                if lease {
                    self.granted_to = self.leader;
                    self.grant_expiry = self.now + self.config.lease_ticks;
                }
                self.outgoing.push(BleMessage {
                    from: self.config.pid,
                    to: m.from,
                    msg: BleMsg::HeartbeatReplyLease {
                        round,
                        ballot: self.current_ballot,
                        quorum_connected: self.quorum_connected,
                        lease,
                    },
                });
            }
            BleMsg::HeartbeatReply {
                round,
                ballot,
                quorum_connected,
            } => {
                // Late replies from earlier rounds are ignored (§5.2,
                // correctness): they carry stale connectivity information.
                if round == self.hb_round {
                    self.ballots.push((ballot, quorum_connected));
                }
            }
            BleMsg::HeartbeatReplyLease {
                round,
                ballot,
                quorum_connected,
                lease,
            } => {
                if round == self.hb_round {
                    self.ballots.push((ballot, quorum_connected));
                    if lease {
                        // Anchor at the round's start: the request left
                        // before the follower's own lease window opened, so
                        // our (epsilon-shortened) window is strictly inside
                        // the follower's promise.
                        self.grants.insert(m.from, self.round_started_at);
                    }
                }
            }
        }
    }

    /// Close the current heartbeat round: determine our own
    /// quorum-connectivity, run `check_leader` if we may, and open the next
    /// round (Fig. 4).
    fn hb_timeout(&mut self) -> Option<Ballot> {
        let replies = self.ballots.len();
        self.last_connectivity = replies as u64 + 1;
        // A server is QC when it heard from a majority (counting itself).
        let connected = replies + 1 >= majority(self.config.peers.len() + 1);
        // Candidacy additionally requires viability (not mid-recovery).
        let qc = connected && self.viable;
        self.ballots.push((self.current_ballot, qc));
        self.quorum_connected = qc;
        // Only a quorum-connected server may elect (LE1): electing from a
        // minority view could pick a server that cannot make progress. A
        // recovering server still *elects* (it must learn the leader), it
        // just cannot be a candidate itself.
        let elected = if connected { self.check_leader() } else { None };
        self.last_top = self
            .ballots
            .iter()
            .map(|(b, _)| *b)
            .max()
            .unwrap_or_default();
        self.ballots.clear();
        self.new_round();
        elected
    }

    /// Elect the maximum quorum-connected ballot, or start a takeover if
    /// the current leader is no longer a QC candidate (Fig. 4 ①).
    fn check_leader(&mut self) -> Option<Ballot> {
        let top = self
            .ballots
            .iter()
            .filter(|(_, qc)| *qc)
            .map(|(b, _)| *b)
            .max()
            .unwrap_or_default();
        if top < self.leader {
            // The elected leader has lost quorum-connectivity (its replies
            // say so, or it is unreachable). Raise our ballot above it and
            // compete next round; LE3 keeps elected ballots monotonic.
            // An outstanding lease grant postpones the takeover: the
            // grantee may still be serving local reads on the strength of
            // our promise, so we sit the grant out first.
            if self.grant_active() {
                return None;
            }
            self.current_ballot.n = self.current_ballot.n.max(self.leader.n) + 1;
            if self.config.connectivity_priority {
                // §8: stamp the fresh ballot with our current connectivity
                // so the best-connected takeover candidate wins the tie.
                self.current_ballot.priority = self.last_connectivity;
            }
            self.leader = Ballot::bottom();
            None
        } else if top > self.leader {
            // Electing a ballot owned by a server other than our grantee
            // would let a new leader commit writes inside the grantee's
            // lease window; wait for the grant to lapse first. A higher
            // ballot of the *same* server is the grantee outbidding a
            // straggler's promise — safe to follow immediately.
            if self.grant_active() && top.pid != self.granted_to.pid {
                return None;
            }
            // If we are the elected leader holding a live majority of
            // grants, a higher foreign ballot (a rejoined straggler whose
            // clock ran ahead) cannot win: our followers' grants suppress
            // it. Defecting to it would split the cluster instead — so
            // outbid it and recompete under our own pid. At most one
            // server can hold a grant majority, so two leaders can never
            // outbid-duel.
            if self.leader == self.current_ballot
                && top.pid != self.config.pid
                && self.majority_grants_live()
            {
                self.outbid(top);
                return None;
            }
            self.leader = top;
            Some(top)
        } else {
            // Stable leader — but if we ARE that leader and a rejoined
            // server's non-candidate ballot has outrun ours, its durable
            // promise bars our Prepare while our followers' lease grants
            // bar electing it: a livelock unless we outbid. Grants follow
            // our pid, so our own re-election is not suppressed.
            if self.config.lease_ticks > 0 && self.leader == self.current_ballot {
                let max_seen = self
                    .ballots
                    .iter()
                    .map(|(b, _)| *b)
                    .max()
                    .unwrap_or_default();
                if max_seen > self.current_ballot {
                    self.outbid(max_seen);
                }
            }
            None
        }
    }

    /// Raise our ballot above `above` and recompete for leadership from
    /// scratch next round (lease-mode only: the same-pid grant exemption
    /// lets the re-election through where a foreign ballot would stall).
    fn outbid(&mut self, above: Ballot) {
        self.current_ballot.n = self.current_ballot.n.max(above.n) + 1;
        if self.config.connectivity_priority {
            self.current_ballot.priority = self.last_connectivity;
        }
        self.leader = Ballot::bottom();
    }

    /// Does a majority (counting ourselves) hold fresh lease grants from
    /// us? This is [`Self::lease_valid`] minus the round-agreement checks:
    /// the raw "my followers are still suppressed" predicate.
    fn majority_grants_live(&self) -> bool {
        if self.config.lease_ticks == 0 {
            return false;
        }
        let window = self
            .config
            .lease_ticks
            .saturating_sub(self.config.lease_epsilon_ticks);
        let live = self
            .config
            .peers
            .iter()
            .filter(|p| {
                self.grants
                    .get(p)
                    .is_some_and(|&anchor| anchor + window > self.now)
            })
            .count();
        live + 1 >= majority(self.config.peers.len() + 1)
    }

    // ------------------------------------------------------------------
    // Leader leases
    // ------------------------------------------------------------------

    /// Is this server's outstanding lease grant (to another server) still
    /// live on its local clock? Includes the conservative post-recovery
    /// phantom grant.
    pub fn grant_active(&self) -> bool {
        self.config.lease_ticks > 0 && self.now < self.grant_expiry
    }

    /// Would accepting a `Prepare` for `n` break our outstanding grant?
    /// The owner consults this before feeding a `Prepare` into Sequence
    /// Paxos: a promise to a *new* ballot is exactly the capability a new
    /// leader needs to commit writes the lease holder cannot see, so it
    /// must wait the grant out. Re-promising at or below our durable
    /// `promised` ballot grants nothing new, and any ballot owned by the
    /// lease holder's own server is the lease holder itself outbidding a
    /// rejoined straggler's promise — writes committed under it are the
    /// reader's own, so both always pass.
    pub fn grant_blocks(&self, n: Ballot, promised: Ballot) -> bool {
        self.grant_active() && n > promised && n.pid != self.granted_to.pid
    }

    /// Leader side: do we currently hold the read lease for `sp_leader`
    /// (the ballot Sequence Paxos is leading under)? Requires leases to be
    /// enabled, our own ballot to be the elected one, agreement with the
    /// replication layer's round, and fresh grants (within the
    /// epsilon-shortened window) from a majority including ourselves.
    pub fn lease_valid(&self, sp_leader: Ballot) -> bool {
        if self.config.lease_ticks == 0
            || self.leader != self.current_ballot
            || sp_leader != self.current_ballot
        {
            return false;
        }
        self.majority_grants_live()
    }

    /// The ballot our outstanding grant was given to ([`Ballot::bottom`]
    /// when none was ever granted).
    pub fn granted_to(&self) -> Ballot {
        self.granted_to
    }

    fn new_round(&mut self) {
        self.hb_round += 1;
        self.round_started_at = self.now;
        for &peer in &self.config.peers {
            self.outgoing.push(BleMessage {
                from: self.config.pid,
                to: peer,
                msg: BleMsg::HeartbeatRequest {
                    round: self.hb_round,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a full heartbeat round for one BLE given replies from `peers`.
    fn run_round(ble: &mut BallotLeaderElection, replies: &[(Ballot, bool)]) -> Option<Ballot> {
        let round = ble.hb_round;
        for (i, &(ballot, qc)) in replies.iter().enumerate() {
            ble.handle_message(BleMessage {
                from: 100 + i as NodeId,
                to: ble.config.pid,
                msg: BleMsg::HeartbeatReply {
                    round,
                    ballot,
                    quorum_connected: qc,
                },
            });
        }
        let mut out = None;
        for _ in 0..ble.config.hb_timeout_ticks {
            if let Some(b) = ble.tick() {
                out = Some(b);
            }
        }
        out
    }

    fn ble(pid: NodeId, n: usize) -> BallotLeaderElection {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        BallotLeaderElection::new(BleConfig::with(pid, &nodes, 4))
    }

    #[test]
    fn elects_max_qc_ballot() {
        let mut b = ble(1, 3);
        let other = Ballot::new(0, 0, 3);
        let elected = run_round(&mut b, &[(other, true)]);
        assert_eq!(elected, Some(other), "highest QC ballot (pid 3) wins");
    }

    #[test]
    fn non_qc_ballots_are_not_candidates() {
        let mut b = ble(2, 3);
        let high_but_not_qc = Ballot::new(5, 0, 3);
        let elected = run_round(&mut b, &[(high_but_not_qc, false)]);
        // Only our own ballot is a candidate; it is the top and gets elected.
        assert_eq!(elected, Some(b.current_ballot()));
    }

    #[test]
    fn minority_view_does_not_elect() {
        // 5 servers, zero replies: not QC, no election possible.
        let mut b = ble(1, 5);
        let elected = run_round(&mut b, &[]);
        assert_eq!(elected, None);
        assert!(!b.is_quorum_connected());
    }

    #[test]
    fn leader_loss_triggers_ballot_increment_then_takeover() {
        let mut b = ble(1, 3);
        let leader = Ballot::new(3, 0, 2);
        assert_eq!(run_round(&mut b, &[(leader, true)]), Some(leader));
        // Leader stops being QC: its reply now carries qc = false.
        assert_eq!(run_round(&mut b, &[(leader, false)]), None);
        assert!(b.current_ballot().n > leader.n, "raised above leader");
        // Next round we are the top QC candidate and get elected.
        let elected = run_round(&mut b, &[(leader, false)]);
        assert_eq!(elected, Some(b.current_ballot()));
        assert_eq!(b.leader(), b.current_ballot());
    }

    #[test]
    fn stable_leader_is_not_reelected() {
        let mut b = ble(1, 3);
        let leader = Ballot::new(3, 0, 2);
        assert_eq!(run_round(&mut b, &[(leader, true)]), Some(leader));
        assert_eq!(run_round(&mut b, &[(leader, true)]), None);
        assert_eq!(run_round(&mut b, &[(leader, true)]), None);
    }

    #[test]
    fn late_replies_are_ignored() {
        let mut b = ble(1, 5);
        let stale = Ballot::new(9, 0, 4);
        b.handle_message(BleMessage {
            from: 4,
            to: 1,
            msg: BleMsg::HeartbeatReply {
                round: b.hb_round.wrapping_sub(1),
                ballot: stale,
                quorum_connected: true,
            },
        });
        assert!(b.ballots.is_empty(), "stale round reply must be dropped");
    }

    #[test]
    fn heartbeat_request_gets_reply_with_current_flag() {
        let mut b = ble(1, 3);
        b.handle_message(BleMessage {
            from: 2,
            to: 1,
            msg: BleMsg::HeartbeatRequest { round: 7 },
        });
        let out = ble_replies(&mut b);
        assert_eq!(out.len(), 1);
        match out[0].msg {
            BleMsg::HeartbeatReply {
                round,
                ballot,
                quorum_connected,
            } => {
                assert_eq!(round, 7);
                assert_eq!(ballot, b.current_ballot());
                assert!(quorum_connected, "initially assumed QC");
            }
            other => panic!("expected reply, got {other:?}"),
        }
    }

    fn ble_replies(b: &mut BallotLeaderElection) -> Vec<BleMessage> {
        b.outgoing_messages()
            .into_iter()
            .filter(|m| matches!(m.msg, BleMsg::HeartbeatReply { .. }))
            .collect()
    }

    #[test]
    fn priority_breaks_ties() {
        let nodes = vec![1, 2, 3];
        let mut cfg = BleConfig::with(1, &nodes, 4);
        cfg.priority = 10;
        let mut b = BallotLeaderElection::new(cfg);
        // Peer ballot with same n, lower priority but higher pid.
        let peer = Ballot::new(0, 0, 3);
        let elected = run_round(&mut b, &[(peer, true)]);
        assert_eq!(
            elected,
            Some(b.current_ballot()),
            "our priority 10 beats pid 3's priority 0"
        );
    }

    #[test]
    fn takeover_raises_above_both_leader_and_own_ballot() {
        let mut b = ble(1, 3);
        // Elect a leader with high n.
        let leader = Ballot::new(10, 0, 2);
        run_round(&mut b, &[(leader, true)]);
        // Lose it.
        run_round(&mut b, &[]);
        run_round(&mut b, &[(Ballot::new(0, 0, 3), true)]);
        assert!(b.current_ballot().n >= 11);
    }

    #[test]
    fn connectivity_priority_prefers_better_connected_takeover() {
        // Two QC servers race to take over after losing the leader; the
        // one that heard more peers must win the ballot tie (§8).
        let nodes: Vec<NodeId> = (1..=5).collect();
        let mut well = BleConfig::with(1, &nodes, 4);
        well.connectivity_priority = true;
        let mut poorly = BleConfig::with(5, &nodes, 4);
        poorly.connectivity_priority = true;
        let mut a = BallotLeaderElection::new(well); // hears 4 peers
        let mut b = BallotLeaderElection::new(poorly); // hears 2 peers
        let leader = Ballot::new(3, 0, 2);
        run_round(
            &mut a,
            &[
                (leader, true),
                (Ballot::default(), false),
                (Ballot::default(), false),
                (Ballot::default(), false),
            ],
        );
        run_round(&mut b, &[(leader, true), (Ballot::default(), false)]);
        // Leader disappears: both take over.
        run_round(&mut a, &[(Ballot::default(), false); 4]);
        run_round(&mut b, &[(Ballot::default(), false); 2]);
        let (ba, bb) = (a.current_ballot(), b.current_ballot());
        assert_eq!(ba.n, bb.n, "both took over to leader.n + 1");
        assert_eq!(ba.priority, 5, "a heard 4 peers + self");
        assert_eq!(bb.priority, 3, "b heard 2 peers + self");
        assert!(ba > bb, "better-connected candidate wins the tie");
        // Despite the higher pid of b (5 > 1), a's connectivity dominates.
    }

    #[test]
    fn quorum_connected_flag_tracks_received_majority() {
        let mut b = ble(1, 5);
        assert!(b.is_quorum_connected());
        run_round(&mut b, &[]); // 1 of 5: minority
        assert!(!b.is_quorum_connected());
        let p = Ballot::new(0, 0, 2);
        let q = Ballot::new(0, 0, 3);
        run_round(&mut b, &[(p, false), (q, false)]); // 3 of 5: majority
        assert!(b.is_quorum_connected());
    }
}
