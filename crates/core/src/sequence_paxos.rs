//! Sequence Paxos — the log replication protocol of Omni-Paxos (§4).
//!
//! A replica is a passive state machine: the owner feeds it incoming
//! [`Message`]s with [`SequencePaxos::handle_message`], leader events from
//! BLE with [`SequencePaxos::handle_leader`], and client proposals with
//! [`SequencePaxos::append`]; it queues outgoing messages which the owner
//! drains with [`SequencePaxos::outgoing_messages`]. There is no internal
//! clock or IO, which is what lets the same implementation run in the
//! deterministic simulator and in tests.
//!
//! # Protocol summary
//!
//! Replication proceeds in rounds identified by [`Ballot`]s. A round has a
//! *Prepare* phase — log synchronization, so a newly elected (possibly
//! lagging, §5.2) leader adopts the most updated log among a majority — and
//! an *Accept* phase, where entries are pipelined to promised followers in
//! FIFO order and decided once a majority has accepted them. Recovery and
//! link-session drops are handled with `PrepareReq` (§4.1.3).
//!
//! Outgoing `AcceptDecide` messages are batched per drain of
//! [`SequencePaxos::outgoing_messages`]: all entries appended since the last
//! drain travel in one message per follower, with the newest decided index
//! piggybacked.

use crate::ballot::{Ballot, NodeId};
use crate::messages::{
    AcceptDecide, AcceptSync, Accepted, Decide, Message, PaxosMsg, Prepare, Promise, ReadCheck,
    ReadCheckAck, ReadIndexReq, ReadIndexResp, SnapshotAck, SnapshotChunk, SnapshotMeta,
};
use crate::snapshot::SnapshotData;
use crate::storage::{EntryBatch, Storage, StorageError, TrimError};
use crate::util::{majority, Entry, LogEntry, StopSign};
use std::collections::HashMap;

/// Replica role. A server acts as follower until BLE elects it (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Follower,
    Leader,
}

/// Progress within the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Log synchronization in progress (leader: collecting promises;
    /// follower: promised, awaiting `AcceptSync`).
    Prepare,
    /// Synchronized; entries are being replicated.
    Accept,
    /// Recovering from a crash: only `Prepare` messages and leader events
    /// are handled until the log is re-synchronized (§4.1.3).
    Recover,
}

/// Why a proposal was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposeErr {
    /// A stop-sign has been accepted: the configuration is ending and no
    /// further entries may be proposed in it (§6).
    PendingReconfig,
    /// A reconfiguration was already proposed.
    AlreadyReconfiguring,
    /// The internal proposal buffer is full (no elected leader for too
    /// long); retry later.
    BufferFull,
    /// The replica halted on a storage failure (fail-stop): it accepts
    /// nothing until it recovers via the crash path.
    Halted(StorageError),
}

impl std::fmt::Display for ProposeErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProposeErr::PendingReconfig => write!(f, "configuration is being stopped"),
            ProposeErr::AlreadyReconfiguring => write!(f, "reconfiguration already in progress"),
            ProposeErr::BufferFull => write!(f, "proposal buffer full"),
            ProposeErr::Halted(e) => write!(f, "replica halted on storage failure: {e}"),
        }
    }
}

impl std::error::Error for ProposeErr {}

/// Why a read-index request could not be issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadIndexErr {
    /// The replica halted on a storage failure (fail-stop).
    Halted,
    /// No elected leader is known to forward the request to; retry after
    /// the next election settles.
    NoLeader,
}

/// One read barrier awaiting round confirmation on the leader: `from`
/// asked for a linearizable read index, `idx` was captured when the
/// request arrived, and the barrier is released once a majority has acked
/// a [`ReadCheck`] with sequence number `>= seq`.
#[derive(Debug, Clone, Copy)]
struct ReadBarrier {
    from: NodeId,
    token: u64,
    idx: u64,
    seq: u64,
}

/// Static configuration of a replica.
#[derive(Debug, Clone)]
pub struct SequencePaxosConfig {
    /// Configuration (segment) id this instance belongs to.
    pub config_id: u32,
    /// This server.
    pub pid: NodeId,
    /// All other servers of the configuration.
    pub peers: Vec<NodeId>,
    /// Max buffered proposals while no leader is elected.
    pub buffer_size: usize,
    /// Window size for chunked snapshot transfer: a lagging follower whose
    /// log was compacted away receives the snapshot in chunks of this many
    /// bytes, one per acknowledgement (self-clocked).
    pub snapshot_chunk_bytes: usize,
}

impl SequencePaxosConfig {
    /// Configuration for server `pid` among `nodes` (which must contain
    /// `pid`).
    pub fn with(config_id: u32, pid: NodeId, nodes: &[NodeId]) -> Self {
        assert!(nodes.contains(&pid), "pid {pid} not in nodes {nodes:?}");
        assert!(pid != 0, "pid 0 is reserved");
        SequencePaxosConfig {
            config_id,
            pid,
            peers: nodes.iter().copied().filter(|&p| p != pid).collect(),
            buffer_size: 1_000_000,
            snapshot_chunk_bytes: 256 * 1024,
        }
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.peers.len() + 1
    }
}

/// What a follower promised: the state it reported in its `Promise`.
#[derive(Debug, Clone, Copy)]
struct PromiseMeta {
    acc_rnd: Ballot,
    log_idx: u64,
    decided_idx: u64,
}

/// One in-flight chunked snapshot transfer to a lagging follower. The
/// `data` Arc *pins* the snapshot for the duration of the transfer: a
/// newer `compact()` on the leader may replace the storage's snapshot
/// record, but the bytes this follower is receiving stay alive and
/// consistent (the compaction safety invariant — never invalidate an
/// in-flight transfer's base).
#[derive(Debug, Clone)]
struct SnapshotXfer {
    /// Log index the snapshot covers (exclusive).
    idx: u64,
    /// The pinned snapshot bytes.
    data: SnapshotData,
}

/// Follower-side reassembly buffer of an incoming snapshot transfer.
#[derive(Debug)]
struct IncomingSnapshot {
    /// Round the transfer belongs to; a new leader restarts the transfer.
    n: Ballot,
    /// Log index the snapshot covers.
    idx: u64,
    /// Total expected size.
    total: u64,
    /// Bytes received so far (always a prefix — chunks arrive in order,
    /// out-of-order chunks are dropped and re-requested by cumulative ack).
    buf: Vec<u8>,
}

/// Volatile state a leader keeps about its round.
#[derive(Debug)]
struct LeaderState<T> {
    n: Ballot,
    /// Promise metadata per server (including self).
    promises: HashMap<NodeId, PromiseMeta>,
    /// Suffix of the best promise (empty if the leader's own log is best).
    max_suffix: Vec<LogEntry<T>>,
    /// Absolute index at which `max_suffix` starts (from the promise).
    max_suffix_start: u64,
    /// Snapshot shipped with the best promise when that follower's log was
    /// compacted above where the leader's suffix would need to start.
    max_snapshot: Option<(u64, SnapshotData)>,
    /// `(acc_rnd, log_idx, pid)` of the best promise seen.
    max_meta: (Ballot, u64, NodeId),
    /// Highest log index each promised server has accepted in round `n`.
    accepted: HashMap<NodeId, u64>,
    /// Log index up to which each follower has been sent entries.
    sent_idx: HashMap<NodeId, u64>,
    /// Decided index already announced to each follower.
    sent_decided: HashMap<NodeId, u64>,
    /// Did we already complete the Prepare phase (reached Accept)?
    synced: bool,
    /// Shared suffix batches materialized this drain, keyed by start
    /// index. Fanning a batch out to N followers costs one allocation
    /// plus N refcount bumps. Invalidated whenever the log length
    /// changes and cleared at the end of every drain.
    batch_cache: HashMap<u64, EntryBatch<T>>,
    /// Log length the cached batches were cut at.
    batch_cache_len: u64,
    /// In-flight chunked snapshot transfers, per lagging follower.
    snap_xfers: HashMap<NodeId, SnapshotXfer>,
    /// Chunk windows cut this drain, keyed by `(snapshot_idx, offset)`:
    /// several followers at the same offset share one allocation.
    chunk_cache: HashMap<(u64, u64), SnapshotData>,
    /// Log length when this leader entered the Accept phase. Every write
    /// that *completed* in an earlier round is below it (it was accepted
    /// by a majority, which intersects our Prepare majority), so a
    /// linearizable read barrier is `max(accept_base, decided_idx)`; the
    /// decided index alone could still lag behind adopted-but-not-yet-
    /// re-decided entries from the previous round.
    accept_base: u64,
    /// Last broadcast [`ReadCheck`] sequence number of this term.
    read_seq: u64,
    /// Read barriers awaiting round confirmation, in arrival order.
    read_pending: Vec<ReadBarrier>,
    /// Highest [`ReadCheckAck`] sequence received per follower this term.
    read_acks: HashMap<NodeId, u64>,
}

impl<T> LeaderState<T> {
    fn new(n: Ballot) -> Self {
        LeaderState {
            n,
            promises: HashMap::new(),
            max_suffix: Vec::new(),
            max_suffix_start: 0,
            max_snapshot: None,
            max_meta: (Ballot::bottom(), 0, 0),
            accepted: HashMap::new(),
            sent_idx: HashMap::new(),
            sent_decided: HashMap::new(),
            synced: false,
            batch_cache: HashMap::new(),
            batch_cache_len: 0,
            snap_xfers: HashMap::new(),
            chunk_cache: HashMap::new(),
            accept_base: 0,
            read_seq: 0,
            read_pending: Vec::new(),
            read_acks: HashMap::new(),
        }
    }
}

/// A Sequence Paxos replica. See the [module docs](self).
pub struct SequencePaxos<T: Entry, S: Storage<T>> {
    config: SequencePaxosConfig,
    storage: S,
    state: (Role, Phase),
    /// Highest ballot this server believes is elected (from BLE or
    /// `Prepare` messages). Used to address forwarded proposals.
    leader: Ballot,
    /// Client proposals buffered while there is no usable leader.
    pending: Vec<LogEntry<T>>,
    /// Log index of an accepted stop-sign, if any.
    stopsign_idx: Option<u64>,
    leader_state: LeaderState<T>,
    /// Leader state snapshot when `Prepare` was sent: (accepted_rnd,
    /// log_idx, decided_idx). Promise suffixes are relative to these.
    prep_snapshot: (Ballot, u64, u64),
    /// Reassembly buffer of a snapshot transfer in progress (follower).
    incoming_snap: Option<IncomingSnapshot>,
    /// A snapshot installed from a peer, waiting for the owner to restore
    /// it into the application state machine
    /// ([`SequencePaxos::take_installed_snapshot`]).
    installed_snapshot: Option<(u64, SnapshotData)>,
    outgoing: Vec<Message<T>>,
    /// Confirmed read barriers for reads *this* replica requested:
    /// `(token, idx)` pairs ready for the owner to collect with
    /// [`SequencePaxos::take_read_grants`] — apply the log through `idx`,
    /// then serve from the local state machine.
    read_grants: Vec<(u64, u64)>,
    /// Set when a storage mutation failed: the replica is **halted** —
    /// fail-stop. It sends nothing (a failed persist must never be
    /// acked), handles nothing, and accepts no proposals until
    /// [`SequencePaxos::fail_recovery`] re-establishes durable state.
    halted: Option<StorageError>,
}

impl<T: Entry, S: Storage<T>> SequencePaxos<T, S> {
    /// Create a replica. If `storage` contains state from a previous
    /// incarnation, the caller should follow up with
    /// [`SequencePaxos::fail_recovery`].
    pub fn new(config: SequencePaxosConfig, storage: S) -> Self {
        SequencePaxos {
            config,
            storage,
            state: (Role::Follower, Phase::Accept),
            leader: Ballot::bottom(),
            pending: Vec::new(),
            stopsign_idx: None,
            leader_state: LeaderState::new(Ballot::bottom()),
            prep_snapshot: (Ballot::bottom(), 0, 0),
            incoming_snap: None,
            installed_snapshot: None,
            outgoing: Vec::new(),
            read_grants: Vec::new(),
            halted: None,
        }
    }

    /// This server's id.
    pub fn pid(&self) -> NodeId {
        self.config.pid
    }

    /// The configuration id of this instance.
    pub fn config_id(&self) -> u32 {
        self.config.config_id
    }

    /// Current `(role, phase)`.
    pub fn state(&self) -> (Role, Phase) {
        self.state
    }

    /// The storage failure this replica halted on, if any. A halted
    /// replica behaves like a crashed one: it emits and accepts nothing
    /// until [`SequencePaxos::fail_recovery`] succeeds.
    pub fn halted(&self) -> Option<StorageError> {
        self.halted
    }

    /// Enter the halted (fail-stop) state: discard every queued outgoing
    /// message — some may acknowledge state that just failed to persist —
    /// and refuse all further work. The first failure is kept as the cause.
    fn halt(&mut self, e: StorageError) {
        if self.halted.is_none() {
            self.halted = Some(e);
        }
        self.outgoing.clear();
    }

    /// Run a storage mutation under the fail-stop rule: `Err` halts the
    /// replica and yields `None`, which callers treat as "stop what you
    /// were doing, ack nothing".
    fn guard<V>(&mut self, res: Result<V, StorageError>) -> Option<V> {
        match res {
            Ok(v) => Some(v),
            Err(e) => {
                self.halt(e);
                None
            }
        }
    }

    /// The ballot of the current leader as known to this server
    /// ([`Ballot::bottom`] if none yet).
    pub fn leader(&self) -> Ballot {
        self.leader
    }

    /// The highest round this replica has promised (persisted).
    pub fn promised(&self) -> Ballot {
        self.storage.get_promise()
    }

    /// Index up to which the log is decided (exclusive).
    pub fn decided_idx(&self) -> u64 {
        self.storage.get_decided_idx()
    }

    /// Read decided entries in `[from, decided_idx)`.
    pub fn read_decided(&self, from: u64) -> Vec<LogEntry<T>> {
        self.decided_ref(from).to_vec()
    }

    /// Borrowed view of the decided entries in `[from, decided_idx)`; the
    /// zero-copy read used by the service layer's apply loop.
    pub fn decided_ref(&self, from: u64) -> &[LogEntry<T>] {
        let to = self.storage.get_decided_idx();
        if from >= to {
            return &[];
        }
        self.storage.entries_ref(from, to)
    }

    /// Read raw log entries (decided or not); for tests and invariants.
    pub fn read_log(&self, from: u64, to: u64) -> Vec<LogEntry<T>> {
        self.storage.get_entries(from, to)
    }

    /// Absolute log length.
    pub fn log_len(&self) -> u64 {
        self.storage.get_log_len()
    }

    /// Access to the underlying storage (e.g. to trim after applying).
    pub fn storage(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Index below which the log has been compacted away (superseded by a
    /// snapshot or a plain trim).
    pub fn compacted_idx(&self) -> u64 {
        self.storage.get_compacted_idx()
    }

    /// Compact the log up to `idx`: record `data` as the snapshot covering
    /// `[0, idx)`, trim that prefix, and checkpoint the storage, in one
    /// safe operation. Fails with [`TrimError`] if `idx` exceeds the
    /// decided index (undecided entries may still be overwritten) or falls
    /// below an earlier compaction point. In-flight snapshot transfers to
    /// lagging followers are unaffected: they hold their own pin on the
    /// snapshot they started with.
    pub fn compact(&mut self, idx: u64, data: SnapshotData) -> Result<(), TrimError> {
        if let Some(e) = self.halted {
            return Err(TrimError::Storage(e));
        }
        match self.storage.set_snapshot(idx, data) {
            Ok(()) => {}
            Err(TrimError::Storage(e)) => {
                self.halt(e);
                return Err(TrimError::Storage(e));
            }
            Err(e) => return Err(e),
        }
        let res = self.storage.checkpoint();
        if let Err(e) = res {
            self.halt(e);
            return Err(TrimError::Storage(e));
        }
        Ok(())
    }

    /// Take the snapshot this replica installed from a peer, if any: the
    /// owner must restore it into the application state machine before
    /// applying further decided entries. Returns `(idx, data)` where the
    /// snapshot reproduces the state after entries `[0, idx)`.
    pub fn take_installed_snapshot(&mut self) -> Option<(u64, SnapshotData)> {
        self.installed_snapshot.take()
    }

    /// The decided stop-sign, if this configuration has been stopped (§6).
    pub fn decided_stopsign(&self) -> Option<StopSign> {
        let idx = self.stopsign_idx?;
        if self.storage.get_decided_idx() > idx {
            match self.storage.get_entries(idx, idx + 1).into_iter().next() {
                Some(LogEntry::StopSign(ss)) => Some(*ss),
                _ => None,
            }
        } else {
            None
        }
    }

    /// Drain queued outgoing messages. Entries appended since the previous
    /// drain are flushed (batched) here.
    ///
    /// This is also the group-commit point: [`Storage::flush`] runs before
    /// any message leaves, so acknowledgements (`Promise`, `Accepted`) and
    /// the entries that outgoing batches refer to are durable by the time
    /// a peer can observe them.
    /// A halted replica drains nothing: every queued message was built on
    /// state that may not be durable, and a failed flush must never release
    /// the acknowledgements it was meant to make durable (the fsyncgate
    /// rule — retrying the fsync and acking anyway is how acked data gets
    /// lost).
    pub fn outgoing_messages(&mut self) -> Vec<Message<T>> {
        if self.halted.is_some() {
            self.outgoing.clear();
            return Vec::new();
        }
        self.flush_accepts();
        self.flush_forwards();
        self.flush_read_checks();
        if let Err(e) = self.storage.flush() {
            self.halt(e);
            return Vec::new();
        }
        // Outgoing messages keep their own clones of shared batches; the
        // caches themselves must not pin large suffixes (or snapshot
        // windows) past the drain.
        self.leader_state.batch_cache.clear();
        self.leader_state.chunk_cache.clear();
        std::mem::take(&mut self.outgoing)
    }

    // ------------------------------------------------------------------
    // Client API
    // ------------------------------------------------------------------

    /// Propose a client command for replication.
    pub fn append(&mut self, entry: T) -> Result<(), ProposeErr> {
        self.propose_entry(LogEntry::Normal(entry))
    }

    /// Propose stopping this configuration and starting `ss.next_nodes`
    /// (§6). Decided like any other entry.
    pub fn reconfigure(&mut self, ss: StopSign) -> Result<(), ProposeErr> {
        if self.stopsign_idx.is_some() || self.pending.iter().any(LogEntry::is_stopsign) {
            return Err(ProposeErr::AlreadyReconfiguring);
        }
        self.propose_entry(LogEntry::stopsign(ss))
    }

    fn propose_entry(&mut self, entry: LogEntry<T>) -> Result<(), ProposeErr> {
        if let Some(e) = self.halted {
            return Err(ProposeErr::Halted(e));
        }
        if self.stopsign_idx.is_some() {
            return Err(ProposeErr::PendingReconfig);
        }
        match self.state {
            (Role::Leader, Phase::Accept) => {
                let is_ss = entry.is_stopsign();
                let res = self.storage.append_entry(entry);
                let Some(len) = self.guard(res) else {
                    return Err(ProposeErr::Halted(self.halted.expect("guard halted")));
                };
                if is_ss {
                    self.stopsign_idx = Some(len - 1);
                }
                self.leader_state.accepted.insert(self.config.pid, len);
                self.maybe_decide();
                Ok(())
            }
            _ => {
                // Buffer; flushed to the leader (or appended when this
                // server completes its own Prepare phase).
                if self.pending.len() >= self.config.buffer_size {
                    return Err(ProposeErr::BufferFull);
                }
                self.pending.push(entry);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Log-free linearizable reads (read barriers)
    // ------------------------------------------------------------------

    /// The index a *leader-local* linearizable read must wait for: once the
    /// owner has applied the log through it, the local state machine
    /// reflects every write that completed before this call. Only valid on
    /// the leader in the Accept phase — and only *safe* to act on while an
    /// external leadership guarantee (the BLE leader lease) holds;
    /// otherwise use [`SequencePaxos::request_read_index`], which confirms
    /// the round with a majority instead.
    pub fn read_barrier(&self) -> Option<u64> {
        if self.halted.is_some() || self.state != (Role::Leader, Phase::Accept) {
            return None;
        }
        Some(
            self.leader_state
                .accept_base
                .max(self.storage.get_decided_idx()),
        )
    }

    /// Request a linearizable read index (the read-index protocol): the
    /// leader captures its read barrier, re-confirms its round with one
    /// lightweight majority exchange, and answers with the index; the
    /// grant arrives via [`SequencePaxos::take_read_grants`]. Works from
    /// any replica — this is the follower-read path. Fire-and-forget: a
    /// leader change in flight drops the request, so the owner should
    /// retry on a deadline.
    pub fn request_read_index(&mut self, token: u64) -> Result<(), ReadIndexErr> {
        if self.halted.is_some() {
            return Err(ReadIndexErr::Halted);
        }
        if self.state == (Role::Leader, Phase::Accept) {
            self.push_read_barrier(self.config.pid, token);
            return Ok(());
        }
        let leader_pid = self.leader.pid;
        if leader_pid == 0 || leader_pid == self.config.pid {
            // No usable leader (an own stale ballot cannot serve either).
            return Err(ReadIndexErr::NoLeader);
        }
        self.send(leader_pid, PaxosMsg::ReadIndexReq(ReadIndexReq { token }));
        Ok(())
    }

    /// Drain confirmed read grants: `(token, idx)` pairs for reads this
    /// replica requested via [`SequencePaxos::request_read_index`].
    pub fn take_read_grants(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.read_grants)
    }

    /// Leader: capture a barrier for `from`'s read and queue it behind the
    /// next round confirmation.
    fn push_read_barrier(&mut self, from: NodeId, token: u64) {
        let idx = self
            .leader_state
            .accept_base
            .max(self.storage.get_decided_idx());
        let barrier = ReadBarrier {
            from,
            token,
            idx,
            // Confirmed by the next check broadcast; everything queued
            // between two drains shares one sequence number.
            seq: self.leader_state.read_seq + 1,
        };
        self.leader_state.read_pending.push(barrier);
        // A single-server cluster confirms immediately (majority = self).
        self.confirm_read_barriers();
    }

    /// Leader: release every pending barrier whose check sequence a
    /// majority (counting ourselves) has acked.
    fn confirm_read_barriers(&mut self) {
        if self.leader_state.read_pending.is_empty() {
            return;
        }
        let maj = majority(self.config.cluster_size());
        let acks = &self.leader_state.read_acks;
        let confirmed: Vec<ReadBarrier> = {
            let pending = &mut self.leader_state.read_pending;
            let mut out = Vec::new();
            pending.retain(|b| {
                let votes = 1 + acks.values().filter(|&&s| s >= b.seq).count();
                if votes >= maj {
                    out.push(*b);
                    false
                } else {
                    true
                }
            });
            out
        };
        for b in confirmed {
            if b.from == self.config.pid {
                self.read_grants.push((b.token, b.idx));
            } else {
                self.send(
                    b.from,
                    PaxosMsg::ReadIndexResp(ReadIndexResp {
                        token: b.token,
                        idx: b.idx,
                    }),
                );
            }
        }
    }

    /// Leader: broadcast one `ReadCheck` covering every barrier queued
    /// since the last broadcast. Called at drain time, so an admission
    /// window's worth of reads costs a single message pair per follower.
    fn flush_read_checks(&mut self) {
        if self.state != (Role::Leader, Phase::Accept) {
            return;
        }
        let next = self.leader_state.read_seq + 1;
        if !self.leader_state.read_pending.iter().any(|b| b.seq == next) {
            return;
        }
        self.leader_state.read_seq = next;
        let n = self.leader_state.n;
        let peers = self.config.peers.clone();
        for peer in peers {
            self.send(peer, PaxosMsg::ReadCheck(ReadCheck { n, seq: next }));
        }
    }

    fn handle_read_index_req(&mut self, req: ReadIndexReq, from: NodeId) {
        if self.state != (Role::Leader, Phase::Accept) {
            return; // requester's deadline will retry after the election
        }
        self.push_read_barrier(from, req.token);
    }

    fn handle_read_index_resp(&mut self, resp: ReadIndexResp) {
        self.read_grants.push((resp.token, resp.idx));
    }

    /// Follower: ack a round confirmation iff `n` is *exactly* our
    /// promised round. A majority of such acks proves no higher ballot had
    /// completed a Prepare phase at a majority — so no write the leader
    /// does not hold can have been committed.
    fn handle_read_check(&mut self, check: ReadCheck, from: NodeId) {
        if self.storage.get_promise() != check.n {
            return;
        }
        self.send(
            from,
            PaxosMsg::ReadCheckAck(ReadCheckAck {
                n: check.n,
                seq: check.seq,
            }),
        );
    }

    fn handle_read_check_ack(&mut self, ack: ReadCheckAck, from: NodeId) {
        if self.state != (Role::Leader, Phase::Accept) || ack.n != self.leader_state.n {
            return;
        }
        let e = self.leader_state.read_acks.entry(from).or_insert(0);
        *e = (*e).max(ack.seq);
        self.confirm_read_barriers();
    }

    // ------------------------------------------------------------------
    // BLE integration and recovery
    // ------------------------------------------------------------------

    /// Notify this replica that `ballot` has been elected (BLE output,
    /// Fig. 2). If the ballot is our own, start the Prepare phase.
    pub fn handle_leader(&mut self, ballot: Ballot) {
        if self.halted.is_some() {
            return; // fail-stop: no role changes while halted
        }
        if ballot <= self.leader && self.state != (Role::Follower, Phase::Recover) {
            return; // stale election
        }
        self.leader = self.leader.max(ballot);
        if ballot.pid == self.config.pid {
            if ballot > self.storage.get_promise() {
                self.become_leader(ballot);
            }
        } else if self.state.0 == Role::Leader {
            // A higher ballot is elected elsewhere: step down. The new
            // leader's Prepare will re-synchronize us.
            self.state = (Role::Follower, Phase::Accept);
        }
    }

    fn become_leader(&mut self, n: Ballot) {
        let res = self.storage.set_promise(n);
        if self.guard(res).is_none() {
            return; // halted before any Prepare could be sent
        }
        self.state = (Role::Leader, Phase::Prepare);
        self.leader_state = LeaderState::new(n);
        let acc_rnd = self.storage.get_accepted_round();
        let log_idx = self.storage.get_log_len();
        let decided_idx = self.storage.get_decided_idx();
        self.prep_snapshot = (acc_rnd, log_idx, decided_idx);
        // Self-promise.
        self.leader_state.promises.insert(
            self.config.pid,
            PromiseMeta {
                acc_rnd,
                log_idx,
                decided_idx,
            },
        );
        self.leader_state.max_meta = (acc_rnd, log_idx, self.config.pid);
        let prep = Prepare {
            n,
            decided_idx,
            accepted_rnd: acc_rnd,
            log_idx,
        };
        let peers = self.config.peers.clone();
        for peer in peers {
            self.send(peer, PaxosMsg::Prepare(prep.clone()));
        }
        self.maybe_majority_promised();
    }

    /// Rebuild volatile state after a crash (§4.1.3). The persistent state
    /// in storage is kept; the replica asks its peers who the leader is and
    /// re-synchronizes before participating again.
    ///
    /// This is also the only exit from the halted (fail-stop) state: the
    /// storage is asked to [`Storage::recover`] — re-establish a consistent
    /// durable view, discarding whatever the failed operation left behind.
    /// If recovery itself fails the replica stays halted.
    pub fn fail_recovery(&mut self) {
        match self.storage.recover() {
            Ok(()) => self.halted = None,
            Err(e) => {
                self.halt(e);
                return;
            }
        }
        self.state = (Role::Follower, Phase::Recover);
        self.leader = Ballot::bottom();
        self.pending.clear();
        self.leader_state = LeaderState::new(Ballot::bottom());
        self.incoming_snap = None;
        self.installed_snapshot = None;
        self.read_grants.clear();
        self.outgoing.clear();
        self.rescan_stopsign();
        let peers = self.config.peers.clone();
        for peer in peers {
            self.send(peer, PaxosMsg::PrepareReq);
        }
    }

    /// Notify that the link to `pid` was re-established after a session
    /// drop (§4.1.3): either side might have missed a leader change, so ask.
    pub fn reconnected(&mut self, pid: NodeId) {
        if self.halted.is_some() {
            return;
        }
        if pid != self.config.pid {
            self.send(pid, PaxosMsg::PrepareReq);
        }
    }

    /// Periodic retransmission driver, called on a coarse timer. Re-sends
    /// `Prepare` to peers that have not promised (their copy may have been
    /// lost to a dead link) and `PrepareReq` while recovering.
    pub fn resend_timeout(&mut self) {
        if self.halted.is_some() {
            return;
        }
        match self.state {
            (Role::Leader, _) => {
                let n = self.leader_state.n;
                let (acc_rnd, log_idx, decided_idx) = self.prep_snapshot;
                let unpromised: Vec<NodeId> = self
                    .config
                    .peers
                    .iter()
                    .copied()
                    .filter(|p| !self.leader_state.promises.contains_key(p))
                    .collect();
                for peer in unpromised {
                    self.send(
                        peer,
                        PaxosMsg::Prepare(Prepare {
                            n,
                            decided_idx,
                            accepted_rnd: acc_rnd,
                            log_idx,
                        }),
                    );
                }
                // Re-announce in-flight snapshot transfers: a lost chunk or
                // ack stalls the self-clocked stream; the meta makes the
                // follower re-ack its progress and resume from there.
                let xfers: Vec<(NodeId, u64, u64)> = self
                    .leader_state
                    .snap_xfers
                    .iter()
                    .map(|(&p, x)| (p, x.idx, x.data.len() as u64))
                    .collect();
                for (pid, idx, total_bytes) in xfers {
                    self.send(
                        pid,
                        PaxosMsg::SnapshotMeta(SnapshotMeta {
                            n,
                            snapshot_idx: idx,
                            total_bytes,
                        }),
                    );
                }
                // Re-broadcast the latest round check: a lost ReadCheck or
                // ack would otherwise stall pending read barriers forever.
                if !self.leader_state.read_pending.is_empty() {
                    let seq = self.leader_state.read_seq;
                    let peers = self.config.peers.clone();
                    for peer in peers {
                        self.send(peer, PaxosMsg::ReadCheck(ReadCheck { n, seq }));
                    }
                }
            }
            (Role::Follower, Phase::Recover) => {
                let peers = self.config.peers.clone();
                for peer in peers {
                    self.send(peer, PaxosMsg::PrepareReq);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Feed one incoming message. A halted replica drops everything — to
    /// its peers it is indistinguishable from a crashed one.
    pub fn handle_message(&mut self, m: Message<T>) {
        if self.halted.is_some() {
            return;
        }
        let from = m.from;
        if self.state == (Role::Follower, Phase::Recover) {
            // While recovering only Prepare leads to resynchronization.
            if let PaxosMsg::Prepare(p) = m.msg {
                self.handle_prepare(p, from);
            }
            return;
        }
        match m.msg {
            PaxosMsg::PrepareReq => self.handle_prepare_req(from),
            PaxosMsg::Prepare(p) => self.handle_prepare(p, from),
            PaxosMsg::Promise(p) => self.handle_promise(p, from),
            PaxosMsg::AcceptSync(a) => self.handle_accept_sync(a, from),
            PaxosMsg::AcceptDecide(a) => self.handle_accept_decide(a, from),
            PaxosMsg::Accepted(a) => self.handle_accepted(a, from),
            PaxosMsg::Decide(d) => self.handle_decide(d),
            PaxosMsg::SnapshotMeta(m) => self.handle_snapshot_meta(m, from),
            PaxosMsg::SnapshotChunk(c) => self.handle_snapshot_chunk(c, from),
            PaxosMsg::SnapshotAck(a) => self.handle_snapshot_ack(a, from),
            PaxosMsg::ProposalForward(entries) => self.handle_forwarded(entries),
            PaxosMsg::ReadIndexReq(r) => self.handle_read_index_req(r, from),
            PaxosMsg::ReadIndexResp(r) => self.handle_read_index_resp(r),
            PaxosMsg::ReadCheck(c) => self.handle_read_check(c, from),
            PaxosMsg::ReadCheckAck(a) => self.handle_read_check_ack(a, from),
        }
    }

    fn handle_prepare_req(&mut self, from: NodeId) {
        if self.state.0 == Role::Leader {
            let n = self.leader_state.n;
            let (acc_rnd, log_idx, decided_idx) = self.prep_snapshot;
            // Re-start the follower from scratch in this round.
            self.leader_state.promises.remove(&from);
            self.leader_state.accepted.remove(&from);
            self.leader_state.snap_xfers.remove(&from);
            self.send(
                from,
                PaxosMsg::Prepare(Prepare {
                    n,
                    decided_idx,
                    accepted_rnd: acc_rnd,
                    log_idx,
                }),
            );
        }
    }

    fn handle_prepare(&mut self, prep: Prepare, from: NodeId) {
        if self.storage.get_promise() > prep.n {
            return; // stale round
        }
        let res = self.storage.set_promise(prep.n);
        if self.guard(res).is_none() {
            return; // promise not durable: send no Promise
        }
        self.leader = self.leader.max(prep.n);
        self.state = (Role::Follower, Phase::Prepare);
        let acc_rnd = self.storage.get_accepted_round();
        let log_idx = self.storage.get_log_len();
        let decided_idx = self.storage.get_decided_idx();
        // Which part of our log might the leader be missing? (§4.1.1)
        let wanted_start = if acc_rnd > prep.accepted_rnd {
            // We are more updated: send everything above the leader's
            // decided index (its non-chosen tail may be overwritten).
            Some(prep.decided_idx.min(log_idx))
        } else if acc_rnd == prep.accepted_rnd && log_idx > prep.log_idx {
            Some(prep.log_idx)
        } else {
            None
        };
        let (suffix_start, suffix, snapshot) = match wanted_start {
            Some(start) => {
                let compacted = self.storage.get_compacted_idx();
                if start < compacted {
                    // Our log no longer reaches down to `start`: ship the
                    // snapshot that supersedes the compacted prefix and the
                    // suffix from the compaction point.
                    let snap = self
                        .storage
                        .get_snapshot()
                        .map(|s| (s.idx, s.data))
                        .filter(|&(idx, _)| idx == compacted);
                    (compacted, self.storage.get_suffix(compacted), snap)
                } else {
                    (start, self.storage.get_suffix(start), None)
                }
            }
            None => (log_idx, Vec::new(), None),
        };
        self.send(
            from,
            PaxosMsg::Promise(Promise {
                n: prep.n,
                accepted_rnd: acc_rnd,
                log_idx,
                decided_idx,
                suffix_start,
                suffix,
                snapshot,
            }),
        );
    }

    fn handle_promise(&mut self, prom: Promise<T>, from: NodeId) {
        if self.state.0 != Role::Leader || prom.n != self.leader_state.n {
            return; // stale or not ours
        }
        let meta = PromiseMeta {
            acc_rnd: prom.accepted_rnd,
            log_idx: prom.log_idx,
            decided_idx: prom.decided_idx,
        };
        let first_promise = self.leader_state.promises.insert(from, meta).is_none();
        match self.state.1 {
            Phase::Prepare => {
                // Track the best (most updated) promise (§4.1.1).
                let key = (prom.accepted_rnd, prom.log_idx);
                let (max_rnd, max_idx, _) = self.leader_state.max_meta;
                if key > (max_rnd, max_idx) {
                    self.leader_state.max_meta = (prom.accepted_rnd, prom.log_idx, from);
                    self.leader_state.max_suffix = prom.suffix;
                    self.leader_state.max_suffix_start = prom.suffix_start;
                    self.leader_state.max_snapshot = prom.snapshot;
                }
                if first_promise {
                    self.maybe_majority_promised();
                }
            }
            Phase::Accept => {
                // Straggler promising after the Prepare phase (§4.1.2), or a
                // follower re-promising after a PrepareReq.
                self.sync_follower(from, meta);
            }
            Phase::Recover => {}
        }
    }

    fn maybe_majority_promised(&mut self) {
        let maj = majority(self.config.cluster_size());
        if self.leader_state.promises.len() < maj || self.leader_state.synced {
            return;
        }
        // Adopt the most updated log among the majority (P2c, §4.2).
        let (max_rnd, max_idx, max_pid) = self.leader_state.max_meta;
        let (my_prep_rnd, my_prep_log_idx, _) = self.prep_snapshot;
        if max_pid != self.config.pid {
            debug_assert!(
                max_rnd > my_prep_rnd || (max_rnd == my_prep_rnd && max_idx > my_prep_log_idx)
            );
            // The promise states where its suffix starts (the follower's
            // mirror of our Prepare, or its compaction point).
            let start = self.leader_state.max_suffix_start;
            let suffix = std::mem::take(&mut self.leader_state.max_suffix);
            if let Some((snap_idx, snap_data)) = self.leader_state.max_snapshot.take() {
                // The best promise's log was compacted above where our log
                // ends: adopt its snapshot (superseding everything we
                // hold), then its suffix on top. The owner must restore the
                // snapshot into the state machine before applying further.
                debug_assert_eq!(snap_idx, start);
                let res = self.storage.install_snapshot(snap_idx, snap_data.clone());
                if self.guard(res).is_none() {
                    return;
                }
                self.installed_snapshot = Some((snap_idx, snap_data));
                self.stopsign_idx = None;
                self.update_stopsign_after_overwrite(start, &suffix);
                let res = self.storage.append_on_prefix(start, suffix);
                if self.guard(res).is_none() {
                    return;
                }
            } else {
                // Clamp for the unreachable-in-practice case of a gap with
                // no snapshot (a peer trimmed without snapshotting).
                let start = start.min(self.storage.get_log_len());
                self.update_stopsign_after_overwrite(start, &suffix);
                let res = self.storage.append_on_prefix(start, suffix);
                if self.guard(res).is_none() {
                    return;
                }
            }
        }
        let n = self.leader_state.n;
        let res = self.storage.set_accepted_round(n);
        if self.guard(res).is_none() {
            return;
        }
        // Append proposals buffered during the Prepare phase.
        let pending = std::mem::take(&mut self.pending);
        for entry in pending {
            if self.stopsign_idx.is_some() {
                break; // drop proposals behind a stop-sign
            }
            let is_ss = entry.is_stopsign();
            let res = self.storage.append_entry(entry);
            let Some(len) = self.guard(res) else {
                return;
            };
            if is_ss {
                self.stopsign_idx = Some(len - 1);
            }
        }
        let log_len = self.storage.get_log_len();
        self.leader_state.accepted.insert(self.config.pid, log_len);
        self.leader_state.synced = true;
        self.leader_state.accept_base = log_len;
        self.state = (Role::Leader, Phase::Accept);
        // Synchronize every promised follower.
        let followers: Vec<(NodeId, PromiseMeta)> = self
            .leader_state
            .promises
            .iter()
            .filter(|(&p, _)| p != self.config.pid)
            .map(|(&p, &m)| (p, m))
            .collect();
        for (pid, meta) in followers {
            self.sync_follower(pid, meta);
        }
        self.maybe_decide();
    }

    /// Send `AcceptSync` bringing `pid` in line with the leader's log.
    fn sync_follower(&mut self, pid: NodeId, meta: PromiseMeta) {
        debug_assert_eq!(self.state, (Role::Leader, Phase::Accept));
        let (max_rnd, max_idx, _) = self.leader_state.max_meta;
        let log_len = self.storage.get_log_len();
        // If the follower accepted in the same round as the adopted maximum
        // and within its length, its log is a *prefix* of ours (FIFO), so we
        // can sync from its end. Otherwise its non-chosen tail may conflict
        // and we overwrite from its decided index (§4.1.2, e.g. server C in
        // Fig. 3a).
        let sync_idx = if meta.acc_rnd == max_rnd && meta.log_idx <= max_idx {
            meta.log_idx
        } else if meta.acc_rnd == self.leader_state.n {
            // Re-promise within our own round (after PrepareReq): already
            // consistent up to its length.
            meta.log_idx.min(log_len)
        } else {
            meta.decided_idx
        };
        debug_assert!(sync_idx <= log_len, "sync_idx {sync_idx} > log {log_len}");
        let sync_idx = sync_idx.min(log_len);
        self.sync_from(pid, sync_idx);
    }

    /// Synchronize `pid` from absolute index `sync_idx`: an `AcceptSync`
    /// with the log suffix when our log still reaches that far down, or a
    /// chunked snapshot transfer when `sync_idx` lies inside the compacted
    /// prefix (the follower's log is older than anything we still hold).
    fn sync_from(&mut self, pid: NodeId, sync_idx: u64) {
        let compacted = self.storage.get_compacted_idx();
        if sync_idx < compacted {
            // The snapshot can only bridge the gap if it covers the whole
            // compacted prefix (it always does when compaction goes through
            // `compact()`; a later plain `trim` could outrun it).
            if let Some(snap) = self.storage.get_snapshot().filter(|s| s.idx == compacted) {
                self.start_snapshot_xfer(pid, snap.idx, snap.data);
                return;
            }
            // No snapshot covers the gap (a plain trim): the best we can
            // do is sync from the compaction point; the follower rewrites
            // its tail from there. This only arises if the owner trimmed
            // without snapshotting while a peer still needed the prefix.
            return self.sync_from(pid, compacted);
        }
        let log_len = self.storage.get_log_len();
        let decided_idx = self.storage.get_decided_idx();
        // Followers that promised at the same index (the common case when
        // the cluster was in sync before the election) share one batch.
        let suffix = self.shared_suffix_cached(sync_idx);
        self.leader_state.snap_xfers.remove(&pid);
        self.leader_state.sent_idx.insert(pid, log_len);
        self.leader_state.sent_decided.insert(pid, decided_idx);
        self.send(
            pid,
            PaxosMsg::AcceptSync(AcceptSync {
                n: self.leader_state.n,
                sync_idx,
                decided_idx,
                suffix,
            }),
        );
    }

    /// Begin (or restart) a chunked snapshot transfer to `pid`. The
    /// follower answers the meta with a cumulative [`SnapshotAck`] — zero
    /// normally, its buffered prefix when resuming — and each ack clocks
    /// out the next chunk.
    fn start_snapshot_xfer(&mut self, pid: NodeId, idx: u64, data: SnapshotData) {
        let total_bytes = data.len() as u64;
        // Streaming entries to this follower is suspended until the
        // transfer completes and `sync_from` runs for the tail.
        self.leader_state.sent_idx.remove(&pid);
        self.leader_state.sent_decided.remove(&pid);
        self.leader_state
            .snap_xfers
            .insert(pid, SnapshotXfer { idx, data });
        self.send(
            pid,
            PaxosMsg::SnapshotMeta(SnapshotMeta {
                n: self.leader_state.n,
                snapshot_idx: idx,
                total_bytes,
            }),
        );
    }

    fn handle_accept_sync(&mut self, acc: AcceptSync<T>, from: NodeId) {
        if self.storage.get_promise() != acc.n || self.state != (Role::Follower, Phase::Prepare) {
            return;
        }
        let res = self.storage.set_accepted_round(acc.n);
        if self.guard(res).is_none() {
            return;
        }
        // A log sync supersedes any half-finished snapshot transfer.
        self.incoming_snap = None;
        // Everything from `sync_idx` on is replaced by `suffix`, so the
        // stop-sign scan only needs to cover the new suffix — not the
        // whole log as a full rescan would.
        self.update_stopsign_after_overwrite(acc.sync_idx, &acc.suffix);
        let res = self
            .storage
            .append_on_prefix(acc.sync_idx, acc.suffix.to_vec());
        if self.guard(res).is_none() {
            return;
        }
        let log_len = self.storage.get_log_len();
        let decided = acc.decided_idx.min(log_len);
        if decided > self.storage.get_decided_idx() {
            let res = self.storage.set_decided_idx(decided);
            if self.guard(res).is_none() {
                return;
            }
        }
        self.state = (Role::Follower, Phase::Accept);
        self.send(
            from,
            PaxosMsg::Accepted(Accepted {
                n: acc.n,
                log_idx: log_len,
            }),
        );
    }

    // ------------------------------------------------------------------
    // Chunked snapshot transfer
    // ------------------------------------------------------------------

    /// Follower: the leader announced that we will be synchronized by
    /// snapshot. Open (or resume) the reassembly buffer and report how far
    /// we already are — the ack clocks the first/next chunk out.
    fn handle_snapshot_meta(&mut self, meta: SnapshotMeta, from: NodeId) {
        if self.storage.get_promise() != meta.n || self.state.0 != Role::Follower {
            return;
        }
        // The transfer takes the place of log synchronization: stay in the
        // Prepare phase until the tail arrives via AcceptSync.
        self.state = (Role::Follower, Phase::Prepare);
        let resume = self.incoming_snap.as_ref().is_some_and(|s| {
            s.n == meta.n && s.idx == meta.snapshot_idx && s.total == meta.total_bytes
        });
        if !resume {
            self.incoming_snap = Some(IncomingSnapshot {
                n: meta.n,
                idx: meta.snapshot_idx,
                total: meta.total_bytes,
                buf: Vec::new(),
            });
        }
        self.snapshot_progress(from);
    }

    /// Follower: one in-order window of the snapshot byte stream.
    fn handle_snapshot_chunk(&mut self, chunk: SnapshotChunk, from: NodeId) {
        if self.storage.get_promise() != chunk.n || self.state != (Role::Follower, Phase::Prepare) {
            return;
        }
        let Some(snap) = self.incoming_snap.as_mut() else {
            return; // meta lost; the leader's resend sweep re-announces
        };
        if snap.n != chunk.n || snap.idx != chunk.snapshot_idx {
            return; // a stale transfer's chunk
        }
        if chunk.offset == snap.buf.len() as u64 {
            snap.buf.extend_from_slice(&chunk.data);
        }
        // Duplicates and out-of-order chunks fall through to a cumulative
        // ack, which tells the leader where to continue.
        self.snapshot_progress(from);
    }

    /// Follower: install the snapshot if complete, then ack progress.
    fn snapshot_progress(&mut self, from: NodeId) {
        let Some(snap) = self.incoming_snap.as_ref() else {
            return;
        };
        let (n, idx, received) = (snap.n, snap.idx, snap.buf.len() as u64);
        if received >= snap.total {
            let snap = self.incoming_snap.take().expect("checked above");
            let data: SnapshotData = snap.buf.into();
            // The snapshot supersedes our whole log (it only travels when
            // our log ended below the leader's compaction point).
            let res = self.storage.install_snapshot(idx, data.clone());
            if self.guard(res).is_none() {
                return; // not durable: no ack
            }
            let res = self.storage.set_accepted_round(n);
            if self.guard(res).is_none() {
                return;
            }
            self.installed_snapshot = Some((idx, data));
            self.stopsign_idx = None;
            // Remain in (Follower, Prepare): the final ack makes the
            // leader ship the tail above `idx` as a normal AcceptSync.
        }
        self.send(
            from,
            PaxosMsg::SnapshotAck(SnapshotAck {
                n,
                snapshot_idx: idx,
                received,
            }),
        );
    }

    /// Leader: a follower's cumulative progress report — completion makes
    /// us ship the log tail; anything else clocks out the next chunk.
    fn handle_snapshot_ack(&mut self, ack: SnapshotAck, from: NodeId) {
        if self.state != (Role::Leader, Phase::Accept) || ack.n != self.leader_state.n {
            return;
        }
        let Some(xfer) = self.leader_state.snap_xfers.get(&from).cloned() else {
            return; // superseded; a fresh Promise will restart the sync
        };
        let total = xfer.data.len() as u64;
        if ack.snapshot_idx != xfer.idx {
            // Ack of an older transfer (we compacted again and restarted
            // with a newer snapshot): re-announce the current one.
            self.send(
                from,
                PaxosMsg::SnapshotMeta(SnapshotMeta {
                    n: ack.n,
                    snapshot_idx: xfer.idx,
                    total_bytes: total,
                }),
            );
            return;
        }
        if ack.received >= total {
            // Transfer complete: the follower's log now starts at the
            // snapshot index; everything above travels as a normal
            // AcceptSync. If we compacted past `xfer.idx` in the meantime,
            // sync_from starts a fresh transfer of the newer snapshot.
            self.leader_state.snap_xfers.remove(&from);
            self.sync_from(from, xfer.idx);
            return;
        }
        let offset = ack.received;
        let end = total.min(offset + self.config.snapshot_chunk_bytes as u64);
        // Chunk windows are cut once and shared: several lagging followers
        // at the same offset (or retransmissions) reuse the allocation.
        let key = (xfer.idx, offset);
        let data = match self.leader_state.chunk_cache.get(&key) {
            Some(d) => d.clone(),
            None => {
                let d: SnapshotData = xfer.data[offset as usize..end as usize].into();
                self.leader_state.chunk_cache.insert(key, d.clone());
                d
            }
        };
        self.send(
            from,
            PaxosMsg::SnapshotChunk(SnapshotChunk {
                n: ack.n,
                snapshot_idx: xfer.idx,
                offset,
                total_bytes: total,
                data,
            }),
        );
    }

    fn handle_accept_decide(&mut self, acc: AcceptDecide<T>, from: NodeId) {
        if self.storage.get_promise() != acc.n || self.state != (Role::Follower, Phase::Accept) {
            return;
        }
        if !acc.entries.is_empty() {
            let log_len = self.storage.get_log_len();
            if acc.start_idx > log_len {
                // A predecessor batch was lost to a dead link: the session
                // FIFO assumption no longer holds for this stream. Ask the
                // leader to re-synchronize (§4.1.3) instead of misplacing
                // the entries.
                self.send(from, PaxosMsg::PrepareReq);
                return;
            }
            // Overlapping retransmissions carry identical entries (same
            // round, same positions); skip what we already hold — but never
            // rewrite the decided prefix.
            let decided_idx = self.storage.get_decided_idx();
            let effective_start = acc.start_idx.max(decided_idx);
            let skip = (effective_start - acc.start_idx) as usize;
            if skip < acc.entries.len() {
                let fresh = &acc.entries[skip..];
                self.update_stopsign_after_overwrite(effective_start, fresh);
                let res = self
                    .storage
                    .append_on_prefix(effective_start, fresh.to_vec());
                if self.guard(res).is_none() {
                    return; // entries not durable: send no Accepted
                }
            }
            // Acknowledge unconditionally — even a batch lying entirely
            // below our decided index (skip >= entries.len()) must produce
            // an `Accepted` with the current log length, or the leader's
            // view of this follower would stall.
            let log_len = self.storage.get_log_len();
            self.send(
                from,
                PaxosMsg::Accepted(Accepted {
                    n: acc.n,
                    log_idx: log_len,
                }),
            );
        }
        let log_len = self.storage.get_log_len();
        let decided = acc.decided_idx.min(log_len);
        if decided > self.storage.get_decided_idx() {
            let res = self.storage.set_decided_idx(decided);
            let _ = self.guard(res);
        }
    }

    fn handle_accepted(&mut self, acc: Accepted, from: NodeId) {
        if self.state != (Role::Leader, Phase::Accept) || acc.n != self.leader_state.n {
            return;
        }
        let e = self.leader_state.accepted.entry(from).or_insert(0);
        *e = (*e).max(acc.log_idx);
        self.maybe_decide();
    }

    /// An index accepted by a majority in the current round is chosen
    /// (§4.1.2); advance the decided index accordingly.
    fn maybe_decide(&mut self) {
        if self.state != (Role::Leader, Phase::Accept) {
            return;
        }
        let maj = majority(self.config.cluster_size());
        let mut acks: Vec<u64> = self.leader_state.accepted.values().copied().collect();
        if acks.len() < maj {
            return;
        }
        acks.sort_unstable_by(|a, b| b.cmp(a));
        let chosen = acks[maj - 1];
        if chosen > self.storage.get_decided_idx() {
            let res = self.storage.set_decided_idx(chosen);
            let _ = self.guard(res);
            // Propagation to followers is piggybacked by flush_accepts(), or
            // sent standalone there when no entries are pending.
        }
    }

    fn handle_decide(&mut self, d: Decide) {
        if self.storage.get_promise() != d.n || self.state != (Role::Follower, Phase::Accept) {
            return;
        }
        let decided = d.decided_idx.min(self.storage.get_log_len());
        if decided > self.storage.get_decided_idx() {
            let res = self.storage.set_decided_idx(decided);
            let _ = self.guard(res);
        }
    }

    fn handle_forwarded(&mut self, entries: Vec<LogEntry<T>>) {
        for e in entries {
            // Failed proposals are dropped; clients retry (at-least-once is
            // the service layer's concern).
            let _ = self.propose_entry(e);
        }
    }

    // ------------------------------------------------------------------
    // Outgoing batching
    // ------------------------------------------------------------------

    /// Send all unsent entries (and the newest decided index) to each
    /// promised follower. Called when the owner drains messages, so all
    /// appends between drains batch into one `AcceptDecide` per follower.
    fn flush_accepts(&mut self) {
        if self.state != (Role::Leader, Phase::Accept) {
            return;
        }
        let n = self.leader_state.n;
        let log_len = self.storage.get_log_len();
        let decided_idx = self.storage.get_decided_idx();
        let followers: Vec<NodeId> = self
            .leader_state
            .promises
            .keys()
            .copied()
            .filter(|&p| p != self.config.pid)
            .collect();
        for pid in followers {
            // Only stream to followers that have completed AcceptSync
            // (sent_idx is set by sync_follower).
            let Some(&sent) = self.leader_state.sent_idx.get(&pid) else {
                continue;
            };
            let sent_dec = self
                .leader_state
                .sent_decided
                .get(&pid)
                .copied()
                .unwrap_or(0);
            if log_len > sent {
                // One shared batch per distinct start index; all followers
                // at the same position share the allocation.
                let entries = self.shared_suffix_cached(sent);
                self.leader_state.sent_idx.insert(pid, log_len);
                self.leader_state.sent_decided.insert(pid, decided_idx);
                self.send(
                    pid,
                    PaxosMsg::AcceptDecide(AcceptDecide {
                        n,
                        start_idx: sent,
                        decided_idx,
                        entries,
                    }),
                );
            } else if decided_idx > sent_dec {
                self.leader_state.sent_decided.insert(pid, decided_idx);
                self.send(pid, PaxosMsg::Decide(Decide { n, decided_idx }));
            }
        }
    }

    /// Forward buffered proposals to the current leader (if we are a
    /// follower and know one).
    fn flush_forwards(&mut self) {
        if self.pending.is_empty() || self.state.0 == Role::Leader || self.state.1 == Phase::Recover
        {
            return;
        }
        let leader_pid = self.leader.pid;
        if leader_pid == 0 || leader_pid == self.config.pid {
            return;
        }
        let entries = std::mem::take(&mut self.pending);
        self.send(leader_pid, PaxosMsg::ProposalForward(entries));
    }

    /// Shared suffix `[from, log_len)`, memoized per drain in the leader's
    /// batch cache so fan-out to N followers performs one allocation.
    fn shared_suffix_cached(&mut self, from: u64) -> EntryBatch<T> {
        let log_len = self.storage.get_log_len();
        if self.leader_state.batch_cache_len != log_len {
            self.leader_state.batch_cache.clear();
            self.leader_state.batch_cache_len = log_len;
        }
        if let Some(batch) = self.leader_state.batch_cache.get(&from) {
            return batch.clone();
        }
        let batch = self.storage.shared_suffix(from);
        self.leader_state.batch_cache.insert(from, batch.clone());
        batch
    }

    /// Re-derive `stopsign_idx` after the log was truncated at `start` and
    /// `appended` written there: an O(|appended|) scan of only the new
    /// suffix. A stop-sign strictly below `start` is untouched; anything at
    /// or above it was overwritten.
    fn update_stopsign_after_overwrite(&mut self, start: u64, appended: &[LogEntry<T>]) {
        if self.stopsign_idx.is_some_and(|i| i >= start) {
            self.stopsign_idx = None;
        }
        if self.stopsign_idx.is_none() {
            for (i, e) in appended.iter().enumerate() {
                if e.is_stopsign() {
                    self.stopsign_idx = Some(start + i as u64);
                    break;
                }
            }
        }
    }

    /// Full-log stop-sign scan; only needed after a crash, when no prior
    /// `stopsign_idx` is available to update incrementally.
    fn rescan_stopsign(&mut self) {
        self.stopsign_idx = None;
        let from = self.storage.get_compacted_idx();
        let log_len = self.storage.get_log_len();
        for (i, e) in self.storage.entries_ref(from, log_len).iter().enumerate() {
            if e.is_stopsign() {
                self.stopsign_idx = Some(from + i as u64);
                break;
            }
        }
    }

    fn send(&mut self, to: NodeId, msg: PaxosMsg<T>) {
        self.outgoing.push(Message {
            from: self.config.pid,
            to,
            msg,
        });
    }
}

impl<T: Entry, S: Storage<T>> std::fmt::Debug for SequencePaxos<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequencePaxos")
            .field("pid", &self.config.pid)
            .field("state", &self.state)
            .field("leader", &self.leader)
            .field("promised", &self.storage.get_promise())
            .field("log_len", &self.storage.get_log_len())
            .field("decided_idx", &self.storage.get_decided_idx())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;

    type Sp = SequencePaxos<u64, MemoryStorage<u64>>;

    fn replica(pid: NodeId) -> Sp {
        SequencePaxos::new(
            SequencePaxosConfig::with(1, pid, &[1, 2, 3]),
            MemoryStorage::new(),
        )
    }

    fn ballot(n: u64, pid: NodeId) -> Ballot {
        Ballot::new(n, 0, pid)
    }

    /// Collect the tags of queued messages per destination.
    fn drain(sp: &mut Sp) -> Vec<(NodeId, &'static str)> {
        sp.outgoing_messages()
            .iter()
            .map(|m| (m.to, m.msg.tag()))
            .collect()
    }

    fn deliver(from: &mut Sp, to: &mut Sp) {
        let to_pid = to.pid();
        for m in from.outgoing_messages() {
            if m.to == to_pid {
                to.handle_message(m);
            }
        }
    }

    #[test]
    fn becoming_leader_sends_prepare_to_all_peers() {
        let mut sp = replica(1);
        sp.handle_leader(ballot(1, 1));
        assert_eq!(sp.state(), (Role::Leader, Phase::Prepare));
        let out = drain(&mut sp);
        assert!(out.contains(&(2, "Prepare")));
        assert!(out.contains(&(3, "Prepare")));
    }

    #[test]
    fn election_not_exceeding_promise_is_ignored() {
        let mut sp = replica(1);
        sp.handle_message(Message::with(
            2,
            1,
            PaxosMsg::Prepare(Prepare {
                n: ballot(5, 2),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        // Stale own election (<= promised) must not seize leadership.
        sp.handle_leader(ballot(3, 1));
        assert_eq!(sp.state().0, Role::Follower);
        // A higher own election does.
        sp.handle_leader(ballot(6, 1));
        assert_eq!(sp.state().0, Role::Leader);
    }

    #[test]
    fn majority_promises_move_leader_to_accept_phase() {
        let mut leader = replica(1);
        let mut f2 = replica(2);
        leader.handle_leader(ballot(1, 1));
        deliver(&mut leader, &mut f2);
        assert_eq!(f2.state(), (Role::Follower, Phase::Prepare));
        deliver(&mut f2, &mut leader);
        // 2 of 3 promised (leader + f2): Accept phase begins.
        assert_eq!(leader.state(), (Role::Leader, Phase::Accept));
        // f2 receives AcceptSync and completes.
        deliver(&mut leader, &mut f2);
        assert_eq!(f2.state(), (Role::Follower, Phase::Accept));
    }

    #[test]
    fn leader_adopts_the_most_updated_promise() {
        // Follower 2 holds entries accepted in an older round; the new
        // leader (with an empty log) must adopt them (P2c).
        let mut leader = replica(1);
        let mut f2 = replica(2);
        f2.storage().set_accepted_round(ballot(1, 3)).unwrap();
        f2.storage()
            .append_entries(vec![LogEntry::Normal(7), LogEntry::Normal(8)])
            .unwrap();
        leader.handle_leader(ballot(2, 1));
        deliver(&mut leader, &mut f2);
        deliver(&mut f2, &mut leader);
        assert_eq!(leader.log_len(), 2);
        assert_eq!(
            leader.read_log(0, 2),
            vec![LogEntry::Normal(7), LogEntry::Normal(8)]
        );
    }

    #[test]
    fn non_chosen_suffix_is_overwritten_by_sync() {
        // Fig. 3a: follower C has [4,5,6] beyond its decided prefix; the
        // leader's adopted log wins.
        let mut leader = replica(1);
        let mut f2 = replica(2);
        let mut f3 = replica(3);
        // f3 has stale accepted entries from an old round.
        f3.storage().set_accepted_round(ballot(1, 3)).unwrap();
        f3.storage()
            .append_entries(vec![
                LogEntry::Normal(4),
                LogEntry::Normal(5),
                LogEntry::Normal(6),
            ])
            .unwrap();
        // f2 has newer chosen entries.
        f2.storage().set_accepted_round(ballot(2, 2)).unwrap();
        f2.storage()
            .append_entries(vec![LogEntry::Normal(1), LogEntry::Normal(2)])
            .unwrap();
        leader.handle_leader(ballot(3, 1));
        deliver(&mut leader, &mut f2);
        deliver(&mut f2, &mut leader); // majority: adopt f2's log
                                       // The straggler's original Prepare was dropped by the test's
                                       // point-to-point delivery; the retransmission sweep re-sends it,
                                       // as it would after a real link outage.
        leader.resend_timeout();
        deliver(&mut leader, &mut f3); // Prepare reaches the straggler
        deliver(&mut f3, &mut leader); // late promise
        deliver(&mut leader, &mut f3); // AcceptSync overwrites
        assert_eq!(
            f3.read_log(0, 10),
            vec![LogEntry::Normal(1), LogEntry::Normal(2)],
            "f3's non-chosen [4,5,6] must be overwritten"
        );
    }

    #[test]
    fn accept_decide_with_gap_triggers_resync_not_misplacement() {
        // Regression for the safety bug found by the chaos suite: an
        // AcceptDecide whose predecessor was lost must not append at the
        // wrong index.
        let mut f = replica(2);
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(1, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        let _ = f.outgoing_messages();
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptSync(AcceptSync {
                n: ballot(1, 1),
                sync_idx: 0,
                decided_idx: 0,
                suffix: vec![].into(),
            }),
        ));
        let _ = f.outgoing_messages();
        // Batch starting at index 1 while the log has 0 entries: a batch
        // was lost.
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptDecide(AcceptDecide {
                n: ballot(1, 1),
                start_idx: 1,
                decided_idx: 2,
                entries: vec![LogEntry::Normal(99)].into(),
            }),
        ));
        assert_eq!(f.log_len(), 0, "gapped batch must be rejected");
        assert_eq!(f.decided_idx(), 0);
        let out = drain(&mut f);
        assert!(
            out.contains(&(1, "PrepareReq")),
            "must ask the leader to resynchronize: {out:?}"
        );
    }

    #[test]
    fn overlapping_accept_decide_is_idempotent() {
        let mut f = replica(2);
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(1, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptSync(AcceptSync {
                n: ballot(1, 1),
                sync_idx: 0,
                decided_idx: 0,
                suffix: vec![LogEntry::Normal(1), LogEntry::Normal(2)].into(),
            }),
        ));
        // Retransmission overlapping the existing prefix.
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptDecide(AcceptDecide {
                n: ballot(1, 1),
                start_idx: 1,
                decided_idx: 0,
                entries: vec![LogEntry::Normal(2), LogEntry::Normal(3)].into(),
            }),
        ));
        assert_eq!(
            f.read_log(0, 10),
            vec![
                LogEntry::Normal(1),
                LogEntry::Normal(2),
                LogEntry::Normal(3)
            ]
        );
    }

    #[test]
    fn follower_buffers_and_forwards_proposals() {
        let mut f = replica(2);
        f.append(42).expect("buffered");
        assert!(drain(&mut f).is_empty(), "no leader known yet: buffered");
        // Learn a leader via Prepare.
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(1, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        let out = drain(&mut f);
        assert!(
            out.contains(&(1, "ProposalForward")),
            "buffered proposal flushed to the leader: {out:?}"
        );
    }

    #[test]
    fn stopsign_blocks_append_until_overwritten() {
        let mut leader = replica(1);
        let mut f2 = replica(2);
        leader.handle_leader(ballot(1, 1));
        deliver(&mut leader, &mut f2);
        deliver(&mut f2, &mut leader);
        leader.append(1).unwrap();
        leader.reconfigure(StopSign::new(2, vec![4, 5, 6])).unwrap();
        assert_eq!(leader.append(2), Err(ProposeErr::PendingReconfig));
        assert_eq!(
            leader.reconfigure(StopSign::new(2, vec![7])),
            Err(ProposeErr::AlreadyReconfiguring)
        );
    }

    #[test]
    fn stopsign_decides_through_normal_protocol() {
        let mut leader = replica(1);
        let mut f2 = replica(2);
        leader.handle_leader(ballot(1, 1));
        deliver(&mut leader, &mut f2);
        deliver(&mut f2, &mut leader);
        deliver(&mut leader, &mut f2); // AcceptSync
        deliver(&mut f2, &mut leader); // Accepted
        leader.reconfigure(StopSign::new(2, vec![1, 2, 4])).unwrap();
        deliver(&mut leader, &mut f2); // AcceptDecide with the stop-sign
        deliver(&mut f2, &mut leader); // Accepted -> chosen
        assert_eq!(leader.decided_stopsign().map(|ss| ss.config_id), Some(2));
        // Propagate the decide to the follower.
        deliver(&mut leader, &mut f2);
        assert_eq!(f2.decided_stopsign().map(|ss| ss.config_id), Some(2));
    }

    #[test]
    fn recovering_replica_only_listens_to_prepare() {
        let mut f = replica(2);
        f.fail_recovery();
        assert_eq!(f.state(), (Role::Follower, Phase::Recover));
        // AcceptDecide in recover state is ignored entirely.
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptDecide(AcceptDecide {
                n: ballot(1, 1),
                start_idx: 0,
                decided_idx: 1,
                entries: vec![LogEntry::Normal(1)].into(),
            }),
        ));
        assert_eq!(f.log_len(), 0);
        // Prepare resynchronizes and exits recovery (via AcceptSync).
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(1, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        assert_eq!(f.state(), (Role::Follower, Phase::Prepare));
    }

    #[test]
    fn stale_round_messages_are_ignored() {
        let mut f = replica(2);
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(5, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        let _ = f.outgoing_messages();
        // Prepare from a lower round: no promise may be sent.
        f.handle_message(Message::with(
            3,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(4, 3),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        assert!(drain(&mut f).is_empty(), "stale Prepare must be ignored");
        assert_eq!(f.promised(), ballot(5, 1));
    }

    #[test]
    fn prepare_req_makes_leader_restart_the_follower() {
        let mut leader = replica(1);
        let mut f2 = replica(2);
        leader.handle_leader(ballot(1, 1));
        deliver(&mut leader, &mut f2);
        deliver(&mut f2, &mut leader);
        leader.append(1).unwrap();
        let _ = leader.outgoing_messages();
        // Session drop: follower asks who leads.
        leader.handle_message(Message::with(2, 1, PaxosMsg::PrepareReq));
        let out = drain(&mut leader);
        assert!(out.contains(&(2, "Prepare")), "leader re-prepares: {out:?}");
    }

    #[test]
    fn resend_timeout_reissues_prepare_to_unpromised_peers() {
        let mut leader = replica(1);
        leader.handle_leader(ballot(1, 1));
        let _ = leader.outgoing_messages(); // initial prepares lost
        leader.resend_timeout();
        let out = drain(&mut leader);
        assert!(out.contains(&(2, "Prepare")));
        assert!(out.contains(&(3, "Prepare")));
    }

    #[test]
    fn decide_is_clamped_to_local_log_length() {
        let mut f = replica(2);
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(1, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptSync(AcceptSync {
                n: ballot(1, 1),
                sync_idx: 0,
                decided_idx: 0,
                suffix: vec![LogEntry::Normal(1)].into(),
            }),
        ));
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Decide(Decide {
                n: ballot(1, 1),
                decided_idx: 10,
            }),
        ));
        assert_eq!(f.decided_idx(), 1, "cannot decide beyond the local log");
    }

    #[test]
    fn failed_append_halts_the_replica_and_acks_nothing() {
        use crate::faults::{FaultyStorage, StorageFaultKind};
        let mut f: SequencePaxos<u64, FaultyStorage<u64, MemoryStorage<u64>>> = SequencePaxos::new(
            SequencePaxosConfig::with(1, 2, &[1, 2, 3]),
            FaultyStorage::new(MemoryStorage::new()),
        );
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(1, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptSync(AcceptSync {
                n: ballot(1, 1),
                sync_idx: 0,
                decided_idx: 0,
                suffix: vec![].into(),
            }),
        ));
        let _ = f.outgoing_messages();
        // The next append hits a short write: the entries are not durable,
        // so no Accepted may ever leave this replica.
        f.storage().arm(StorageFaultKind::ShortWrite);
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::AcceptDecide(AcceptDecide {
                n: ballot(1, 1),
                start_idx: 0,
                decided_idx: 0,
                entries: vec![LogEntry::Normal(7)].into(),
            }),
        ));
        assert!(f.halted().is_some(), "failed persist must halt");
        assert!(
            f.outgoing_messages().is_empty(),
            "halted replica sends nothing"
        );
        // Everything is dropped until recovery, like a crashed process.
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Decide(Decide {
                n: ballot(1, 1),
                decided_idx: 1,
            }),
        ));
        assert_eq!(f.decided_idx(), 0);
        assert_eq!(f.append(9), Err(ProposeErr::Halted(f.halted().unwrap())));
        // fail_recovery rolls storage back to its durable state and
        // re-enters the protocol through the crash path.
        f.fail_recovery();
        assert!(f.halted().is_none());
        assert_eq!(f.state(), (Role::Follower, Phase::Recover));
        let out: Vec<(NodeId, &'static str)> = f
            .outgoing_messages()
            .iter()
            .map(|m| (m.to, m.msg.tag()))
            .collect();
        assert!(
            out.contains(&(1, "PrepareReq")),
            "re-sync via §4.1.3: {out:?}"
        );
    }

    #[test]
    fn failed_flush_withholds_queued_acks() {
        use crate::faults::{FaultyStorage, StorageFaultKind};
        let mut f: SequencePaxos<u64, FaultyStorage<u64, MemoryStorage<u64>>> = SequencePaxos::new(
            SequencePaxosConfig::with(1, 2, &[1, 2, 3]),
            FaultyStorage::new(MemoryStorage::new()),
        );
        f.handle_message(Message::with(
            1,
            2,
            PaxosMsg::Prepare(Prepare {
                n: ballot(1, 1),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
        ));
        // The Promise is queued but the group-commit flush fails: the
        // promise was never made durable, so the message must not leave
        // (fsyncgate — never ack after a failed fsync).
        f.storage().arm(StorageFaultKind::SyncFailed);
        assert!(f.outgoing_messages().is_empty());
        assert!(f.halted().is_some());
    }
}
