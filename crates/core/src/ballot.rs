//! Ballots: the totally-ordered rounds of Sequence Paxos and BLE.
//!
//! A ballot `b = (n, priority, pid)` uniquely identifies a round (paper
//! §5.2, property LE3). `n` is the monotonically increasing round counter,
//! `pid` the unique server id that makes ballots globally unique, and
//! `priority` the optional custom tie-breaking field described in §5.2/§8:
//! it orders candidates *within* the same `n` (e.g. to prefer a particular
//! data centre) but never affects liveness — an elected candidate must still
//! be quorum-connected.

/// Unique identifier of a server. `0` is reserved as "no server".
pub type NodeId = u64;

/// A totally-ordered ballot. Ordering is lexicographic over
/// `(n, priority, pid)`, so ballots are unique whenever `pid`s are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Monotonically increasing round number.
    pub n: u64,
    /// Custom tie-breaking priority (paper §8). Zero when unused.
    pub priority: u64,
    /// Owning server; makes the ballot unique.
    pub pid: NodeId,
}

impl Ballot {
    /// Create a ballot.
    pub fn new(n: u64, priority: u64, pid: NodeId) -> Self {
        Ballot { n, priority, pid }
    }

    /// The "bottom" ballot: smaller than every ballot of a real server.
    /// Used as the initial promise so that any leader's first Prepare is
    /// accepted.
    pub fn bottom() -> Self {
        Ballot::default()
    }
}

impl std::fmt::Display for Ballot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b({},{},{})", self.n, self.priority, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic_n_priority_pid() {
        let low = Ballot::new(1, 9, 9);
        let high = Ballot::new(2, 0, 1);
        assert!(low < high, "n dominates");

        let a = Ballot::new(2, 1, 9);
        let b = Ballot::new(2, 2, 1);
        assert!(a < b, "priority breaks ties within n");

        let c = Ballot::new(2, 2, 2);
        assert!(b < c, "pid breaks ties within (n, priority)");
    }

    #[test]
    fn bottom_is_minimal() {
        assert!(Ballot::bottom() < Ballot::new(0, 0, 1));
        assert!(Ballot::bottom() < Ballot::new(1, 0, 0));
        assert_eq!(Ballot::bottom(), Ballot::default());
    }

    #[test]
    fn ballots_with_distinct_pids_are_unique() {
        let a = Ballot::new(3, 0, 1);
        let b = Ballot::new(3, 0, 2);
        assert_ne!(a, b);
        assert!(a < b || b < a, "total order");
    }
}
