//! Wire messages of Sequence Paxos (Fig. 3) and Ballot Leader Election
//! (Fig. 4).
//!
//! Every message carries the sender's current ballot so that obsolete
//! messages from lower rounds are detected and ignored (§4.1). Messages also
//! expose an approximate wire size so the simulation harness can account for
//! IO, which the paper measures during reconfiguration (§7.3).

use crate::ballot::{Ballot, NodeId};
use crate::snapshot::SnapshotData;
use crate::storage::EntryBatch;
use crate::util::{Entry, LogEntry};

/// Fixed per-message framing overhead we charge in the size model: message
/// tag, ballot, and a couple of indices. The exact constant only needs to be
/// plausible — experiments compare protocols under the *same* model.
pub const HEADER_BYTES: usize = 32;

/// `⟨Prepare⟩` — sent by a new leader to start log synchronization (§4.1.1).
/// Carries the leader's state so followers can compute which suffix to send
/// back.
#[derive(Debug, Clone, PartialEq)]
pub struct Prepare {
    /// The leader's round.
    pub n: Ballot,
    /// The leader's decided index.
    pub decided_idx: u64,
    /// The round in which the leader last accepted entries.
    pub accepted_rnd: Ballot,
    /// The leader's log length.
    pub log_idx: u64,
}

/// `⟨Promise⟩` — a follower's reply to `Prepare`: it promises not to accept
/// entries from lower rounds, and ships any log suffix the leader is missing.
#[derive(Debug, Clone, PartialEq)]
pub struct Promise<T> {
    /// The promised round.
    pub n: Ballot,
    /// The follower's accepted round.
    pub accepted_rnd: Ballot,
    /// The follower's log length.
    pub log_idx: u64,
    /// The follower's decided index.
    pub decided_idx: u64,
    /// Absolute log index at which `suffix` starts. Normally the leader's
    /// `decided_idx` (if the follower's accepted round is higher) or the
    /// leader's `log_idx` (same round, longer log); when the follower has
    /// compacted above that point it is the follower's compacted index and
    /// `snapshot` fills the gap below.
    pub suffix_start: u64,
    /// Entries the leader might be missing, starting at `suffix_start`
    /// (empty if the leader is at least as updated).
    pub suffix: Vec<LogEntry<T>>,
    /// The follower's snapshot, included only when its log no longer
    /// reaches down to where the leader would need `suffix` to start
    /// (compaction): applying the snapshot reproduces the state up to
    /// `suffix_start`, and `suffix` continues from there.
    pub snapshot: Option<(u64, SnapshotData)>,
}

/// `⟨AcceptSync⟩` — the leader's synchronizing write: truncate the
/// follower's log at `sync_idx` and append `suffix` (§4.1.1). After handling
/// it, the follower's log is a prefix of the leader's.
///
/// The suffix is a shared [`EntryBatch`]: when several followers promised at
/// the same index (the common case after an election among up-to-date
/// servers), they all receive clones of one refcounted batch.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptSync<T> {
    /// The leader's round.
    pub n: Ballot,
    /// Absolute index at which `suffix` starts.
    pub sync_idx: u64,
    /// The leader's current decided index (piggybacked).
    pub decided_idx: u64,
    /// The leader's log from `sync_idx` onward.
    pub suffix: EntryBatch<T>,
}

/// `⟨AcceptDecide⟩` — pipelined replication in the Accept phase (§4.1.2):
/// new entries plus the leader's latest decided index in one message.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptDecide<T> {
    /// The leader's round.
    pub n: Ballot,
    /// Absolute log index of `entries[0]`. The paper assumes session-based
    /// FIFO *perfect* links; across a link-down period messages are lost,
    /// so the follower must be able to detect that a predecessor batch
    /// never arrived (a real TCP stack would have torn the session down).
    /// A mismatch triggers resynchronization instead of misplacing entries.
    pub start_idx: u64,
    /// The leader's current decided index (piggybacked decide).
    pub decided_idx: u64,
    /// New entries, in log order. A shared [`EntryBatch`]: the leader
    /// materializes each drained batch once and fans it out to all
    /// followers by refcount.
    pub entries: EntryBatch<T>,
}

/// `⟨Accepted⟩` — a follower acknowledges that its log is accepted up to
/// `log_idx` in round `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accepted {
    /// The follower's promised round.
    pub n: Ballot,
    /// The follower's log length after the append.
    pub log_idx: u64,
}

/// `⟨SnapshotMeta⟩` — the leader's announcement that a follower will be
/// synchronized by **snapshot transfer** instead of log replay: the
/// follower's log ends below the leader's compacted prefix, so no log
/// suffix can reach it. Announces the snapshot's identity; the follower
/// answers with a [`SnapshotAck`] carrying how many bytes it already holds
/// (zero normally, more when resuming an interrupted transfer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotMeta {
    /// The leader's round.
    pub n: Ballot,
    /// The log index the snapshot covers (exclusive): applying the
    /// snapshot reproduces the state after entries `[0, snapshot_idx)`.
    pub snapshot_idx: u64,
    /// Total size of the serialized snapshot.
    pub total_bytes: u64,
}

/// `⟨SnapshotChunk⟩` — one window of the snapshot byte stream. Chunks are
/// cut from one refcounted [`SnapshotData`] per transfer, so concurrent
/// transfers to several lagging followers share the bytes (the same
/// zero-copy idiom as [`EntryBatch`] on the replication path).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotChunk {
    /// The leader's round.
    pub n: Ballot,
    /// Which snapshot this chunk belongs to.
    pub snapshot_idx: u64,
    /// Byte offset of `data[0]` within the snapshot.
    pub offset: u64,
    /// Total size of the snapshot (repeated so a chunk is self-describing).
    pub total_bytes: u64,
    /// The chunk bytes.
    pub data: SnapshotData,
}

/// `⟨SnapshotAck⟩` — the follower's cumulative progress report: it holds
/// the first `received` bytes of snapshot `snapshot_idx`. Doubles as the
/// pull request for the next chunk, which makes the transfer self-clocked
/// and resumable: after a reconnect the follower re-acks its buffered
/// length and the leader continues from there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotAck {
    /// The follower's promised round.
    pub n: Ballot,
    /// Which snapshot is being acknowledged.
    pub snapshot_idx: u64,
    /// Bytes received so far (cumulative prefix).
    pub received: u64,
}

/// `⟨Decide⟩` — the leader announces that the log is chosen up to
/// `decided_idx`. Usually piggybacked on [`AcceptDecide`]; sent standalone
/// when there is no new entry to carry it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decide {
    /// The leader's round.
    pub n: Ballot,
    /// Index up to which the log is decided (exclusive).
    pub decided_idx: u64,
}

/// `⟨ReadIndexReq⟩` — a replica asks the leader for a linearizable read
/// barrier: the index its local apply must reach before it may serve a
/// read from its own state machine. `token` is an opaque requester-chosen
/// correlation id echoed in the response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadIndexReq {
    /// Requester-chosen correlation id.
    pub token: u64,
}

/// `⟨ReadIndexResp⟩` — the leader's confirmed read barrier: once the
/// requester has applied its log up to `idx`, its state machine reflects
/// every write that completed before the request was made. Only sent after
/// the leader has re-confirmed its round with a majority (`ReadCheck` /
/// `ReadCheckAck`), so a deposed leader can never hand out a stale barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadIndexResp {
    /// Echoed correlation id.
    pub token: u64,
    /// Absolute log index (within this configuration) the requester must
    /// apply through before serving.
    pub idx: u64,
}

/// `⟨ReadCheck⟩` — the leader's lightweight round confirmation for a batch
/// of pending read barriers: "is round `n` still the one you promised?".
/// One check covers every barrier captured before it was broadcast, so the
/// per-read cost amortizes to one message pair per drain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadCheck {
    /// The leader's round.
    pub n: Ballot,
    /// Monotone check sequence number within this leadership term.
    pub seq: u64,
}

/// `⟨ReadCheckAck⟩` — a follower's confirmation that `n` is still exactly
/// its promised round. A majority of acks for `seq` proves no higher ballot
/// had completed a Prepare phase at a majority when the acks were sent —
/// hence no write can have been committed that the leader at `n` does not
/// hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadCheckAck {
    /// The acked round.
    pub n: Ballot,
    /// The acked check sequence number.
    pub seq: u64,
}

/// The Sequence Paxos message alphabet.
///
/// ## Stable wire discriminants and forward compatibility
///
/// Every message enum in this module (and [`ServiceMsg`] in the service
/// layer) has a **stable discriminant byte**, returned by its
/// `discriminant()` method and used verbatim by the wire codec
/// ([`crate::wire`]). The rules that keep mixed-version clusters talking:
///
/// * Discriminant values are **append-only**: a variant's byte never
///   changes and is never reused once retired. New variants take the next
///   free value.
/// * Frames carry a codec version byte ([`crate::wire::WIRE_VERSION`]).
///   A frame whose envelope is intact (magic + checksum verify) but whose
///   payload carries an **unknown discriminant or unsupported version**
///   MUST be dropped and counted by the transport — *never* answered with
///   a disconnect. Tearing the session down would turn a soft decode skew
///   into a connectivity fault and re-trigger the `PrepareReq` reconnect
///   protocol in a loop; dropping the frame merely looks like loss, which
///   Sequence Paxos already tolerates on its session-FIFO links (§3).
/// * Only an **unverifiable envelope** (bad magic, bad checksum, torn
///   length) may kill the connection: framing sync is lost, and a session
///   re-establishment is the defined way to re-synchronize (§4.1.3).
///
/// [`ServiceMsg`]: crate::service::ServiceMsg
#[derive(Debug, Clone, PartialEq)]
pub enum PaxosMsg<T> {
    /// Sent by a recovering or reconnecting server to find the current
    /// leader (§4.1.3); the leader answers with `Prepare`.
    PrepareReq,
    Prepare(Prepare),
    Promise(Promise<T>),
    AcceptSync(AcceptSync<T>),
    AcceptDecide(AcceptDecide<T>),
    Accepted(Accepted),
    Decide(Decide),
    SnapshotMeta(SnapshotMeta),
    SnapshotChunk(SnapshotChunk),
    SnapshotAck(SnapshotAck),
    /// Client proposals forwarded from a follower to the leader.
    ProposalForward(Vec<LogEntry<T>>),
    /// Log-free linearizable read support (read-index protocol).
    ReadIndexReq(ReadIndexReq),
    ReadIndexResp(ReadIndexResp),
    ReadCheck(ReadCheck),
    ReadCheckAck(ReadCheckAck),
}

impl<T: Entry> PaxosMsg<T> {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        let payload = match self {
            PaxosMsg::PrepareReq => 0,
            PaxosMsg::Prepare(_) => 0,
            PaxosMsg::Promise(p) => {
                p.suffix.iter().map(LogEntry::size_bytes).sum::<usize>()
                    + p.snapshot.as_ref().map_or(0, |(_, d)| d.len())
            }
            PaxosMsg::AcceptSync(a) => a.suffix.iter().map(LogEntry::size_bytes).sum(),
            PaxosMsg::AcceptDecide(a) => a.entries.iter().map(LogEntry::size_bytes).sum(),
            PaxosMsg::Accepted(_) => 0,
            PaxosMsg::Decide(_) => 0,
            PaxosMsg::SnapshotMeta(_) => 0,
            PaxosMsg::SnapshotChunk(c) => c.data.len(),
            PaxosMsg::SnapshotAck(_) => 0,
            PaxosMsg::ProposalForward(es) => es.iter().map(LogEntry::size_bytes).sum(),
            PaxosMsg::ReadIndexReq(_) => 0,
            PaxosMsg::ReadIndexResp(_) => 0,
            PaxosMsg::ReadCheck(_) => 0,
            PaxosMsg::ReadCheckAck(_) => 0,
        };
        HEADER_BYTES + payload
    }

    /// Short tag for tracing.
    pub fn tag(&self) -> &'static str {
        match self {
            PaxosMsg::PrepareReq => "PrepareReq",
            PaxosMsg::Prepare(_) => "Prepare",
            PaxosMsg::Promise(_) => "Promise",
            PaxosMsg::AcceptSync(_) => "AcceptSync",
            PaxosMsg::AcceptDecide(_) => "AcceptDecide",
            PaxosMsg::Accepted(_) => "Accepted",
            PaxosMsg::Decide(_) => "Decide",
            PaxosMsg::SnapshotMeta(_) => "SnapshotMeta",
            PaxosMsg::SnapshotChunk(_) => "SnapshotChunk",
            PaxosMsg::SnapshotAck(_) => "SnapshotAck",
            PaxosMsg::ProposalForward(_) => "ProposalForward",
            PaxosMsg::ReadIndexReq(_) => "ReadIndexReq",
            PaxosMsg::ReadIndexResp(_) => "ReadIndexResp",
            PaxosMsg::ReadCheck(_) => "ReadCheck",
            PaxosMsg::ReadCheckAck(_) => "ReadCheckAck",
        }
    }
}

impl<T> PaxosMsg<T> {
    /// Stable wire discriminant (append-only; see the enum docs).
    pub const fn discriminant(&self) -> u8 {
        match self {
            PaxosMsg::PrepareReq => 0,
            PaxosMsg::Prepare(_) => 1,
            PaxosMsg::Promise(_) => 2,
            PaxosMsg::AcceptSync(_) => 3,
            PaxosMsg::AcceptDecide(_) => 4,
            PaxosMsg::Accepted(_) => 5,
            PaxosMsg::Decide(_) => 6,
            PaxosMsg::SnapshotMeta(_) => 7,
            PaxosMsg::SnapshotChunk(_) => 8,
            PaxosMsg::SnapshotAck(_) => 9,
            PaxosMsg::ProposalForward(_) => 10,
            PaxosMsg::ReadIndexReq(_) => 11,
            PaxosMsg::ReadIndexResp(_) => 12,
            PaxosMsg::ReadCheck(_) => 13,
            PaxosMsg::ReadCheckAck(_) => 14,
        }
    }
}

/// An addressed Sequence Paxos message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message<T> {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: PaxosMsg<T>,
}

impl<T: Entry> Message<T> {
    /// Construct an addressed message.
    pub fn with(from: NodeId, to: NodeId, msg: PaxosMsg<T>) -> Self {
        Message { from, to, msg }
    }

    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.msg.size_bytes()
    }
}

/// Ballot Leader Election messages (Fig. 4). Heartbeats are request/reply so
/// that a leader is only considered connected over *full-duplex* links (§8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BleMsg {
    /// Start-of-round probe.
    HeartbeatRequest {
        /// The sender's heartbeat round.
        round: u64,
    },
    /// Reply carrying the responder's ballot and quorum-connectivity flag.
    HeartbeatReply {
        /// Echoes the request's round; late replies are ignored.
        round: u64,
        /// The responder's current ballot.
        ballot: Ballot,
        /// Whether the responder was quorum-connected in its last round.
        quorum_connected: bool,
    },
    /// Reply used when leader leases are enabled: a `HeartbeatReply` with a
    /// piggybacked lease grant, so leases ride the existing heartbeat rounds
    /// without any extra message exchange. `lease = true` means the
    /// responder promises not to help elect (or promise to) any ballot
    /// other than its currently elected leader for the configured lease
    /// duration, measured on the responder's own clock from the moment this
    /// reply was produced.
    HeartbeatReplyLease {
        /// Echoes the request's round; late replies are ignored.
        round: u64,
        /// The responder's current ballot.
        ballot: Ballot,
        /// Whether the responder was quorum-connected in its last round.
        quorum_connected: bool,
        /// Whether this reply (re-)grants a lease to the requester, i.e.
        /// the requester is the responder's currently elected leader.
        lease: bool,
    },
}

impl BleMsg {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        HEADER_BYTES
    }

    /// Stable wire discriminant (append-only; see [`PaxosMsg`] docs).
    pub const fn discriminant(&self) -> u8 {
        match self {
            BleMsg::HeartbeatRequest { .. } => 0,
            BleMsg::HeartbeatReply { .. } => 1,
            BleMsg::HeartbeatReplyLease { .. } => 2,
        }
    }
}

/// An addressed BLE message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BleMessage {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: BleMsg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_payload() {
        let small: PaxosMsg<u64> = PaxosMsg::AcceptDecide(AcceptDecide {
            n: Ballot::new(1, 0, 1),
            start_idx: 0,
            decided_idx: 0,
            entries: vec![LogEntry::Normal(1)].into(),
        });
        let big: PaxosMsg<u64> = PaxosMsg::AcceptDecide(AcceptDecide {
            n: Ballot::new(1, 0, 1),
            start_idx: 1,
            decided_idx: 0,
            entries: (0..100).map(LogEntry::Normal).collect::<Vec<_>>().into(),
        });
        assert_eq!(small.size_bytes(), HEADER_BYTES + 8);
        assert_eq!(big.size_bytes(), HEADER_BYTES + 800);
    }

    #[test]
    fn control_messages_are_header_sized() {
        let m: PaxosMsg<u64> = PaxosMsg::PrepareReq;
        assert_eq!(m.size_bytes(), HEADER_BYTES);
        let d: PaxosMsg<u64> = PaxosMsg::Decide(Decide {
            n: Ballot::bottom(),
            decided_idx: 9,
        });
        assert_eq!(d.size_bytes(), HEADER_BYTES);
        assert_eq!(
            BleMsg::HeartbeatRequest { round: 1 }.size_bytes(),
            HEADER_BYTES
        );
    }

    #[test]
    fn discriminants_are_stable() {
        // These values are on the wire; changing any of them is a protocol
        // break. Append new variants, never renumber.
        let b = Ballot::bottom();
        let cases: Vec<(PaxosMsg<u64>, u8)> = vec![
            (PaxosMsg::PrepareReq, 0),
            (
                PaxosMsg::Prepare(Prepare {
                    n: b,
                    decided_idx: 0,
                    accepted_rnd: b,
                    log_idx: 0,
                }),
                1,
            ),
            (PaxosMsg::Accepted(Accepted { n: b, log_idx: 0 }), 5),
            (
                PaxosMsg::Decide(Decide {
                    n: b,
                    decided_idx: 0,
                }),
                6,
            ),
            (PaxosMsg::ProposalForward(Vec::new()), 10),
        ];
        for (msg, want) in cases {
            assert_eq!(msg.discriminant(), want, "discriminant of {}", msg.tag());
        }
        assert_eq!(BleMsg::HeartbeatRequest { round: 0 }.discriminant(), 0);
        assert_eq!(
            BleMsg::HeartbeatReply {
                round: 0,
                ballot: b,
                quorum_connected: true,
            }
            .discriminant(),
            1
        );
    }

    #[test]
    fn tags_cover_alphabet() {
        let msgs: Vec<PaxosMsg<u64>> = vec![
            PaxosMsg::PrepareReq,
            PaxosMsg::Prepare(Prepare {
                n: Ballot::bottom(),
                decided_idx: 0,
                accepted_rnd: Ballot::bottom(),
                log_idx: 0,
            }),
            PaxosMsg::Accepted(Accepted {
                n: Ballot::bottom(),
                log_idx: 0,
            }),
        ];
        let tags: Vec<_> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(tags, vec!["PrepareReq", "Prepare", "Accepted"]);
    }
}
